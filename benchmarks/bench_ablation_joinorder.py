"""E13 — ablation: cost-based join ordering vs. syntactic order.

The compiler's default join tree follows the query's written pattern
order; in a Rete network a bad order inflates every join memory and every
update's delta work.  This ablation registers the same query compiled both
ways over a label-skewed social graph (few Persons moderating many Posts
with many Comments) and measures registration time, join-memory size, and
per-update latency.

Queries are deliberately written "big relations first" — the realistic
failure mode this pass exists for (users write patterns in narrative
order, not cost order).
"""

from __future__ import annotations

import random

from repro import PropertyGraph, compile_query
from repro.bench import Timer, format_table, speedup
from repro.compiler.stats import GraphStatistics
from repro.rete.network import ReteNetwork

#: Written pessimally: the Comment-Comment self-join leads, the highly
#: selective Moderator access comes last.
QUERY = (
    "MATCH (c1:Comment)-[:REPLY]->(c2:Comment), "
    "(p:Post)-[:REPLY]->(c1), "
    "(m:Moderator)-[:MODERATES]->(p) "
    "RETURN m, p, c1, c2"
)


def skewed_social(moderators=2, posts=30, comments_per_post=8, seed=17):
    graph = PropertyGraph()
    rng = random.Random(seed)
    mods = [graph.add_vertex(labels=["Moderator"]) for _ in range(moderators)]
    comments = []
    for _ in range(posts):
        post = graph.add_vertex(labels=["Post"])
        graph.add_edge(rng.choice(mods), post, "MODERATES")
        previous = post
        previous_label = "Post"
        for _ in range(comments_per_post):
            comment = graph.add_vertex(labels=["Comment"])
            graph.add_edge(previous, comment, "REPLY")
            comments.append(comment)
            previous = comment
    return graph, comments


def build(graph, cost_based: bool):
    stats = GraphStatistics.from_graph(graph) if cost_based else None
    compiled = compile_query(QUERY, stats)
    network = ReteNetwork(graph, compiled.plan)
    network.populate()
    return network


def drive_updates(graph, comments, count=30, seed=3):
    rng = random.Random(seed)
    for _ in range(count):
        parent = rng.choice(comments)
        child = graph.add_vertex(labels=["Comment"])
        edge = graph.add_edge(parent, child, "REPLY")
        graph.remove_edge(edge)
        graph.remove_vertex(child)


# -- pytest-benchmark kernels ----------------------------------------------------


def test_register_syntactic(benchmark):
    graph, _ = skewed_social()
    benchmark(lambda: build(graph, cost_based=False))


def test_register_cost_based(benchmark):
    graph, _ = skewed_social()
    benchmark(lambda: build(graph, cost_based=True))


def test_update_syntactic(benchmark):
    graph, comments = skewed_social()
    network = build(graph, cost_based=False)
    graph.subscribe(network.dispatch)
    benchmark(lambda: drive_updates(graph, comments, count=5))


def test_update_cost_based(benchmark):
    graph, comments = skewed_social()
    network = build(graph, cost_based=True)
    graph.subscribe(network.dispatch)
    benchmark(lambda: drive_updates(graph, comments, count=5))


def test_both_orders_agree():
    graph, comments = skewed_social(moderators=2, posts=8, comments_per_post=4)
    plain = build(graph, cost_based=False)
    costed = build(graph, cost_based=True)
    graph.subscribe(plain.dispatch)
    graph.subscribe(costed.dispatch)
    parent = comments[0]
    child = graph.add_vertex(labels=["Comment"])
    graph.add_edge(parent, child, "REPLY")
    assert plain.production.multiset() == costed.production.multiset()


# -- standalone report --------------------------------------------------------------


def main() -> None:
    rows = []
    for cost_based, label in ((False, "syntactic (written order)"), (True, "cost-based")):
        graph, comments = skewed_social(posts=40, comments_per_post=10)
        with Timer() as t_register:
            network = build(graph, cost_based)
        graph.subscribe(network.dispatch)
        drive_updates(graph, comments, count=20)  # warm-up
        with Timer() as t_update:
            drive_updates(graph, comments, count=100)
        rows.append(
            [
                label,
                t_register.seconds,
                network.memory_cells(),
                t_update.seconds / 100,
            ]
        )
    plain, costed = rows
    print(
        format_table(
            ["join order", "registration", "memory cells", "update latency"],
            rows,
            title="E13 — ablation: cost-based join ordering (pessimally written query)",
        )
    )
    print(f"registration speedup: {speedup(plain[1], costed[1])}")
    print(f"update speedup:       {speedup(plain[3], costed[3])}")
    print(f"memory ratio:         {plain[2] / max(costed[2], 1):.1f}x")


if __name__ == "__main__":
    main()
