"""E9 — ablation D1: schema inference (paper §4 step 3) on vs. off.

The paper's flattening step infers the *minimal* property set each base
operator must materialise (``©(p:Post{lang→pL})``).  The ablation disables
that minimality by forcing every base operator to additionally ship the
*entire* property map of its entities (``properties(x)`` columns) — the
naive alternative for a schema-free data model.  Costs measured:

* heavier tuples in every join memory (network memory),
* every property change becomes relevant → more delta traffic,
* slower registration (bigger initial scan payloads).
"""

from __future__ import annotations

from repro import QueryEngine, compile_query
from repro.algebra import ops
from repro.bench import Timer, format_table, speedup
from repro.compiler.treeutil import rebuild
from repro.rete.network import ReteNetwork
from repro.workloads import social

QUERY = social.RUNNING_EXAMPLE_QUERY


def with_all_properties(plan: ops.Operator) -> ops.Operator:
    """Annotate every base operator with full ``properties(x)`` columns —
    the no-schema-inference strawman."""
    if isinstance(plan, ops.GetVertices):
        extra = ops.PropertyProjection(plan.var, "properties")
        merged = dict((p.output, p) for p in plan.projections)
        merged[extra.output] = extra
        return ops.GetVertices(
            plan.var, plan.labels, tuple(sorted(merged.values(), key=lambda p: p.output))
        )
    if isinstance(plan, ops.GetEdges):
        merged = dict((p.output, p) for p in plan.projections)
        for subject in (plan.src, plan.edge, plan.tgt):
            extra = ops.PropertyProjection(subject, "properties")
            merged[extra.output] = extra
        return ops.GetEdges(
            plan.src,
            plan.edge,
            plan.tgt,
            plan.types,
            src_labels=plan.src_labels,
            tgt_labels=plan.tgt_labels,
            directed=plan.directed,
            projections=tuple(sorted(merged.values(), key=lambda p: p.output)),
        )
    if isinstance(plan, ops.TransitiveJoin):
        # the ⋈* edges relation must stay projection-free
        return rebuild(plan, [with_all_properties(plan.children[0]), plan.children[1]])
    return rebuild(plan, [with_all_properties(c) for c in plan.children])


def build_network(graph, inferred: bool, subscribe: bool = True):
    compiled = compile_query(QUERY)
    plan = compiled.plan if inferred else with_all_properties(compiled.plan)
    network = ReteNetwork(graph, plan)
    network.populate()
    if subscribe:
        graph.subscribe(network.dispatch)
    return network


def workload(persons=12):
    return social.generate_social(
        persons=persons, posts_per_person=2, comments_per_post=5, seed=27
    )


# -- pytest-benchmark kernels ----------------------------------------------------


def test_register_inferred(benchmark, bench_sizes):
    net = workload(bench_sizes["persons"])
    benchmark(lambda: build_network(net.graph, inferred=True, subscribe=False))


def test_register_all_properties(benchmark, bench_sizes):
    net = workload(bench_sizes["persons"])
    benchmark(lambda: build_network(net.graph, inferred=False, subscribe=False))


def test_update_inferred(benchmark, bench_sizes):
    net = workload(bench_sizes["persons"])
    build_network(net.graph, inferred=True)
    counter = iter(range(10**9))

    def update():
        # content edits never touch the inferred {lang} columns
        message = net.posts[next(counter) % len(net.posts)]
        net.graph.set_vertex_property(message, "content", f"edit {next(counter)}")

    benchmark(update)


def test_update_all_properties(benchmark, bench_sizes):
    net = workload(bench_sizes["persons"])
    build_network(net.graph, inferred=False)
    counter = iter(range(10**9))

    def update():
        message = net.posts[next(counter) % len(net.posts)]
        net.graph.set_vertex_property(message, "content", f"edit {next(counter)}")

    benchmark(update)


def test_both_modes_agree():
    net = workload(persons=6)
    inferred = build_network(net.graph, inferred=True)
    naive = build_network(net.graph, inferred=False)
    social.add_comment(net, net.posts[0], "en")
    net.graph.set_vertex_property(net.posts[0], "lang", "de")
    assert inferred.production.multiset() == naive.production.multiset()


# -- standalone report --------------------------------------------------------------


def main() -> None:
    rows = []
    for inferred, label in ((True, "inferred (paper)"), (False, "all properties")):
        net = workload(persons=20)
        with Timer() as t_reg:
            network = build_network(net.graph, inferred)
        with Timer() as t_update:
            for i in range(100):
                message = net.posts[i % len(net.posts)]
                net.graph.set_vertex_property(message, "content", f"edit {i}")
        with Timer() as t_relevant:
            for i in range(100):
                message = net.posts[i % len(net.posts)]
                net.graph.set_vertex_property(message, "lang", "en" if i % 2 else "de")
        rows.append(
            [
                label,
                t_reg.seconds,
                network.memory_cells(),
                t_update.seconds / 100,
                t_relevant.seconds / 100,
            ]
        )
    base, naive = rows
    print(
        format_table(
            [
                "mode",
                "registration",
                "memory cells",
                "irrelevant update",
                "relevant update",
            ],
            rows,
            title="E9 — ablation D1: schema inference vs shipping all properties",
        )
    )
    print(
        f"irrelevant-update speedup from inference: "
        f"{speedup(naive[3], base[3])}"
    )


if __name__ == "__main__":
    main()
