"""E11 — ablation: cross-view input sharing on vs. off.

The paper's lineage engines (ingraph, Viatra — refs [31, 33]) share Rete
subnetworks between queries.  This ablation quantifies the engine-level
part of that idea: with a :class:`~repro.rete.sharing.SharedInputLayer`
each graph event is translated into tuple deltas **once per distinct
base-relation signature**; without it, once per view.  Measured:

* per-update latency with N live views (the sharing win grows with N),
* registration cost of the Nth view,
* distinct input nodes allocated (layer stats).

Views drawn from a pool of social-domain queries with heavily overlapping
base relations — the realistic many-views regime (e.g. a constraint set
over one schema, as in the Train Benchmark).
"""

from __future__ import annotations

from repro.bench import Timer, format_table, speedup
from repro.rete.engine import IncrementalEngine
from repro.workloads import social

VIEW_POOL = [
    "MATCH (p:Post) RETURN p.lang AS lang",
    "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS n",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
    "MATCH (c:Comm)-[:REPLY]->(d:Comm) RETURN c, d",
    "MATCH (u:Person)-[:LIKES]->(p:Post) RETURN u, p",
    "MATCH (u:Person)-[:LIKES]->(p:Post) RETURN p, count(*) AS likes",
    "MATCH (p:Post)-[:REPLY]->(c:Comm)-[:REPLY]->(d:Comm) RETURN p, d",
]


def make_engine(graph, share: bool, view_count: int) -> IncrementalEngine:
    engine = IncrementalEngine(graph, share_inputs=share)
    for index in range(view_count):
        engine.register(VIEW_POOL[index % len(VIEW_POOL)])
    return engine


def workload(persons=10):
    return social.generate_social(
        persons=persons, posts_per_person=2, comments_per_post=4, seed=91
    )


def drive_updates(net, count=40) -> None:
    for i in range(count):
        post = net.posts[i % len(net.posts)]
        comment = social.add_comment(net, post, "en" if i % 2 else "de")
        net.graph.set_vertex_property(comment, "lang", "fr")


# -- pytest-benchmark kernels ----------------------------------------------------


def test_updates_with_sharing(benchmark, bench_sizes):
    net = workload(bench_sizes["persons"])
    make_engine(net.graph, share=True, view_count=8)
    benchmark(lambda: drive_updates(net, count=10))


def test_updates_without_sharing(benchmark, bench_sizes):
    net = workload(bench_sizes["persons"])
    make_engine(net.graph, share=False, view_count=8)
    benchmark(lambda: drive_updates(net, count=10))


def test_both_modes_agree():
    nets = {}
    for share in (True, False):
        net = workload(persons=6)
        engine = make_engine(net.graph, share=share, view_count=8)
        drive_updates(net, count=12)
        nets[share] = [
            sorted(v.rows(), key=repr) for v in engine.views
        ]
    assert nets[True] == nets[False]


def test_sharing_allocates_fewer_inputs():
    net = workload(persons=6)
    engine = make_engine(net.graph, share=True, view_count=8)
    stats = engine.input_layer.stats
    assert stats.nodes < stats.requests


# -- standalone report --------------------------------------------------------------


def main() -> None:
    rows = []
    for view_count in (2, 4, 8, 16, 32):
        timings = {}
        inputs = {}
        for share in (True, False):
            net = workload(persons=12)
            engine = make_engine(net.graph, share=share, view_count=view_count)
            if share:
                inputs["shared"] = engine.input_layer.stats.nodes
            else:
                inputs["private"] = sum(
                    len(v.network.vertex_inputs) + len(v.network.edge_inputs)
                    for v in engine.views
                )
            drive_updates(net, count=30)  # warm up caches and sizes
            best = float("inf")
            for _ in range(3):
                with Timer() as timer:
                    drive_updates(net, count=100)
                best = min(best, timer.seconds / 100)
            timings[share] = best
        rows.append(
            [
                view_count,
                inputs["private"],
                inputs["shared"],
                timings[False],
                timings[True],
                speedup(timings[False], timings[True]),
            ]
        )
    print(
        format_table(
            [
                "views",
                "inputs (private)",
                "inputs (shared)",
                "update (private)",
                "update (shared)",
                "speedup",
            ],
            rows,
            title="E11 — ablation: cross-view input sharing",
        )
    )


if __name__ == "__main__":
    main()
