"""E10 — ablation D2: transitive closure maintenance strategy.

The default node materialises every *trail* (needed because the paper's
fragment returns atomic paths); when a query only asks for reachability
(no path variable, DISTINCT results), a pair-based mode in the spirit of
Bergmann et al. [3] suffices.  This experiment quantifies the trade-off:
trail materialisation pays memory and per-edge work proportional to the
number of affected trails; reachability mode stores only pairs but must
re-derive reachable sets on edge deletion.
"""

from __future__ import annotations

import random

import pytest

from repro import PropertyGraph, QueryEngine
from repro.bench import Timer, format_table
from repro.workloads import social

#: reachability-shaped query: no path variable, deduplicated
QUERY = "MATCH (p:Post)-[:REPLY*]->(c:Comm) RETURN DISTINCT p, c"


def workload(persons=10, depth=6):
    return social.generate_social(
        persons=persons, posts_per_person=2, comments_per_post=depth, seed=29
    )


def engine_for(graph, mode: str) -> QueryEngine:
    return QueryEngine(graph, transitive_mode=mode)


# -- pytest-benchmark kernels --------------------------------------------------------


@pytest.mark.parametrize("mode", ["trails", "reachability"])
def test_register(benchmark, mode, bench_sizes):
    net = workload(bench_sizes["persons"])

    def register():
        engine = engine_for(net.graph, mode)
        view = engine.register(QUERY)
        view.detach()

    benchmark(register)


@pytest.mark.parametrize("mode", ["trails", "reachability"])
def test_insert_updates(benchmark, mode, bench_sizes):
    net = workload(bench_sizes["persons"])
    engine = engine_for(net.graph, mode)
    engine.register(QUERY)
    counter = iter(range(10**9))

    def add_reply():
        social.add_comment(net, net.posts[next(counter) % len(net.posts)], "en")

    benchmark(add_reply)


@pytest.mark.parametrize("mode", ["trails", "reachability"])
def test_delete_updates(benchmark, mode, bench_sizes):
    net = workload(bench_sizes["persons"])
    engine = engine_for(net.graph, mode)
    engine.register(QUERY)
    graph = net.graph

    def delete_and_restore():
        edge = next(iter(graph.edges("REPLY")))
        source, target = graph.endpoints(edge)
        graph.remove_edge(edge)
        graph.add_edge(source, target, "REPLY")

    benchmark(delete_and_restore)


def test_modes_agree():
    net = workload(persons=6, depth=4)
    trails_engine = engine_for(net.graph, "trails")
    reach_engine = engine_for(net.graph, "reachability")
    trails_view = trails_engine.register(QUERY)
    reach_view = reach_engine.register(QUERY)
    rng = random.Random(11)
    for _ in range(40):
        if rng.random() < 0.7 or net.graph.edge_count == 0:
            social.add_comment(net, rng.choice(net.posts + net.comments), "en")
        else:
            edge = rng.choice(list(net.graph.edges("REPLY")))
            net.graph.remove_edge(edge)
    oracle = trails_engine.evaluate(QUERY, use_views=False).multiset()
    assert trails_view.multiset() == oracle
    assert reach_view.multiset() == oracle


# -- standalone report ------------------------------------------------------------------


def main() -> None:
    rows = []
    for mode in ("trails", "reachability"):
        net = workload(persons=20, depth=8)
        graph = net.graph
        engine = engine_for(graph, mode)
        with Timer() as t_reg:
            view = engine.register(QUERY)
        memory = view.network.memory_cells()
        with Timer() as t_ins:
            for i in range(50):
                social.add_comment(net, net.posts[i % len(net.posts)], "en")
        with Timer() as t_del:
            for _ in range(50):
                edge = next(iter(graph.edges("REPLY")))
                s, t = graph.endpoints(edge)
                graph.remove_edge(edge)
                graph.add_edge(s, t, "REPLY")
        assert view.multiset() == engine.evaluate(QUERY, use_views=False).multiset()
        rows.append(
            [mode, t_reg.seconds, memory, t_ins.seconds / 50, t_del.seconds / 50]
        )
    print(
        format_table(
            ["mode", "registration", "memory cells", "insert/update", "delete/update"],
            rows,
            title="E10 — ablation D2: trail materialisation vs reachability pairs",
        )
    )


if __name__ == "__main__":
    main()


# -- PropertyGraph import guard (used by doc example) ----------------------------------
_ = PropertyGraph
