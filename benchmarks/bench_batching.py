"""E12 — transaction-batched delta propagation vs. per-event dispatch.

A churn-heavy feed workload (comments added and retired a few operations
later — the social feed's steady state) runs against live views at several
batch sizes.  Per-event dispatch pays full propagation for every
elementary change; batching coalesces each window into one net delta per
input node, so an insert/delete pair that falls inside one window cancels
before any tuple is built.  Expect super-linear wins once windows are
large enough to contain both halves of the churn (batch size ≥ 100).

``batch_size=1`` is the unbatched per-event baseline, so the series stays
comparable with every other experiment in this suite.
"""

from __future__ import annotations

import random
from collections import deque

from repro import QueryEngine
from repro.bench import Timer, format_table, speedup
from repro.workloads import social

VIEW_NAMES = ("running_example", "popular_posts")
CHURN_WINDOW = 3  # ops until a feed comment is retired again

SIZES = {"persons": 8, "posts_per_person": 2, "comments_per_post": 3}


def network(persons: int):
    return social.generate_social(
        persons=persons,
        posts_per_person=SIZES["posts_per_person"],
        comments_per_post=SIZES["comments_per_post"],
        seed=33,
    )


def churn_stream(net, operations: int, seed: int = 13):
    """Feed churn: every op adds a comment; most are retired shortly after.

    Yields once per operation.  A sliding window of ``CHURN_WINDOW`` live
    feed comments is maintained, so in any batch of ≥ CHURN_WINDOW + 1
    operations almost every add meets its delete inside the window.
    """
    rng = random.Random(seed)
    feed: deque[int] = deque()
    for _ in range(operations):
        parent = rng.choice(net.posts)
        comment = social.add_comment(net, parent, rng.choice(social.LANGS))
        feed.append(comment)
        if len(feed) > CHURN_WINDOW:
            social.delete_comment_subtree(net, feed.popleft())
        yield comment


def run_stream(persons: int, operations: int, batch_size: int) -> tuple[float, dict]:
    """Process the churn stream at one batch size; returns (seconds, views).

    ``batch_size=1`` uses plain per-event dispatch (the ablation baseline);
    larger sizes wrap each window of operations in ``engine.batch()``.
    """
    net = network(persons)
    engine = QueryEngine(net.graph)
    views = {name: engine.register(social.QUERIES[name]) for name in VIEW_NAMES}
    stream = churn_stream(net, operations)
    exhausted = object()
    with Timer() as timer:
        if batch_size <= 1:
            for _ in stream:
                pass
        else:
            done = False
            while not done:
                with engine.batch():
                    for _ in range(batch_size):
                        if next(stream, exhausted) is exhausted:
                            done = True
                            break
    for name, view in views.items():
        # identical view contents, verified against the oracle
        assert view.multiset() == engine.evaluate(social.QUERIES[name], use_views=False).multiset(), name
    return timer.seconds, views


# -- pytest-benchmark kernels -------------------------------------------------------


def test_churn_per_event(benchmark, bench_sizes):
    benchmark.pedantic(
        lambda: run_stream(bench_sizes["persons"], 60, batch_size=1),
        rounds=3,
        iterations=1,
    )


def test_churn_batched(benchmark, bench_sizes):
    benchmark.pedantic(
        lambda: run_stream(bench_sizes["persons"], 60, batch_size=60),
        rounds=3,
        iterations=1,
    )


def test_batched_matches_per_event(bench_sizes):
    _, per_event = run_stream(bench_sizes["persons"], 60, batch_size=1)
    _, batched = run_stream(bench_sizes["persons"], 60, batch_size=20)
    for name in VIEW_NAMES:
        assert per_event[name].multiset() == batched[name].multiset(), name


# -- standalone report -----------------------------------------------------------------


def main(persons: int = 12, operations: int = 600) -> None:
    print(
        f"churn workload: {operations} ops "
        f"(~1 comment added + 1 retired per op), views: {list(VIEW_NAMES)}"
    )
    baseline, _ = run_stream(persons, operations, batch_size=1)
    rows = [["1 (per-event)", baseline, f"{operations / baseline:.0f}", "1.0x"]]
    for batch_size in (10, 100, 1000):
        seconds, _ = run_stream(persons, operations, batch_size)
        rows.append(
            [
                str(batch_size),
                seconds,
                f"{operations / seconds:.0f}",
                speedup(baseline, seconds),
            ]
        )
    print(
        format_table(
            ["batch size", "total", "ops/sec", "vs per-event"],
            rows,
            title="E12 — batched delta propagation on feed churn",
        )
    )
    batched_100 = next(float(r[1]) for r in rows if r[0] == "100")
    assert batched_100 < baseline, (
        "batched propagation (batch=100) should beat per-event dispatch"
    )
    print("\nbatched(100) beats per-event ✓ (views verified against oracle)")


if __name__ == "__main__":
    main()
