"""Columnar delta batches vs the row-at-a-time hot path.

An SNB-flavoured churn workload replayed in ``engine.batch()`` windows
over a Person/Post graph, against a view mix that concentrates on the
three columnar levers:

* a **parameter grid** — one two-parameter view
  (``country = $c AND score = $s``) per (country, score) binding.  The
  row baseline's binding tier discriminates on the *first* conjunct
  only, so every Person row fans out to all same-country partitions and
  re-runs the full σ in each; the columnar engine probes one composite
  value bucket,
* **constant selections** over Post languages — pushed into value-level
  router buckets, so property churn on non-matching values never reaches
  (or translates through) the filtered input nodes,
* a **join view** fed whole :class:`~repro.rete.deltas.ColumnDelta`
  batches per window: key extraction is one column transpose and index
  maintenance one bulk ``index_update`` instead of a per-row dict dance.

Every run is correctness-gated: the columnar engine and the
``columnar_deltas=False`` baseline replay the identical stream over
identical graphs, and at the end all view multisets must agree pairwise
*and* with one-shot re-evaluation.

The standalone main asserts a ≥2x throughput win in the full
configuration and writes a ``BENCH_columnar.json`` trajectory point;
``--smoke`` runs a tiny differential-only configuration (no timing
claims) for CI.
"""

from __future__ import annotations

import json
import random
import sys
from pathlib import Path

from repro import PropertyGraph, QueryEngine
from repro.bench import Timer, format_table, speedup

SEED = 31
SMOKE_SIZES = {
    "countries": 3,
    "scores": 3,
    "people": 24,
    "posts": 16,
    "windows": 8,
    "window_ops": 6,
}
FULL_SIZES = {
    "countries": 4,
    "scores": 16,
    "people": 320,
    "posts": 160,
    "windows": 80,
    "window_ops": 30,
}

COUNTRIES = ("cn", "in", "de", "us", "br", "jp")
LANGS = ("en", "de", "hu")

PARAM_QUERY = (
    "MATCH (p:Person) WHERE p.country = $country AND p.score = $score RETURN p"
)
CONST_QUERIES = tuple(
    f"MATCH (p:Post) WHERE p.lang = '{lang}' RETURN p" for lang in LANGS
)
JOIN_QUERY = "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b"
LIKES_QUERY = "MATCH (a:Person)-[:LIKES]->(p:Post) WHERE p.lang = 'en' RETURN a, p"


def build_graph(sizes: dict, seed: int = SEED):
    """Persons (country, score) knowing each other and liking Posts (lang)."""
    rng = random.Random(seed)
    graph = PropertyGraph()
    people = [
        graph.add_vertex(
            labels=["Person"],
            properties={
                "country": COUNTRIES[i % sizes["countries"]],
                "score": rng.randrange(sizes["scores"]),
            },
        )
        for i in range(sizes["people"])
    ]
    posts = [
        graph.add_vertex(labels=["Post"], properties={"lang": rng.choice(LANGS)})
        for _ in range(sizes["posts"])
    ]
    for person in people:
        graph.add_edge(person, rng.choice(people), "KNOWS")
        graph.add_edge(person, rng.choice(posts), "LIKES")
    return graph, people, posts


def register_views(engine: QueryEngine, sizes: dict) -> dict[str, object]:
    """The full grid of parameter bindings plus the constant/join views."""
    views: dict[str, object] = {}
    for c in range(sizes["countries"]):
        for s in range(sizes["scores"]):
            views[f"param:{c}:{s}"] = engine.register(
                PARAM_QUERY,
                parameters={"country": COUNTRIES[c], "score": s},
            )
    for i, query in enumerate(CONST_QUERIES):
        views[f"const:{i}"] = engine.register(query)
    views["join"] = engine.register(JOIN_QUERY)
    views["likes"] = engine.register(LIKES_QUERY)
    return views


def churn_ops(sizes: dict, people, posts, seed: int = SEED + 1):
    """Deterministic update windows, replayable over identical graphs.

    Ops reference entities by precomputed id (vertex and edge id counters
    advance identically on identical graphs), so two engines fed the same
    windows see identical event streams.  The mix is SNB-style interaction
    churn: score drift and country moves on Persons, language fixes on
    Posts, and KNOWS edge churn.
    """
    rng = random.Random(seed)
    edges_created = 2 * len(people)  # the build phase's KNOWS + LIKES edges
    windows = []
    for _ in range(sizes["windows"]):
        ops = []
        for _ in range(sizes["window_ops"]):
            roll = rng.random()
            if roll < 0.55:
                person, value = rng.choice(people), rng.randrange(sizes["scores"])
                ops.append(
                    lambda g, v=person, x=value: g.set_vertex_property(
                        v, "score", x
                    )
                )
            elif roll < 0.65:
                person = rng.choice(people)
                value = COUNTRIES[rng.randrange(sizes["countries"])]
                ops.append(
                    lambda g, v=person, x=value: g.set_vertex_property(
                        v, "country", x
                    )
                )
            elif roll < 0.8:
                post, value = rng.choice(posts), rng.choice(LANGS)
                ops.append(
                    lambda g, v=post, x=value: g.set_vertex_property(v, "lang", x)
                )
            elif roll < 0.92:
                src, tgt = rng.choice(people), rng.choice(people)
                ops.append(lambda g, s=src, t=tgt: g.add_edge(s, t, "KNOWS"))
                edges_created += 1
            else:
                target = max(1, edges_created - rng.randrange(6))
                ops.append(
                    lambda g, e=target: g.remove_edge(e) if g.has_edge(e) else None
                )
        windows.append(ops)
    return windows


def run_stream(sizes: dict, columnar: bool):
    """Replay the churn windows under one delta representation.

    Returns (seconds, views, engine); timing covers only the update loop.
    """
    graph, people, posts = build_graph(sizes)
    engine = QueryEngine(graph, columnar_deltas=columnar)
    views = register_views(engine, sizes)
    windows = churn_ops(sizes, people, posts)
    with Timer() as timer:
        for ops in windows:
            with engine.batch():
                for op in ops:
                    op(graph)
    return timer.seconds, views, engine


def verify(sizes: dict, columnar_views, row_views, engine) -> None:
    """The differential oracle gate: columnar == row == recomputation."""
    for c in range(sizes["countries"]):
        for s in range(sizes["scores"]):
            name = f"param:{c}:{s}"
            parameters = {"country": COUNTRIES[c], "score": s}
            columnar = columnar_views[name].multiset()
            assert columnar == row_views[name].multiset(), name
            assert (
                columnar
                == engine.evaluate(
                    PARAM_QUERY, parameters, use_views=False
                ).multiset()
            ), name
    for name, query in [
        (f"const:{i}", query) for i, query in enumerate(CONST_QUERIES)
    ] + [("join", JOIN_QUERY), ("likes", LIKES_QUERY)]:
        columnar = columnar_views[name].multiset()
        assert columnar == row_views[name].multiset(), name
        assert (
            columnar == engine.evaluate(query, use_views=False).multiset()
        ), name


def run_pair(sizes: dict, rounds: int = 1):
    """Best-of-*rounds* for each mode (both modes measured identically)."""
    columnar_seconds, columnar_views, columnar_engine = run_stream(sizes, True)
    row_seconds, row_views, _ = run_stream(sizes, False)
    verify(sizes, columnar_views, row_views, columnar_engine)
    for _ in range(rounds - 1):
        columnar_seconds = min(columnar_seconds, run_stream(sizes, True)[0])
        row_seconds = min(row_seconds, run_stream(sizes, False)[0])
    return columnar_seconds, row_seconds


# -- pytest-benchmark kernels --------------------------------------------------


def test_columnar_stream(benchmark):
    benchmark.pedantic(
        lambda: run_stream(SMOKE_SIZES, True), rounds=3, iterations=1
    )


def test_row_stream(benchmark):
    benchmark.pedantic(
        lambda: run_stream(SMOKE_SIZES, False), rounds=3, iterations=1
    )


def test_columnar_matches_row_and_oracle():
    run_pair(SMOKE_SIZES)


# -- standalone report ---------------------------------------------------------


def main(smoke: bool = False) -> None:
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    operations = sizes["windows"] * sizes["window_ops"]
    bindings = sizes["countries"] * sizes["scores"]
    print(
        f"columnar churn: {operations} events in {sizes['windows']} batch "
        f"windows, {bindings} parameter bindings + {len(CONST_QUERIES)} "
        f"constant selections + 2 join views"
    )
    columnar_seconds, row_seconds = run_pair(sizes, rounds=1 if smoke else 3)
    print("differential oracle: columnar == row == recomputation ✓")
    rows = [
        [
            "row-at-a-time (columnar_deltas=False)",
            row_seconds,
            f"{operations / row_seconds:.0f}",
            "1.0x",
        ],
        [
            "columnar (ColumnDelta batches)",
            columnar_seconds,
            f"{operations / columnar_seconds:.0f}",
            speedup(row_seconds, columnar_seconds),
        ],
    ]
    print(
        format_table(
            ["hot path", "total", "events/sec", "vs row"],
            rows,
            title="columnar delta batches on SNB-style windowed churn",
        )
    )
    ratio = row_seconds / columnar_seconds
    if smoke:
        print("\nsmoke mode: both delta representations exercised, timings "
              "not asserted")
        return
    point = {
        "experiment": "columnar",
        "events": operations,
        "windows": sizes["windows"],
        "bindings": bindings,
        "row_seconds": row_seconds,
        "columnar_seconds": columnar_seconds,
        "row_events_per_sec": operations / row_seconds,
        "columnar_events_per_sec": operations / columnar_seconds,
        "speedup": ratio,
    }
    Path("BENCH_columnar.json").write_text(json.dumps(point, indent=2) + "\n")
    print(f"\nwrote BENCH_columnar.json (speedup {ratio:.1f}x)")
    assert ratio >= 2.0, (
        f"columnar hot path should be ≥2x the row path on windowed churn, "
        f"got {ratio:.1f}x"
    )
    print(f"columnar ≥2x row path at {bindings} bindings ✓")


if __name__ == "__main__":
    main(smoke="--smoke" in sys.argv[1:])
