"""Column-backed node memories vs the row-dict path: cells and churn.

A multigraph workload built to expose the one thing
``columnar_memories=True`` changes — how β-memory state is *stored*.
Persons pair up and each pair carries ``FAN`` parallel ``KNOWS`` and
``CALLS`` edges; the view mix is 64 overlapping COUNT-aggregate views
over the two-edge join

    MATCH (a:Person)-[k:KNOWS]->(b:Person), (a)-[c:CALLS]->(b)
    WHERE a.grp = <g> RETURN count(*) AS n

so every join memory keys on the shared ``(a, b)`` attributes (width 2)
and stores one edge-id payload cell per occurrence.  The row-dict path
keeps the full 3-wide row per entry; the column store keeps the 1-wide
payload per entry plus the 2-wide key once per distinct pair — with
``FAN`` parallel edges per pair that is a 3/(1 + 2/FAN) ≈ 2.4x cell
reduction at FAN=8, which the full run asserts clears **1.5x** after
churn.  Views overlap eight-to-one on their shared subplans, so the
engine-wide row interner also folds the transition-sensitive count-map
keys into one pool.

Every run is correctness-gated: the column-memory engine and the
``columnar_memories=False`` baseline replay the identical stream over
identical graphs, and at the end all view multisets must agree pairwise
*and* with one-shot re-evaluation.  The standalone main additionally
asserts the churn loop got **no slower** (within noise tolerance) and
writes a ``BENCH_columnar_memory.json`` trajectory point; ``--smoke``
runs a tiny differential-only configuration for CI.
"""

from __future__ import annotations

import json
import random
import sys
from pathlib import Path

from repro import PropertyGraph, QueryEngine
from repro.bench import Timer, format_table, speedup

SEED = 47
GROUPS = 8
VIEWS = 64
FAN = 8

SMOKE_SIZES = {"pairs": 12, "windows": 6, "window_ops": 5}
FULL_SIZES = {"pairs": 96, "windows": 60, "window_ops": 25}

VIEW_QUERY = (
    "MATCH (a:Person)-[k:KNOWS]->(b:Person), (a)-[c:CALLS]->(b) "
    "WHERE a.grp = {group} RETURN count(*) AS n"
)


def build_graph(sizes: dict, seed: int = SEED):
    """Person pairs with ``FAN`` parallel KNOWS and CALLS edges each."""
    rng = random.Random(seed)
    graph = PropertyGraph()
    people = [
        graph.add_vertex(labels=["Person"], properties={"grp": i % GROUPS})
        for i in range(2 * sizes["pairs"])
    ]
    pairs = [
        (people[2 * i], people[2 * i + 1]) for i in range(sizes["pairs"])
    ]
    for a, b in pairs:
        for _ in range(FAN):
            graph.add_edge(a, b, "KNOWS")
            graph.add_edge(a, b, "CALLS")
    del rng  # placement is deterministic; kept for signature symmetry
    return graph, people, pairs


def register_views(engine: QueryEngine) -> dict[str, object]:
    """64 COUNT views, eight per group — eight-way subplan overlap."""
    return {
        f"count:{i}": engine.register(VIEW_QUERY.format(group=i % GROUPS))
        for i in range(VIEWS)
    }


def churn_ops(sizes: dict, people, pairs, seed: int = SEED + 1):
    """Deterministic update windows, replayable over identical graphs.

    The mix churns exactly what the join memories index: parallel-edge
    add/remove inside existing pairs (occurrence-level fold traffic) and
    group flips on Persons (selection-partition migration).
    """
    rng = random.Random(seed)
    edges_created = 2 * FAN * len(pairs)
    windows = []
    for _ in range(sizes["windows"]):
        ops = []
        for _ in range(sizes["window_ops"]):
            roll = rng.random()
            if roll < 0.45:
                a, b = rng.choice(pairs)
                label = rng.choice(("KNOWS", "CALLS"))
                ops.append(lambda g, s=a, t=b, l=label: g.add_edge(s, t, l))
                edges_created += 1
            elif roll < 0.75:
                target = max(1, edges_created - rng.randrange(4 * FAN))
                ops.append(
                    lambda g, e=target: g.remove_edge(e) if g.has_edge(e) else None
                )
            else:
                person = rng.choice(people)
                value = rng.randrange(GROUPS)
                ops.append(
                    lambda g, v=person, x=value: g.set_vertex_property(
                        v, "grp", x
                    )
                )
        windows.append(ops)
    return windows


def run_stream(sizes: dict, columnar: bool):
    """Replay the churn windows under one memory representation.

    Returns (seconds, views, engine); timing covers only the update loop.
    """
    graph, people, pairs = build_graph(sizes)
    engine = QueryEngine(graph, columnar_memories=columnar)
    views = register_views(engine)
    windows = churn_ops(sizes, people, pairs)
    with Timer() as timer:
        for ops in windows:
            with engine.batch():
                for op in ops:
                    op(graph)
    return timer.seconds, views, engine


def verify(columnar_views, row_views, engine) -> None:
    """The differential oracle gate: columnar == row == recomputation."""
    for i in range(VIEWS):
        name = f"count:{i}"
        query = VIEW_QUERY.format(group=i % GROUPS)
        columnar = columnar_views[name].multiset()
        assert columnar == row_views[name].multiset(), name
        assert (
            columnar == engine.evaluate(query, use_views=False).multiset()
        ), name


def run_pair(sizes: dict, rounds: int = 1):
    """Times and memory-cell totals for both representations."""
    columnar_seconds, columnar_views, columnar_engine = run_stream(sizes, True)
    row_seconds, row_views, row_engine = run_stream(sizes, False)
    verify(columnar_views, row_views, columnar_engine)
    assert columnar_engine.memory_size() == row_engine.memory_size()
    cells = (columnar_engine.memory_cells(), row_engine.memory_cells())
    for _ in range(rounds - 1):
        columnar_seconds = min(columnar_seconds, run_stream(sizes, True)[0])
        row_seconds = min(row_seconds, run_stream(sizes, False)[0])
    return columnar_seconds, row_seconds, cells


# -- pytest-benchmark kernels --------------------------------------------------


def test_columnar_memory_stream(benchmark):
    benchmark.pedantic(
        lambda: run_stream(SMOKE_SIZES, True), rounds=3, iterations=1
    )


def test_row_memory_stream(benchmark):
    benchmark.pedantic(
        lambda: run_stream(SMOKE_SIZES, False), rounds=3, iterations=1
    )


def test_columnar_memory_matches_row_and_oracle():
    _, _, (columnar_cells, row_cells) = run_pair(SMOKE_SIZES)
    assert 0 < columnar_cells < row_cells


# -- standalone report ---------------------------------------------------------


def main(smoke: bool = False, out: str | None = None) -> None:
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    operations = sizes["windows"] * sizes["window_ops"]
    print(
        f"columnar memory churn: {operations} events over "
        f"{sizes['pairs']} pairs x {2 * FAN} parallel edges, "
        f"{VIEWS} COUNT views ({VIEWS // GROUPS} per group)"
    )
    columnar_seconds, row_seconds, (columnar_cells, row_cells) = run_pair(
        sizes, rounds=1 if smoke else 3
    )
    print("differential oracle: columnar == row == recomputation ✓")
    ratio = row_cells / columnar_cells
    rows = [
        [
            "row dicts (columnar_memories=False)",
            row_seconds,
            f"{row_cells}",
            "1.00x",
        ],
        [
            "column stores (ColumnStore + interner)",
            columnar_seconds,
            f"{columnar_cells}",
            f"{ratio:.2f}x",
        ],
    ]
    print(
        format_table(
            ["node memories", "churn total", "memory cells", "cells saved"],
            rows,
            title=f"column-backed memories at {VIEWS} overlapping views",
        )
    )
    point = {
        "experiment": "columnar_memory",
        "events": operations,
        "views": VIEWS,
        "fan_in": FAN,
        "row_cells": row_cells,
        "columnar_cells": columnar_cells,
        "cells_reduction": ratio,
        "row_seconds": row_seconds,
        "columnar_seconds": columnar_seconds,
        "row_events_per_sec": operations / row_seconds,
        "columnar_events_per_sec": operations / columnar_seconds,
        "churn_speedup": row_seconds / columnar_seconds,
    }
    if out is not None:
        directory = Path(out)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "BENCH_columnar_memory.json").write_text(
            json.dumps(point, indent=2) + "\n"
        )
    if smoke:
        assert ratio > 1.0, (
            f"column stores must not inflate cells, got {ratio:.2f}x"
        )
        print("\nsmoke mode: both representations exercised, cell reduction "
              f"{ratio:.2f}x, timings not asserted")
        return
    Path("BENCH_columnar_memory.json").write_text(
        json.dumps(point, indent=2) + "\n"
    )
    print(f"\nwrote BENCH_columnar_memory.json (cells {ratio:.2f}x, churn "
          f"{speedup(row_seconds, columnar_seconds)})")
    assert ratio >= 1.5, (
        f"column stores should cut memory cells ≥1.5x at fan-in {FAN}, "
        f"got {ratio:.2f}x"
    )
    assert columnar_seconds <= row_seconds * 1.15, (
        f"churn must not regress: columnar {columnar_seconds:.3f}s vs row "
        f"{row_seconds:.3f}s"
    )
    print(f"cells ≥1.5x smaller and churn within noise of the row path ✓")


if __name__ == "__main__":
    argv = sys.argv[1:]
    main(
        smoke="--smoke" in argv,
        out=argv[argv.index("--out") + 1] if "--out" in argv else None,
    )
