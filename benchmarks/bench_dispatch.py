"""E13 — interest-routed event dispatch vs. the broadcast baseline.

A many-views deployment over a 50-label social-style graph: per label,
four distinct view shapes (two vertex signatures, two edge signatures —
different users watching the same community through different queries),
200 registered input signatures in all.  The churn stream mixes ranked-key
updates (affect one view), metadata-key updates and auxiliary label flips
(affect none — no signature watches them), and edge churn (affect one edge
view).  Broadcast dispatch hands every event to every input node, so
per-event cost grows with the number of *registered* signatures; the
:class:`~repro.rete.router.EventRouter` consults its inverted interest
indexes and touches only the nodes the event can possibly concern, keeping
the cost O(affected) — the paper's IVM property restored at the dispatch
layer.

Every run is correctness-gated: the routed engine and the broadcast
engine replay the identical stream over identical graphs, and at the end
all view multisets must agree pairwise *and* with one-shot re-evaluation.

The standalone main asserts a ≥5x throughput win at 50+ signatures and
writes a ``BENCH_dispatch.json`` trajectory point; ``--smoke`` runs a
tiny differential-only configuration (no timing claims) for CI.
"""

from __future__ import annotations

import json
import random
import sys
from pathlib import Path

from repro import PropertyGraph, QueryEngine
from repro.bench import Timer, format_table, speedup

SEED = 77
SMOKE_SIZES = {"labels": 6, "vertices_per_label": 4, "operations": 120}
FULL_SIZES = {"labels": 50, "vertices_per_label": 10, "operations": 4000}


def build_graph(labels: int, vertices_per_label: int, seed: int = SEED):
    """A social-style graph: one community per label, typed edges inside."""
    rng = random.Random(seed)
    graph = PropertyGraph()
    by_label: list[list[int]] = []
    for i in range(labels):
        members = [
            graph.add_vertex(
                labels=[f"L{i}"], properties={"score": rng.randint(0, 9)}
            )
            for _ in range(vertices_per_label)
        ]
        by_label.append(members)
    for i, members in enumerate(by_label):
        for vertex in members:
            graph.add_edge(
                vertex, rng.choice(members), f"T{i}", properties={"w": 1}
            )
    return graph, by_label


VIEW_SHAPES = (
    ("score", "MATCH (n:L{i}) RETURN n, n.score"),
    ("name", "MATCH (n:L{i}) RETURN n, n.name"),
    ("edges", "MATCH (a)-[r:T{i}]->(b) RETURN a, b"),
    ("weights", "MATCH (a)-[r:T{i}]->(b) RETURN a, b, r.w"),
)


def register_views(engine: QueryEngine, labels: int) -> dict[str, object]:
    """Four distinct input signatures per label: 4×labels in total."""
    views = {}
    for i in range(labels):
        for shape, template in VIEW_SHAPES:
            views[f"{shape}{i}"] = engine.register(template.format(i=i))
    return views


def churn_ops(labels: int, by_label, operations: int, seed: int = SEED + 1):
    """A deterministic op list, each op touching exactly one community.

    Ops reference entities by precomputed id (vertex and edge id counters
    advance identically on identical graphs), so replaying the list over
    two identical graphs produces identical event streams.
    """
    rng = random.Random(seed)
    ops = []
    edges_created = sum(len(members) for members in by_label)  # build edges
    for _ in range(operations):
        i = rng.randrange(labels)
        members = by_label[i]
        roll = rng.random()
        if roll < 0.2:
            # ranked-key update: exactly one vertex view cares
            vertex, value = rng.choice(members), rng.randint(0, 9)
            ops.append(
                lambda g, v=vertex, x=value: g.set_vertex_property(v, "score", x)
            )
        elif roll < 0.5:
            # metadata-key update: no registered signature watches it
            vertex, value = rng.choice(members), rng.randint(0, 999)
            ops.append(
                lambda g, v=vertex, x=value: g.set_vertex_property(v, "viewed", x)
            )
        elif roll < 0.65:
            src, tgt = rng.choice(members), rng.choice(members)
            ops.append(lambda g, s=src, t=tgt, et=f"T{i}": g.add_edge(s, t, et))
            edges_created += 1
        elif roll < 0.75:
            target = max(1, edges_created - rng.randrange(4))
            ops.append(
                lambda g, e=target: g.remove_edge(e) if g.has_edge(e) else None
            )
        else:
            # auxiliary label flip: outside every view's label constraints
            vertex = rng.choice(members)
            ops.append(
                lambda g, v=vertex, lbl=f"X{i}": (
                    g.add_label(v, lbl)
                    if lbl not in g.labels_of(v)
                    else g.remove_label(v, lbl)
                )
            )
    return ops


def run_stream(
    sizes: dict, route_events: bool, columnar: bool = True, workers: int = 0
):
    """Replay the churn stream under one dispatch mode.

    Returns (seconds, views, engine); timing covers only the event loop.
    With ``workers > 0`` maintenance runs on the sharded multi-process
    tier (interest summaries then slice the fan-out the same way the
    router slices in-process dispatch) — callers own the shutdown.
    """
    graph, by_label = build_graph(sizes["labels"], sizes["vertices_per_label"])
    engine = QueryEngine(
        graph, route_events=route_events, columnar_deltas=columnar,
        workers=workers,
    )
    views = register_views(engine, sizes["labels"])
    ops = churn_ops(sizes["labels"], by_label, sizes["operations"])
    with Timer() as timer:
        for op in ops:
            op(graph)
    return timer.seconds, views, engine


def verify(sizes: dict, routed_views, broadcast_views, engine) -> None:
    """The differential oracle gate: routed == broadcast == recomputation."""
    for i in range(sizes["labels"]):
        for shape, template in VIEW_SHAPES:
            name, query = f"{shape}{i}", template.format(i=i)
            routed = routed_views[name].multiset()
            assert routed == broadcast_views[name].multiset(), name
            assert routed == engine.evaluate(query, use_views=False).multiset(), name


def run_pair(sizes: dict, rounds: int = 1, columnar: bool = True):
    """Best-of-*rounds* for each mode (both modes measured identically)."""
    routed_seconds, routed_views, routed_engine = run_stream(
        sizes, True, columnar
    )
    broadcast_seconds, broadcast_views, _ = run_stream(sizes, False, columnar)
    verify(sizes, routed_views, broadcast_views, routed_engine)
    for _ in range(rounds - 1):
        routed_seconds = min(
            routed_seconds, run_stream(sizes, True, columnar)[0]
        )
        broadcast_seconds = min(
            broadcast_seconds, run_stream(sizes, False, columnar)[0]
        )
    return routed_seconds, broadcast_seconds


# -- pytest-benchmark kernels --------------------------------------------------


def test_dispatch_routed(benchmark):
    benchmark.pedantic(
        lambda: run_stream(SMOKE_SIZES, True), rounds=3, iterations=1
    )


def test_dispatch_broadcast(benchmark):
    benchmark.pedantic(
        lambda: run_stream(SMOKE_SIZES, False), rounds=3, iterations=1
    )


def test_routed_matches_broadcast_and_oracle():
    run_pair(SMOKE_SIZES)


# -- standalone report ---------------------------------------------------------


def main(smoke: bool = False, columnar: bool = True, workers: int = 0) -> None:
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    signatures = len(VIEW_SHAPES) * sizes["labels"]
    operations = sizes["operations"]
    print(
        f"dispatch churn: {operations} events, {signatures} registered "
        f"input signatures ({sizes['labels']} labels × {len(VIEW_SHAPES)} "
        f"view shapes), columnar_deltas={columnar}"
        + (f", workers={workers}" if workers else "")
    )
    routed_seconds, broadcast_seconds = run_pair(
        sizes, rounds=1 if smoke else 3, columnar=columnar
    )
    print("differential oracle: routed == broadcast == recomputation ✓")
    rows = [
        [
            "broadcast (route_events=False)",
            broadcast_seconds,
            f"{operations / broadcast_seconds:.0f}",
            "1.0x",
        ],
        [
            "routed (EventRouter)",
            routed_seconds,
            f"{operations / routed_seconds:.0f}",
            speedup(broadcast_seconds, routed_seconds),
        ],
    ]
    sharded_seconds = None
    if workers:
        sharded_seconds, sharded_views, sharded_engine = run_stream(
            sizes, True, columnar, workers=workers
        )
        try:
            # same oracle gate as the in-process pair: every sharded view
            # must equal one-shot recomputation over the final graph
            verify(sizes, sharded_views, sharded_views, sharded_engine)
        finally:
            sharded_engine.shutdown()
        rows.append(
            [
                f"routed + sharded ({workers} workers)",
                sharded_seconds,
                f"{operations / sharded_seconds:.0f}",
                speedup(broadcast_seconds, sharded_seconds),
            ]
        )
    print(
        format_table(
            ["dispatch", "total", "events/sec", "vs broadcast"],
            rows,
            title="E13 — interest-routed dispatch on a many-views deployment",
        )
    )
    ratio = broadcast_seconds / routed_seconds
    if smoke:
        print("\nsmoke mode: dispatch paths exercised, timings not asserted")
        return
    point = {
        "experiment": "dispatch",
        "signatures": signatures,
        "events": operations,
        "broadcast_seconds": broadcast_seconds,
        "routed_seconds": routed_seconds,
        "broadcast_events_per_sec": operations / broadcast_seconds,
        "routed_events_per_sec": operations / routed_seconds,
        "speedup": ratio,
    }
    if sharded_seconds is not None:
        point["workers"] = workers
        point["sharded_seconds"] = sharded_seconds
        point["sharded_events_per_sec"] = operations / sharded_seconds
    Path("BENCH_dispatch.json").write_text(json.dumps(point, indent=2) + "\n")
    print(f"\nwrote BENCH_dispatch.json (speedup {ratio:.1f}x)")
    assert ratio >= 5.0, (
        f"routed dispatch should be ≥5x broadcast at {signatures} "
        f"signatures, got {ratio:.1f}x"
    )
    print(f"routed ≥5x broadcast at {signatures} signatures ✓")


if __name__ == "__main__":
    _argv = sys.argv[1:]
    main(
        smoke="--smoke" in _argv,
        columnar="--no-columnar" not in _argv,
        workers=(
            int(_argv[_argv.index("--workers") + 1])
            if "--workers" in _argv
            else 0
        ),
    )
