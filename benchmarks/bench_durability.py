"""E15 — durability overhead and recovery time.

The WAL subscribes to the same event stream as the Rete network, so
durability is a fixed per-event tax.  Measured:

* mutation throughput: bare store / WAL (eager flush) / WAL + fsync,
* recovery time as the log grows, and the effect of checkpointing
  (snapshot + truncated log) on recovery — the reason checkpoints exist.

Run standalone for the sweep table; the pytest kernels time the flush
configuration used by default.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from repro import PropertyGraph
from repro.bench import Timer, format_table
from repro.graph.persistence import DurableGraph, WriteAheadLog, replay_wal


def mutate(graph: PropertyGraph, operations: int) -> None:
    vertices = []
    for index in range(operations):
        kind = index % 4
        if kind == 0 or len(vertices) < 2:
            vertices.append(
                graph.add_vertex(labels=["Post"], properties={"n": index})
            )
        elif kind == 1:
            graph.add_edge(vertices[-2], vertices[-1], "REPLY")
        elif kind == 2:
            graph.set_vertex_property(vertices[index % len(vertices)], "n", index)
        else:
            graph.add_label(vertices[index % len(vertices)], "Seen")


# -- pytest-benchmark kernels ----------------------------------------------------


def test_mutations_bare(benchmark):
    graph = PropertyGraph()
    benchmark(lambda: mutate(graph, 100))


def test_mutations_with_wal(benchmark, tmp_path):
    graph = PropertyGraph()
    wal = WriteAheadLog(graph, tmp_path / "wal.jsonl")
    benchmark(lambda: mutate(graph, 100))
    wal.close()


def test_recovery_replay(benchmark, tmp_path):
    graph = PropertyGraph()
    with WriteAheadLog(graph, tmp_path / "wal.jsonl"):
        mutate(graph, 2000)
    benchmark(lambda: replay_wal(tmp_path / "wal.jsonl"))


def test_checkpoint_bounds_recovery(tmp_path):
    plain = DurableGraph(tmp_path / "plain")
    mutate(plain.graph, 1500)
    plain.close()

    checkpointed = DurableGraph(tmp_path / "ckpt")
    mutate(checkpointed.graph, 1500)
    checkpointed.checkpoint()
    mutate(checkpointed.graph, 30)
    checkpointed.close()

    with Timer() as t_plain:
        DurableGraph(tmp_path / "plain").close()
    with Timer() as t_ckpt:
        recovered = DurableGraph(tmp_path / "ckpt")
    assert recovered.recovered_wal_records == 30
    recovered.close()
    # snapshot loading is O(state), log replay O(history); with a long
    # history and short tail the checkpointed store must not recover slower
    assert t_ckpt.seconds <= t_plain.seconds * 2.0


# -- standalone report --------------------------------------------------------------


def main() -> None:
    operations = 3000

    rows = []
    for label, make in (
        ("bare store", lambda d: (PropertyGraph(), None)),
        (
            "WAL (flush)",
            lambda d: _with_wal(d, fsync=False),
        ),
        (
            "WAL (fsync)",
            lambda d: _with_wal(d, fsync=True),
        ),
    ):
        directory = Path(tempfile.mkdtemp(prefix="repro-dur-"))
        try:
            graph, wal = make(directory)
            with Timer() as timer:
                mutate(graph, operations)
            if wal is not None:
                wal.close()
            rows.append(
                [
                    label,
                    timer.seconds / operations,
                    f"{operations / timer.seconds:,.0f}",
                ]
            )
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    print(
        format_table(
            ["mode", "per mutation", "mutations/s"],
            rows,
            title="E15 — durability overhead",
        )
    )

    print()
    rows = []
    for history in (1000, 5000, 20000):
        directory = Path(tempfile.mkdtemp(prefix="repro-rec-"))
        try:
            durable = DurableGraph(directory)
            mutate(durable.graph, history)
            durable.close()
            with Timer() as replay_timer:
                recovered = DurableGraph(directory)
            recovered.checkpoint()
            mutate(recovered.graph, 50)
            recovered.close()
            with Timer() as checkpoint_timer:
                DurableGraph(directory).close()
            rows.append(
                [
                    history,
                    replay_timer.seconds,
                    checkpoint_timer.seconds,
                ]
            )
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    print(
        format_table(
            ["history (events)", "recovery (log replay)", "recovery (snapshot+tail)"],
            rows,
            title="recovery time: full-log replay vs checkpointed",
        )
    )


def _with_wal(directory: Path, fsync: bool):
    graph = PropertyGraph()
    wal = WriteAheadLog(graph, directory / "wal.jsonl", fsync=fsync)
    return graph, wal


if __name__ == "__main__":
    main()
