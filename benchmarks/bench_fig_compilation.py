"""E2 — the paper's compilation pipeline (§4 steps 1–3).

Regenerates the worked example: the GRA, NRA and FRA forms of the running
example including the ``{lang → pL}`` pushdown annotations, and measures
compilation cost per stage across a mix of query shapes.
"""

from __future__ import annotations

from repro.bench import Timer, format_table
from repro.compiler import compile_query
from repro.compiler.cypher_to_gra import compile_to_gra
from repro.compiler.gra_to_nra import lower_to_nra
from repro.compiler.nra_to_fra import flatten_to_fra
from repro.compiler.optimizer import optimize
from repro.cypher import parse
from repro.workloads import social, trainbenchmark

PAPER_QUERY = social.RUNNING_EXAMPLE_QUERY

QUERY_MIX = {
    "paper_example": PAPER_QUERY,
    "route_sensor": trainbenchmark.QUERIES["RouteSensor"],
    "connected_segments": trainbenchmark.QUERIES["ConnectedSegments"],
    "aggregation": social.QUERIES["posts_per_person"],
}


# -- pytest-benchmark kernels --------------------------------------------------


def test_parse(benchmark):
    benchmark(lambda: parse(PAPER_QUERY))


def test_compile_full_pipeline(benchmark):
    benchmark(lambda: compile_query(PAPER_QUERY))


def test_compile_route_sensor(benchmark):
    benchmark(lambda: compile_query(trainbenchmark.QUERIES["RouteSensor"]))


def test_compile_connected_segments(benchmark):
    benchmark(lambda: compile_query(trainbenchmark.QUERIES["ConnectedSegments"]))


def test_stage_gra(benchmark):
    syntax = parse(PAPER_QUERY)
    benchmark(lambda: compile_to_gra(syntax))


def test_stage_nra(benchmark):
    gra = compile_to_gra(parse(PAPER_QUERY))
    benchmark(lambda: lower_to_nra(gra))


def test_stage_fra(benchmark):
    nra = lower_to_nra(compile_to_gra(parse(PAPER_QUERY)))
    benchmark(lambda: flatten_to_fra(nra))


# -- standalone report ----------------------------------------------------------


def main() -> None:
    compiled = compile_query(PAPER_QUERY)
    print(compiled.explain())
    print()

    rows = []
    for name, query in QUERY_MIX.items():
        syntax_t = Timer()
        with syntax_t:
            syntax = parse(query)
        gra_t = Timer()
        with gra_t:
            gra = compile_to_gra(syntax)
        nra_t = Timer()
        with nra_t:
            nra = lower_to_nra(gra)
        fra_t = Timer()
        with fra_t:
            fra = flatten_to_fra(nra)
        opt_t = Timer()
        with opt_t:
            optimize(fra)
        rows.append(
            [
                name,
                syntax_t.seconds,
                gra_t.seconds,
                nra_t.seconds,
                fra_t.seconds,
                opt_t.seconds,
            ]
        )
    print(
        format_table(
            ["query", "parse", "→GRA", "→NRA", "→FRA", "optimize"],
            rows,
            title="E2 — per-stage compilation cost",
        )
    )


if __name__ == "__main__":
    main()
