"""E1 — the paper's running example (§2) under maintenance.

Regenerates the paper's result table for the query

    MATCH t = (p:Post)-[:REPLY*]->(c:Comm)
    WHERE p.lang = c.lang
    RETURN p, t

and measures the cost of keeping it fresh: incremental propagation of one
update versus full recomputation (what a system without IVM must do),
including the atomic-path delete/re-derive case the paper motivates.
"""

from __future__ import annotations

from repro import PropertyGraph, QueryEngine
from repro.bench import Timer, format_table, speedup
from repro.workloads import social

QUERY = social.RUNNING_EXAMPLE_QUERY


def paper_graph() -> PropertyGraph:
    graph = PropertyGraph()
    post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
    c2 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
    c3 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
    graph.add_edge(post, c2, "REPLY")
    graph.add_edge(c2, c3, "REPLY")
    return graph


def bigger_example(threads: int = 50, depth: int = 6):
    """Many running-example threads, so the update cost difference shows."""
    net = social.generate_social(
        persons=threads // 2 or 1,
        posts_per_person=2,
        comments_per_post=depth,
        seed=42,
    )
    return net


# -- pytest-benchmark kernels -------------------------------------------------


def test_register_view(benchmark):
    net = bigger_example()

    def register():
        engine = QueryEngine(net.graph)
        view = engine.register(QUERY)
        view.detach()
        return view

    benchmark(register)


def test_incremental_new_reply(benchmark):
    net = bigger_example()
    engine = QueryEngine(net.graph)
    engine.register(QUERY)
    posts = net.posts

    counter = iter(range(10**9))

    def add_comment():
        social.add_comment(net, posts[next(counter) % len(posts)], "en")

    benchmark(add_comment)


def test_recompute_new_reply(benchmark):
    net = bigger_example()
    engine = QueryEngine(net.graph)
    posts = net.posts
    counter = iter(range(10**9))

    def add_comment_and_recompute():
        social.add_comment(net, posts[next(counter) % len(posts)], "en")
        engine.evaluate(QUERY, use_views=False)

    benchmark(add_comment_and_recompute)


def test_incremental_path_delete(benchmark):
    net = bigger_example()
    engine = QueryEngine(net.graph)
    engine.register(QUERY)
    graph = net.graph

    def delete_and_restore():
        edge = next(iter(graph.edges("REPLY")))
        source, target = graph.endpoints(edge)
        graph.remove_edge(edge)
        graph.add_edge(source, target, "REPLY")

    benchmark(delete_and_restore)


def test_oracle_agreement():
    """Sanity: the measured view is correct, not just fast."""
    net = bigger_example(threads=10, depth=4)
    engine = QueryEngine(net.graph)
    view = engine.register(QUERY)
    for _ in social.update_stream(net, 50, seed=3):
        pass
    assert view.multiset() == engine.evaluate(QUERY, use_views=False).multiset()


# -- standalone report --------------------------------------------------------


def main() -> None:
    graph = paper_graph()
    engine = QueryEngine(graph)
    view = engine.register(QUERY)
    print("Paper §2 result table (reproduced):")
    print(view.result_table().to_text())
    print()

    net = bigger_example()
    engine = QueryEngine(net.graph)
    view = engine.register(QUERY)
    rows = []

    with Timer() as t_inc:
        social.add_comment(net, net.posts[0], "en")
    with Timer() as t_re:
        engine.evaluate(QUERY, use_views=False)
    rows.append(["insert reply", t_inc.seconds, t_re.seconds, speedup(t_re.seconds, t_inc.seconds)])

    edge = next(iter(net.graph.edges("REPLY")))
    s, t = net.graph.endpoints(edge)
    with Timer() as t_inc:
        net.graph.remove_edge(edge)
        net.graph.add_edge(s, t, "REPLY")
    with Timer() as t_re:
        engine.evaluate(QUERY, use_views=False)
    rows.append(["delete+re-add edge (atomic paths)", t_inc.seconds, t_re.seconds, speedup(t_re.seconds, t_inc.seconds)])

    message = net.posts[0]
    with Timer() as t_inc:
        net.graph.set_vertex_property(message, "lang", "de")
    with Timer() as t_re:
        engine.evaluate(QUERY, use_views=False)
    rows.append(["change lang property", t_inc.seconds, t_re.seconds, speedup(t_re.seconds, t_inc.seconds)])

    print(
        format_table(
            ["update", "incremental", "recompute", "speedup"],
            rows,
            title=f"E1 — running example maintenance ({net.graph.stats()})",
        )
    )
    assert view.multiset() == engine.evaluate(QUERY, use_views=False).multiset()


if __name__ == "__main__":
    main()
