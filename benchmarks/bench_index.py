"""E16 — property indexes on the write path's pattern matcher.

MERGE and MATCH-with-property-map statements degrade to label scans on
a bare store; a ``(label, key)`` index turns the anchor lookup into a hash
probe.  This experiment measures MERGE throughput and anchored-MATCH
statement latency against the tag-dictionary size, with and without an
index — the access-path story every database course tells, reproduced on
this engine's write path.

(The Rete read path is unaffected: its input nodes stream *changes*, not
scans, which is the paper's whole point.)
"""

from __future__ import annotations

from repro import PropertyGraph, QueryEngine
from repro.bench import Timer, format_table, speedup


def tag_store(size: int, indexed: bool) -> QueryEngine:
    graph = PropertyGraph()
    if indexed:
        graph.create_index("Tag", "name")
    engine = QueryEngine(graph)
    for index in range(size):
        graph.add_vertex(labels=["Tag"], properties={"name": f"tag-{index}"})
    return engine


def merge_round(engine: QueryEngine, count: int, offset: int = 0) -> None:
    for index in range(count):
        engine.execute(
            "MERGE (t:Tag {name: $name})",
            parameters={"name": f"tag-{(index + offset) * 7 % 1000}"},
        )


# -- pytest-benchmark kernels ----------------------------------------------------


def test_merge_indexed(benchmark):
    engine = tag_store(size=500, indexed=True)
    benchmark(lambda: merge_round(engine, 20))


def test_merge_scan(benchmark):
    engine = tag_store(size=500, indexed=False)
    benchmark(lambda: merge_round(engine, 20))


def test_results_identical():
    indexed = tag_store(size=50, indexed=True)
    scan = tag_store(size=50, indexed=False)
    merge_round(indexed, 60)
    merge_round(scan, 60)
    query = "MATCH (t:Tag) RETURN t.name AS name"
    assert sorted(indexed.evaluate(query, use_views=False).rows()) == sorted(
        scan.evaluate(query, use_views=False).rows()
    )


# -- standalone report --------------------------------------------------------------


def main() -> None:
    rows = []
    for size in (100, 1000, 10000):
        timings = {}
        for indexed in (False, True):
            engine = tag_store(size, indexed)
            merge_round(engine, 30)  # warm-up
            with Timer() as timer:
                merge_round(engine, 200, offset=31)
            timings[indexed] = timer.seconds / 200
        rows.append(
            [
                size,
                timings[False],
                timings[True],
                speedup(timings[False], timings[True]),
            ]
        )
    print(
        format_table(
            ["tags", "MERGE (scan)", "MERGE (indexed)", "speedup"],
            rows,
            title="E16 — property index vs label scan (write-path anchors)",
        )
    )


if __name__ == "__main__":
    main()
