"""Observability overhead: metrics and tracing vs the flags-off hot path.

An SNB-flavoured churn workload replayed in ``engine.batch()`` windows
over a Person/Post graph under three engine configurations:

* **off** — ``collect_metrics=False, trace_batches=False``, the exact
  uninstrumented maintenance path of the prior PRs,
* **metrics** — ``collect_metrics=True``: wall-clock histograms around
  the coalesce/dispatch/merge phases plus per-batch counters (gauges are
  sampled only at snapshot time, never on this loop),
* **metrics+trace** — additionally ``trace_batches=True``: one span per
  emit/apply hop, the worst-case instrumentation.

Every run is correctness-gated: all three engines replay the identical
stream over identical graphs and at the end every view multiset must
agree pairwise *and* with one-shot re-evaluation, and the maintenance
cost attribution must sum to the engine-wide total.

The standalone main asserts the metrics overhead stays **under 8%** in
the full configuration and writes a ``BENCH_obs.json`` trajectory point
(trace overhead is recorded but not asserted — span recording is a
debugging mode, not an always-on one); ``--smoke`` runs a tiny
differential-only configuration (no timing claims) for CI.
"""

from __future__ import annotations

import json
import random
import sys
from pathlib import Path

from repro import PropertyGraph, QueryEngine
from repro.bench import Timer, format_table

SEED = 47
SMOKE_SIZES = {"people": 24, "posts": 16, "windows": 8, "window_ops": 6}
FULL_SIZES = {"people": 240, "posts": 120, "windows": 90, "window_ops": 30}

COUNTRIES = ("cn", "in", "de", "us")
LANGS = ("en", "de", "hu")

QUERIES = (
    "MATCH (p:Post) WHERE p.lang = 'en' RETURN p",
    "MATCH (p:Person) RETURN p.country AS country, count(*) AS n",
    "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b",
    "MATCH (a:Person)-[:LIKES]->(p:Post) WHERE p.lang = 'en' RETURN a, p",
)

MODES = (
    ("off", {}),
    ("metrics", {"collect_metrics": True}),
    ("metrics+trace", {"collect_metrics": True, "trace_batches": True}),
)


def build_graph(sizes: dict, seed: int = SEED):
    rng = random.Random(seed)
    graph = PropertyGraph()
    people = [
        graph.add_vertex(
            labels=["Person"],
            properties={"country": COUNTRIES[i % len(COUNTRIES)]},
        )
        for i in range(sizes["people"])
    ]
    posts = [
        graph.add_vertex(labels=["Post"], properties={"lang": rng.choice(LANGS)})
        for _ in range(sizes["posts"])
    ]
    for person in people:
        graph.add_edge(person, rng.choice(people), "KNOWS")
        graph.add_edge(person, rng.choice(posts), "LIKES")
    return graph, people, posts


def churn_ops(sizes: dict, people, posts, seed: int = SEED + 1):
    """Deterministic update windows, replayable over identical graphs."""
    rng = random.Random(seed)
    edges_created = 2 * len(people)
    windows = []
    for _ in range(sizes["windows"]):
        ops = []
        for _ in range(sizes["window_ops"]):
            roll = rng.random()
            if roll < 0.4:
                post, value = rng.choice(posts), rng.choice(LANGS)
                ops.append(
                    lambda g, v=post, x=value: g.set_vertex_property(v, "lang", x)
                )
            elif roll < 0.65:
                person = rng.choice(people)
                value = rng.choice(COUNTRIES)
                ops.append(
                    lambda g, v=person, x=value: g.set_vertex_property(
                        v, "country", x
                    )
                )
            elif roll < 0.88:
                src, tgt = rng.choice(people), rng.choice(people)
                ops.append(lambda g, s=src, t=tgt: g.add_edge(s, t, "KNOWS"))
                edges_created += 1
            else:
                target = max(1, edges_created - rng.randrange(6))
                ops.append(
                    lambda g, e=target: g.remove_edge(e) if g.has_edge(e) else None
                )
        windows.append(ops)
    return windows


def run_stream(sizes: dict, obs_flags: dict):
    """Replay the churn windows under one instrumentation mode.

    Returns (seconds, views, engine); timing covers only the update loop.
    """
    graph, people, posts = build_graph(sizes)
    engine = QueryEngine(graph, **obs_flags)
    views = [engine.register(query) for query in QUERIES]
    windows = churn_ops(sizes, people, posts)
    with Timer() as timer:
        for ops in windows:
            with engine.batch():
                for op in ops:
                    op(graph)
    return timer.seconds, views, engine


def verify(runs: dict) -> None:
    """The differential gate: all modes agree, pairwise and with re-eval."""
    _, baseline_views, baseline_engine = runs["off"]
    for index, query in enumerate(QUERIES):
        expected = baseline_views[index].multiset()
        for mode, (_, views, _) in runs.items():
            assert views[index].multiset() == expected, (mode, query)
        assert (
            expected
            == baseline_engine.evaluate(query, use_views=False).multiset()
        ), query
    # the instrumented engines actually measured something
    for mode in ("metrics", "metrics+trace"):
        snapshot = runs[mode][2].metrics_snapshot()
        assert snapshot["repro_batches_total"]["value"] > 0, mode
        assert snapshot["repro_batch_seconds"]["count"] > 0, mode
    assert runs["metrics+trace"][2].last_trace is not None
    # cost attribution books every unit of row-work
    for mode, (_, _, engine) in runs.items():
        costs = engine.view_costs()
        attributed = sum(entry["cost"] for entry in costs["views"])
        assert abs(attributed + costs["unattributed"] - costs["total"]) < 1e-6, mode
        assert costs["total"] > 0, mode


def run_all(sizes: dict, rounds: int = 1) -> dict:
    """Best-of-*rounds* per mode; the first round feeds the oracle gate."""
    runs = {mode: run_stream(sizes, flags) for mode, flags in MODES}
    verify(runs)
    seconds = {mode: run[0] for mode, run in runs.items()}
    for _ in range(rounds - 1):
        for mode, flags in MODES:
            seconds[mode] = min(seconds[mode], run_stream(sizes, flags)[0])
    return seconds


# -- pytest kernels ------------------------------------------------------------


def test_observability_modes_match_and_attribute():
    run_all(SMOKE_SIZES)


# -- standalone report ---------------------------------------------------------


def main(smoke: bool = False) -> None:
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    operations = sizes["windows"] * sizes["window_ops"]
    print(
        f"observability churn: {operations} events in {sizes['windows']} "
        f"batch windows, {len(QUERIES)} views"
    )
    seconds = run_all(sizes, rounds=1 if smoke else 3)
    print("differential oracle: off == metrics == metrics+trace == "
          "recomputation ✓")
    print("cost attribution: per-view shares + unattributed == total ✓")
    base = seconds["off"]
    rows = [
        [
            mode,
            mode_seconds,
            f"{operations / mode_seconds:.0f}",
            f"{(mode_seconds / base - 1) * 100:+.1f}%",
        ]
        for mode, mode_seconds in seconds.items()
    ]
    print(
        format_table(
            ["mode", "total", "events/sec", "vs off"],
            rows,
            title="observability overhead on SNB-style windowed churn",
        )
    )
    if smoke:
        print("\nsmoke mode: all modes exercised, timings not asserted")
        return
    metrics_overhead = seconds["metrics"] / base - 1
    trace_overhead = seconds["metrics+trace"] / base - 1
    point = {
        "experiment": "observability",
        "events": operations,
        "windows": sizes["windows"],
        "views": len(QUERIES),
        "off_seconds": base,
        "metrics_seconds": seconds["metrics"],
        "trace_seconds": seconds["metrics+trace"],
        "metrics_overhead": metrics_overhead,
        "trace_overhead": trace_overhead,
    }
    Path("BENCH_obs.json").write_text(json.dumps(point, indent=2) + "\n")
    print(
        f"\nwrote BENCH_obs.json (metrics {metrics_overhead * 100:+.1f}%, "
        f"trace {trace_overhead * 100:+.1f}%)"
    )
    assert metrics_overhead < 0.08, (
        f"collect_metrics should stay under 8% overhead on windowed churn, "
        f"got {metrics_overhead * 100:.1f}%"
    )
    print("metrics overhead <8% ✓")


if __name__ == "__main__":
    main(smoke="--smoke" in sys.argv[1:])
