"""Cross-binding sharing — one parameterised query, one view per user.

The canonical many-views workload of MV4PG-style systems: the *same*
parameterised query registered once per user, differing only in the
``$uid`` binding.  With exact-binding cache keys
(``share_across_bindings=False``) selection pushdown plants
``σ[a.uid = $uid]`` at the bottom of every plan, every interior subtree
mentions the binding, and each view privately rebuilds the whole
©⋈⇑ chain — join memories (the full KNOWS edge index!) duplicate once per
user, and every graph event pays the σ + join work once per user.  With
``share_across_bindings=True`` the engine registers the plan with the
parameterised σ lifted back above its binding-free core: one shared join
memory for *all* users, topped by a single value-indexed
:class:`~repro.rete.nodes.unary.BindingIndexedSelectionNode` whose
partitions route each delta row to the few bindings it can concern.

Every run is correctness-gated: both engines replay the identical stream
over identical graphs, every view must agree with its exact-binding twin
*and* with one-shot recomputation under its binding.

The standalone main asserts **sub-linear shared-layer memory growth in
view count** (doubling the views must not nearly-double the shared layer,
while it does scale the exact-binding baseline) plus a total-memory and
event-throughput win, and writes a ``BENCH_param_sharing.json``
trajectory point; ``--smoke`` runs a tiny differential-only configuration
for CI (growth assertions kept, timings not asserted).
"""

from __future__ import annotations

import json
import random
import sys
from pathlib import Path

from repro import PropertyGraph, QueryEngine
from repro.bench import Timer, format_table, speedup

SEED = 71
SMOKE_SIZES = {"persons": 24, "degree": 3, "operations": 120, "views": 12}
FULL_SIZES = {"persons": 120, "degree": 4, "operations": 1500, "views": 64}

#: the per-user view: everyone a given user knows (value-indexed equality)
QUERY = (
    "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.uid = $uid "
    "RETURN a.uid AS au, b.uid AS bu"
)


def build_graph(persons: int, degree: int, seed: int = SEED):
    rng = random.Random(seed)
    graph = PropertyGraph()
    ids = [
        graph.add_vertex(labels=["Person"], properties={"uid": uid})
        for uid in range(persons)
    ]
    for source in ids:
        for target in rng.sample(ids, degree):
            if source != target:
                graph.add_edge(source, target, "KNOWS")
    return graph, ids


def churn_ops(sizes: dict, seed: int = SEED + 1):
    """A deterministic op list replayable over identical graphs."""
    rng = random.Random(seed)
    persons = sizes["persons"]
    vertex_ids = list(range(1, persons + 1))
    live_edges: list[int] = []
    next_edge = 1
    for source in range(persons):
        for _ in range(sizes["degree"]):
            # mirror of build_graph's edge loop: ids advance in lockstep
            next_edge += 1
    live_edges = list(range(1, next_edge))
    ops = []
    for _ in range(sizes["operations"]):
        roll = rng.random()
        if roll < 0.45:
            src, tgt = rng.choice(vertex_ids), rng.choice(vertex_ids)

            def add_edge(g, s=src, t=tgt):
                if s != t:
                    g.add_edge(s, t, "KNOWS")

            ops.append(add_edge)
            if src != tgt:
                live_edges.append(next_edge)
                next_edge += 1
        elif roll < 0.75 and live_edges:
            edge = live_edges.pop(rng.randrange(len(live_edges)))
            ops.append(
                lambda g, e=edge: g.remove_edge(e) if g.has_edge(e) else None
            )
        else:
            vertex = rng.choice(vertex_ids)
            uid = rng.randrange(persons * 2)
            ops.append(
                lambda g, v=vertex, u=uid: g.set_vertex_property(v, "uid", u)
            )
    return ops


def register_views(engine: QueryEngine, count: int):
    """One view per user: distinct bindings of the one parameterised query."""
    return {uid: engine.register(QUERY, parameters={"uid": uid}) for uid in range(count)}


def layer_cells(engine: QueryEngine) -> int:
    """Memory cells owned by the sharing layer (shared state, counted once)."""
    return engine._incremental.input_layer.memory_cells()


def run_stream(
    sizes: dict, views: int, share_across_bindings: bool, columnar: bool = True
):
    """Replay the churn stream under one mode at a given view count."""
    graph, _ = build_graph(sizes["persons"], sizes["degree"])
    engine = QueryEngine(
        graph,
        share_across_bindings=share_across_bindings,
        columnar_deltas=columnar,
    )
    with Timer() as register_timer:
        registered = register_views(engine, views)
    ops = churn_ops(sizes)
    with Timer() as churn_timer:
        for op in ops:
            op(graph)
    return {
        "engine": engine,
        "views": registered,
        "register_seconds": register_timer.seconds,
        "churn_seconds": churn_timer.seconds,
        "total_cells": engine.memory_cells(),
        "layer_cells": layer_cells(engine),
    }


def verify(shared: dict, baseline: dict) -> None:
    """Differential oracle gate: cross-binding == exact-binding == recompute."""
    engine = shared["engine"]
    for uid, view in shared["views"].items():
        twin = baseline["views"][uid]
        assert view.multiset() == twin.multiset(), uid
        assert (
            view.multiset()
            == engine.evaluate(
                QUERY, parameters={"uid": uid}, use_views=False
            ).multiset()
        ), uid


def run_pair(sizes: dict, columnar: bool = True):
    """Both modes at half and full view counts (for the growth slopes)."""
    full, half = sizes["views"], max(1, sizes["views"] // 2)
    shared_half = run_stream(sizes, half, True, columnar)
    shared_full = run_stream(sizes, full, True, columnar)
    baseline_half = run_stream(sizes, half, False, columnar)
    baseline_full = run_stream(sizes, full, False, columnar)
    verify(shared_full, baseline_full)
    return shared_half, shared_full, baseline_half, baseline_full


def growth(half: dict, full: dict) -> float:
    return full["layer_cells"] / max(half["layer_cells"], 1)


# -- pytest-benchmark kernels --------------------------------------------------


def test_param_sharing_cross_binding(benchmark):
    benchmark.pedantic(
        lambda: run_stream(SMOKE_SIZES, SMOKE_SIZES["views"], True),
        rounds=3,
        iterations=1,
    )


def test_param_sharing_exact_binding(benchmark):
    benchmark.pedantic(
        lambda: run_stream(SMOKE_SIZES, SMOKE_SIZES["views"], False),
        rounds=3,
        iterations=1,
    )


def test_cross_binding_matches_baseline_and_oracle():
    shared = run_stream(SMOKE_SIZES, SMOKE_SIZES["views"], True)
    baseline = run_stream(SMOKE_SIZES, SMOKE_SIZES["views"], False)
    verify(shared, baseline)


def test_shared_core_memory_is_flat_in_view_count():
    shared_half, shared_full, baseline_half, baseline_full = run_pair(SMOKE_SIZES)
    assert growth(shared_half, shared_full) < 1.3
    assert growth(baseline_half, baseline_full) > growth(shared_half, shared_full)


# -- standalone report ---------------------------------------------------------


def main(
    smoke: bool = False, columnar: bool = True, out: str | None = None
) -> None:
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    operations = sizes["operations"]
    print(
        f"parameterised sharing: {sizes['views']} bindings of one per-user "
        f"query over {sizes['persons']} persons, {operations} churn events, "
        f"columnar_deltas={columnar}"
    )
    shared_half, shared_full, baseline_half, baseline_full = run_pair(
        sizes, columnar=columnar
    )
    print("differential oracle: cross-binding == exact-binding == recomputation ✓")

    shared_growth = growth(shared_half, shared_full)
    baseline_growth = growth(baseline_half, baseline_full)
    memory_ratio = baseline_full["total_cells"] / max(shared_full["total_cells"], 1)
    throughput_ratio = baseline_full["churn_seconds"] / shared_full["churn_seconds"]
    register_ratio = (
        baseline_full["register_seconds"] / shared_full["register_seconds"]
    )
    half, full = max(1, sizes["views"] // 2), sizes["views"]
    rows = [
        [
            "exact-binding (share_across_bindings=False)",
            baseline_full["churn_seconds"],
            f"{operations / baseline_full['churn_seconds']:.0f}",
            baseline_full["total_cells"],
            baseline_full["layer_cells"],
            f"{baseline_growth:.2f}x",
        ],
        [
            "cross-binding (binding-indexed σ)",
            shared_full["churn_seconds"],
            f"{operations / shared_full['churn_seconds']:.0f}",
            shared_full["total_cells"],
            shared_full["layer_cells"],
            f"{shared_growth:.2f}x",
        ],
    ]
    print(
        format_table(
            [
                "mode",
                "churn",
                "events/sec",
                "total cells",
                "layer cells",
                f"layer growth {half}→{full} views",
            ],
            rows,
            title="Cross-binding sharing: one parameterised view per user",
        )
    )
    print(
        f"memory: {memory_ratio:.1f}x fewer total cells; shared-layer growth "
        f"{shared_growth:.2f}x vs {baseline_growth:.2f}x when views double; "
        f"churn {throughput_ratio:.2f}x, registration {register_ratio:.2f}x"
    )
    # the headline claim: the shared core's memory is (near-)flat in the
    # number of bindings, while exact-binding keys scale it linearly
    assert shared_growth < 1.3, (
        f"shared-layer memory should stay near-flat when views double, "
        f"grew {shared_growth:.2f}x"
    )
    assert baseline_growth > shared_growth, (
        f"exact-binding layer should outgrow the cross-binding layer "
        f"({baseline_growth:.2f}x vs {shared_growth:.2f}x)"
    )
    assert memory_ratio >= 2.0, (
        f"cross-binding sharing should at least halve total memory at "
        f"{full} bindings, got {memory_ratio:.1f}x"
    )
    point = {
        "experiment": "param_sharing",
        "views": full,
        "events": operations,
        "baseline_churn_seconds": baseline_full["churn_seconds"],
        "shared_churn_seconds": shared_full["churn_seconds"],
        "baseline_events_per_sec": operations / baseline_full["churn_seconds"],
        "shared_events_per_sec": operations / shared_full["churn_seconds"],
        "baseline_total_cells": baseline_full["total_cells"],
        "shared_total_cells": shared_full["total_cells"],
        "baseline_layer_growth": baseline_growth,
        "shared_layer_growth": shared_growth,
        "memory_ratio": memory_ratio,
        "throughput_speedup": throughput_ratio,
        "registration_speedup": register_ratio,
    }
    if out is not None:
        directory = Path(out)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "BENCH_param_sharing.json").write_text(
            json.dumps(point, indent=2) + "\n"
        )
    if smoke:
        print("\nsmoke mode: sharing paths exercised, timings not asserted")
        return
    assert throughput_ratio > 1.0, (
        f"cross-binding sharing should win on event throughput, got "
        f"{throughput_ratio:.2f}x"
    )
    Path("BENCH_param_sharing.json").write_text(json.dumps(point, indent=2) + "\n")
    print(
        f"\nwrote BENCH_param_sharing.json (memory {memory_ratio:.1f}x, "
        f"layer growth {shared_growth:.2f}x vs {baseline_growth:.2f}x, "
        f"churn {throughput_ratio:.2f}x)"
    )


if __name__ == "__main__":
    argv = sys.argv[1:]
    main(
        smoke="--smoke" in argv,
        columnar="--no-columnar" not in argv,
        out=argv[argv.index("--out") + 1] if "--out" in argv else None,
    )
