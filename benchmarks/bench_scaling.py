"""E7 — scaling: maintenance latency versus model size.

Sweeps the railway model size and reports, per size: batch (first
validation) time, per-update incremental propagation, and per-update full
recomputation.  The methodology and the expected shape follow the Train
Benchmark ([30]) and the optimization study ([31]): recompute grows with
model size while incremental propagation tracks the *change* size, so the
gap widens with scale.
"""

from __future__ import annotations

import random

import pytest

from repro import QueryEngine
from repro.bench import Timer, format_table, speedup
from repro.workloads import trainbenchmark as tb

QUERY = "RouteSensor"
SWEEP = (5, 10, 20, 40)
UPDATES = 10


def measure(routes: int) -> dict:
    model = tb.generate_railway(routes=routes, seed=17)
    engine = QueryEngine(model.graph)

    with Timer() as t_batch:
        view = engine.register(tb.QUERIES[QUERY])

    rng = random.Random(19)
    with Timer() as t_inc:
        for _ in range(UPDATES):
            tb.inject(model, QUERY, 1, rng)
            view.multiset()

    rng = random.Random(23)
    with Timer() as t_re:
        for _ in range(UPDATES):
            tb.inject(model, QUERY, 1, rng)
            engine.evaluate(tb.QUERIES[QUERY], use_views=False).multiset()

    assert view.multiset() == engine.evaluate(tb.QUERIES[QUERY], use_views=False).multiset()
    return {
        "routes": routes,
        "vertices": model.graph.vertex_count,
        "edges": model.graph.edge_count,
        "batch": t_batch.seconds,
        "incremental": t_inc.seconds / UPDATES,
        "recompute": t_re.seconds / UPDATES,
        "memory": view.memory_size(),
    }


# -- pytest-benchmark kernels -----------------------------------------------------


@pytest.mark.parametrize("routes", [5, 10, 20])
def test_update_incremental_at_scale(benchmark, routes):
    model = tb.generate_railway(routes=routes, seed=17)
    engine = QueryEngine(model.graph)
    view = engine.register(tb.QUERIES[QUERY])
    rng = random.Random(19)

    def one_update():
        tb.inject(model, QUERY, 1, rng)
        return view.multiset()

    benchmark(one_update)


@pytest.mark.parametrize("routes", [5, 10, 20])
def test_update_recompute_at_scale(benchmark, routes):
    model = tb.generate_railway(routes=routes, seed=17)
    engine = QueryEngine(model.graph)
    rng = random.Random(19)

    def one_update():
        tb.inject(model, QUERY, 1, rng)
        return engine.evaluate(tb.QUERIES[QUERY], use_views=False).multiset()

    benchmark(one_update)


@pytest.mark.parametrize("routes", [5, 20])
def test_batch_registration_at_scale(benchmark, routes):
    model = tb.generate_railway(routes=routes, seed=17)

    def register():
        engine = QueryEngine(model.graph)
        view = engine.register(tb.QUERIES[QUERY])
        view.detach()

    benchmark(register)


# -- standalone report ---------------------------------------------------------------


def main() -> None:
    rows = []
    for routes in SWEEP:
        result = measure(routes)
        rows.append(
            [
                result["routes"],
                result["vertices"],
                result["edges"],
                result["batch"],
                result["incremental"],
                result["recompute"],
                speedup(result["recompute"], result["incremental"]),
                result["memory"],
            ]
        )
    print(
        format_table(
            [
                "routes",
                "V",
                "E",
                "batch",
                "inc/update",
                "recompute/update",
                "speedup",
                "rete memory",
            ],
            rows,
            title=f"E7 — scaling sweep, query={QUERY}, {UPDATES} updates per cell",
        )
    )


if __name__ == "__main__":
    main()
