"""Sharded multi-process maintenance tier vs the in-process engine.

The SNB-flavoured churn workload of ``bench_columnar`` replayed in
``engine.batch()`` windows against a view mix deliberately spread over
*distinct input signatures* — a parameter grid over Persons, constant
language selections over Posts, KNOWS/LIKES joins and two aggregates —
so the signature shard key scatters the maintenance work across workers.
The sweep replays the identical stream under ``workers = 0/1/2/4/8``
(``workers=0`` is the exact in-process PR 1–6 engine) and reports
events/sec plus p99 per-window latency for each point.

Every point is correctness-gated: all view multisets must match the
``workers=0`` baseline *and* one-shot recomputation before its timing
counts.  The standalone main writes a ``BENCH_shard.json`` trajectory
point; the ≥2x-at-4-workers throughput assertion fires only on hosts
that actually have ≥4 CPU cores — on fewer cores the fan-out cannot
physically beat one process and the point is recorded with a
``single_core`` marker instead of a vacuous claim.  ``--smoke`` runs a
tiny differential-only configuration (no timing claims) for CI;
``--workers N`` restricts the sweep to ``[0, N]``.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro import PropertyGraph, QueryEngine
from repro.bench import Timer, format_table, speedup

from bench_columnar import (
    CONST_QUERIES,
    COUNTRIES,
    JOIN_QUERY,
    LIKES_QUERY,
    PARAM_QUERY,
    build_graph,
    churn_ops,
)

SMOKE_SIZES = {
    "countries": 3,
    "scores": 2,
    "people": 24,
    "posts": 16,
    "windows": 8,
    "window_ops": 6,
}
FULL_SIZES = {
    "countries": 4,
    "scores": 8,
    "people": 200,
    "posts": 120,
    "windows": 60,
    "window_ops": 20,
}

WORKER_COUNTS = (0, 1, 2, 4, 8)

#: distinct-signature extras so the shard key has something to scatter
AGG_COUNTRY = "MATCH (p:Person) RETURN p.country AS country, count(*) AS n"
AGG_LANG = "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS n"
SAME_COUNTRY_JOIN = (
    "MATCH (a:Person)-[:KNOWS]->(b:Person) "
    "WHERE a.country = b.country RETURN a, b"
)
EXTRA_QUERIES = (AGG_COUNTRY, AGG_LANG, SAME_COUNTRY_JOIN)


def register_views(engine: QueryEngine, sizes: dict) -> dict[str, object]:
    views: dict[str, object] = {}
    for c in range(sizes["countries"]):
        for s in range(sizes["scores"]):
            views[f"param:{c}:{s}"] = engine.register(
                PARAM_QUERY,
                parameters={"country": COUNTRIES[c], "score": s},
            )
    for i, query in enumerate(CONST_QUERIES):
        views[f"const:{i}"] = engine.register(query)
    views["join"] = engine.register(JOIN_QUERY)
    views["likes"] = engine.register(LIKES_QUERY)
    for i, query in enumerate(EXTRA_QUERIES):
        views[f"extra:{i}"] = engine.register(query)
    return views


def run_stream(sizes: dict, workers: int):
    """Replay the churn windows under one worker count.

    Returns (seconds, per-window latencies, view multisets, shard stats).
    The engine is shut down before returning; timing covers only the
    update loop.
    """
    graph, people, posts = build_graph(sizes)
    engine = QueryEngine(graph, workers=workers)
    try:
        views = register_views(engine, sizes)
        windows = churn_ops(sizes, people, posts)
        latencies = []
        with Timer() as total:
            for ops in windows:
                with Timer() as window:
                    with engine.batch():
                        for op in ops:
                            op(graph)
                latencies.append(window.seconds)
        multisets = {name: view.multiset() for name, view in views.items()}
        oracle = {
            name: engine.evaluate(
                query, parameters, use_views=False
            ).multiset()
            for name, query, parameters in _query_grid(sizes)
        }
        for name, expected in oracle.items():
            assert multisets[name] == expected, (
                f"workers={workers} diverged from recomputation on {name}"
            )
        return total.seconds, latencies, multisets, engine.shard_stats()
    finally:
        engine.shutdown()


def _query_grid(sizes: dict):
    for c in range(sizes["countries"]):
        for s in range(sizes["scores"]):
            yield (
                f"param:{c}:{s}",
                PARAM_QUERY,
                {"country": COUNTRIES[c], "score": s},
            )
    for i, query in enumerate(CONST_QUERIES):
        yield f"const:{i}", query, None
    yield "join", JOIN_QUERY, None
    yield "likes", LIKES_QUERY, None
    for i, query in enumerate(EXTRA_QUERIES):
        yield f"extra:{i}", query, None


def p99(latencies: list[float]) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(0.99 * (len(ordered) - 1)) + 1)]


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_sweep(sizes: dict, worker_counts):
    """One timed, oracle-gated point per worker count; 0 is the baseline."""
    results = []
    baseline_multisets = None
    for workers in worker_counts:
        seconds, latencies, multisets, stats = run_stream(sizes, workers)
        if baseline_multisets is None:
            baseline_multisets = multisets
        else:
            for name, expected in baseline_multisets.items():
                assert multisets[name] == expected, (
                    f"workers={workers} diverged from workers=0 on {name}"
                )
        results.append(
            {
                "workers": workers,
                "seconds": seconds,
                "p99_window_ms": p99(latencies) * 1000.0,
                "records_sliced_away": (
                    stats["coordinator"]["records_sliced_away"]
                    if stats
                    else None
                ),
                "view_spread": (
                    sorted(w["views"] for w in stats["workers"])
                    if stats
                    else None
                ),
            }
        )
    return results


# -- pytest kernels ------------------------------------------------------------


def test_sharded_matches_in_process_and_oracle():
    run_sweep(SMOKE_SIZES, (0, 2))


def test_sharded_stream(benchmark):
    benchmark.pedantic(
        lambda: run_stream(SMOKE_SIZES, 2), rounds=2, iterations=1
    )


def test_in_process_stream(benchmark):
    benchmark.pedantic(
        lambda: run_stream(SMOKE_SIZES, 0), rounds=2, iterations=1
    )


# -- standalone report ---------------------------------------------------------


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    worker_counts = list(WORKER_COUNTS)
    if "--workers" in argv:
        worker_counts = [0, int(argv[argv.index("--workers") + 1])]
    elif smoke:
        worker_counts = [0, 2]
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    operations = sizes["windows"] * sizes["window_ops"]
    view_count = (
        sizes["countries"] * sizes["scores"]
        + len(CONST_QUERIES)
        + 2
        + len(EXTRA_QUERIES)
    )
    cores = available_cores()
    print(
        f"shard churn: {operations} events in {sizes['windows']} batch "
        f"windows, {view_count} views, sweep workers={worker_counts} "
        f"({cores} cores available)"
    )
    results = run_sweep(sizes, worker_counts)
    print("differential oracle: every worker count == workers=0 == "
          "recomputation ✓")
    baseline = results[0]["seconds"]
    rows = []
    for point in results:
        label = (
            "in-process (workers=0)"
            if point["workers"] == 0
            else f"sharded, {point['workers']} worker(s)"
        )
        rows.append(
            [
                label,
                point["seconds"],
                f"{operations / point['seconds']:.0f}",
                f"{point['p99_window_ms']:.2f}",
                speedup(baseline, point["seconds"]),
            ]
        )
    print(
        format_table(
            ["maintenance tier", "total", "events/sec", "p99 window ms",
             "vs in-process"],
            rows,
            title="sharded maintenance tier on SNB-style windowed churn",
        )
    )
    if smoke:
        print("\nsmoke mode: fan-out, slicing and merge exercised, timings "
              "not asserted")
        return
    point = {
        "experiment": "shard",
        "events": operations,
        "views": view_count,
        "cores": cores,
        "single_core": cores < 4,
        "runs": [
            {
                **result,
                "events_per_sec": operations / result["seconds"],
                "speedup_vs_in_process": baseline / result["seconds"],
            }
            for result in results
        ],
    }
    Path("BENCH_shard.json").write_text(json.dumps(point, indent=2) + "\n")
    four = next((r for r in results if r["workers"] == 4), None)
    if four is not None and cores >= 4:
        ratio = baseline / four["seconds"]
        print(f"\nwrote BENCH_shard.json (4-worker speedup {ratio:.1f}x)")
        assert ratio >= 2.0, (
            f"4 shard workers should sustain ≥2x the in-process events/sec "
            f"on {cores} cores, got {ratio:.1f}x"
        )
        print("sharded ≥2x in-process at 4 workers ✓")
    else:
        print(
            f"\nwrote BENCH_shard.json ({cores} core(s): the ≥2x-at-4-workers "
            f"claim needs ≥4 cores, recording honest single-core numbers "
            f"instead)"
        )


if __name__ == "__main__":
    main()
