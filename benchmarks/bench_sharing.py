"""E14 — cross-view subplan sharing vs. the input-only baseline.

A many-views deployment where the views *overlap*: every view needs the
``(p:Post)-[:REPLY]->(c:Comm)`` join core (most behind the same
``p.lang = c.lang`` selection), differing only in the projection,
deduplication, or aggregation stacked on top — the realistic regime where
many users watch the same data through slightly different queries.  With
``share_subplans=True`` the engine's
:class:`~repro.rete.sharing.SharedSubplanLayer` builds that core **once**:
one join memory instead of N, and each graph event pays the join work once
instead of N times.  The input-only baseline (``share_subplans=False``,
PR 2's E11 layer) still shares the ©/⇑ leaves but duplicates every
interior node per view.

Every run is correctness-gated: both engines replay the identical stream
over identical graphs, and at the end all view multisets must agree
pairwise *and* with one-shot re-evaluation.

The standalone main asserts a ≥2x reduction in total ``memory_cells()``
and an event-throughput win at 8+ overlapping views, and writes a
``BENCH_sharing.json`` trajectory point; ``--smoke`` runs a tiny
differential-only configuration (no timing claims) for CI.
"""

from __future__ import annotations

import json
import random
import sys
from pathlib import Path

from repro import PropertyGraph, QueryEngine
from repro.bench import Timer, format_table, speedup

SEED = 53
SMOKE_SIZES = {"posts": 12, "comments_per_post": 3, "operations": 150, "views": 8}
FULL_SIZES = {"posts": 60, "comments_per_post": 6, "operations": 2500, "views": 12}

LANGS = ("en", "de", "hu", "fr")

#: view tops over the shared ``σ_{p.lang=c.lang}(⋈(©Post, ⇑REPLY, ©Comm))``
#: core (the last two share only the join, not the selection); cycling
#: through these at 8+ views re-registers several of them — many users
#: genuinely watching the same query
VIEW_SHAPES = (
    "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang "
    "RETURN p.lang AS lang, count(*) AS n",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN DISTINCT p",
    "MATCH (x:Post)-[:REPLY]->(y:Comm) WHERE x.lang = y.lang RETURN y, x",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN c.lang AS lang, count(*) AS n",
)


def build_graph(posts: int, comments_per_post: int, seed: int = SEED):
    rng = random.Random(seed)
    graph = PropertyGraph()
    post_ids, comment_ids = [], []
    for _ in range(posts):
        post_ids.append(
            graph.add_vertex(
                labels=["Post"], properties={"lang": rng.choice(LANGS)}
            )
        )
    for post in post_ids:
        for _ in range(comments_per_post):
            comment = graph.add_vertex(
                labels=["Comm"], properties={"lang": rng.choice(LANGS)}
            )
            comment_ids.append(comment)
            graph.add_edge(post, comment, "REPLY")
    return graph, post_ids, comment_ids


def churn_ops(sizes: dict, seed: int = SEED + 1):
    """A deterministic op list; replaying it over identical graphs
    produces identical event streams (id counters advance in lockstep,
    so new-entity ids can be precomputed)."""
    rng = random.Random(seed)
    posts = list(range(1, sizes["posts"] + 1))
    comment_count = sizes["posts"] * sizes["comments_per_post"]
    comments = list(range(sizes["posts"] + 1, sizes["posts"] + comment_count + 1))
    next_vertex = sizes["posts"] + comment_count + 1
    next_edge = comment_count + 1
    live_edges = list(range(1, next_edge))
    ops = []
    for _ in range(sizes["operations"]):
        roll = rng.random()
        if roll < 0.30:
            post, lang = rng.choice(posts), rng.choice(LANGS)
            comment = next_vertex

            def add_comment(g, p=post, l=lang, c=comment):
                g.add_vertex(labels=["Comm"], properties={"lang": l})
                g.add_edge(p, c, "REPLY")

            ops.append(add_comment)
            comments.append(comment)
            live_edges.append(next_edge)
            next_vertex += 1
            next_edge += 1
        elif roll < 0.55:
            vertex = rng.choice(posts if rng.random() < 0.5 else comments)
            lang = rng.choice(LANGS)
            ops.append(
                lambda g, v=vertex, l=lang: g.set_vertex_property(v, "lang", l)
            )
        elif roll < 0.75 and live_edges:
            edge = live_edges.pop(rng.randrange(len(live_edges)))
            ops.append(
                lambda g, e=edge: g.remove_edge(e) if g.has_edge(e) else None
            )
        else:
            vertex = rng.choice(comments)
            ops.append(
                lambda g, v=vertex: (
                    g.add_label(v, "Flagged")
                    if "Flagged" not in g.labels_view(v)
                    else g.remove_label(v, "Flagged")
                )
            )
    return ops


def view_queries(count: int) -> list[str]:
    return [VIEW_SHAPES[i % len(VIEW_SHAPES)] for i in range(count)]


def run_stream(sizes: dict, share_subplans: bool):
    """Replay the churn stream under one sharing mode.

    Returns (seconds, memory_cells, views, engine); timing covers only the
    event loop.
    """
    graph, *_ = build_graph(sizes["posts"], sizes["comments_per_post"])
    engine = QueryEngine(graph, share_subplans=share_subplans)
    views = [engine.register(q) for q in view_queries(sizes["views"])]
    ops = churn_ops(sizes)
    with Timer() as timer:
        for op in ops:
            op(graph)
    memory = engine.memory_cells()
    return timer.seconds, memory, views, engine


def verify(sizes: dict, shared_views, baseline_views, engine) -> None:
    """The differential oracle gate: shared == input-only == recomputation."""
    for query, shared, baseline in zip(
        view_queries(sizes["views"]), shared_views, baseline_views
    ):
        assert shared.multiset() == baseline.multiset(), query
        assert shared.multiset() == engine.evaluate(query, use_views=False).multiset(), query


def run_pair(sizes: dict, rounds: int = 1):
    shared_seconds, shared_memory, shared_views, shared_engine = run_stream(
        sizes, True
    )
    baseline_seconds, baseline_memory, baseline_views, _ = run_stream(
        sizes, False
    )
    verify(sizes, shared_views, baseline_views, shared_engine)
    for _ in range(rounds - 1):
        shared_seconds = min(shared_seconds, run_stream(sizes, True)[0])
        baseline_seconds = min(baseline_seconds, run_stream(sizes, False)[0])
    return shared_seconds, baseline_seconds, shared_memory, baseline_memory


# -- pytest-benchmark kernels --------------------------------------------------


def test_sharing_subplans(benchmark):
    benchmark.pedantic(lambda: run_stream(SMOKE_SIZES, True), rounds=3, iterations=1)


def test_sharing_input_only(benchmark):
    benchmark.pedantic(lambda: run_stream(SMOKE_SIZES, False), rounds=3, iterations=1)


def test_shared_matches_baseline_and_oracle():
    run_pair(SMOKE_SIZES)


def test_shared_memory_is_smaller():
    _, _, shared_memory, baseline_memory = run_pair(SMOKE_SIZES)
    assert shared_memory * 2 <= baseline_memory


# -- standalone report ---------------------------------------------------------


def main(smoke: bool = False, out: str | None = None) -> None:
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    operations = sizes["operations"]
    print(
        f"subplan sharing churn: {operations} events, {sizes['views']} "
        f"overlapping views over one σ(⋈(©Post, ⇑REPLY)) core"
    )
    shared_seconds, baseline_seconds, shared_memory, baseline_memory = run_pair(
        sizes, rounds=1 if smoke else 3
    )
    print("differential oracle: subplans == input-only == recomputation ✓")
    rows = [
        [
            "input-only (share_subplans=False)",
            baseline_seconds,
            f"{operations / baseline_seconds:.0f}",
            baseline_memory,
            "1.0x",
        ],
        [
            "subplans (SharedSubplanLayer)",
            shared_seconds,
            f"{operations / shared_seconds:.0f}",
            shared_memory,
            speedup(baseline_seconds, shared_seconds),
        ],
    ]
    print(
        format_table(
            ["sharing", "total", "events/sec", "memory cells", "vs baseline"],
            rows,
            title="E14 — cross-view subplan sharing on overlapping views",
        )
    )
    memory_ratio = baseline_memory / max(shared_memory, 1)
    throughput_ratio = baseline_seconds / shared_seconds
    print(
        f"memory: {memory_ratio:.1f}x fewer cells; "
        f"throughput: {throughput_ratio:.2f}x"
    )
    point = {
        "experiment": "sharing",
        "views": sizes["views"],
        "events": operations,
        "baseline_seconds": baseline_seconds,
        "shared_seconds": shared_seconds,
        "baseline_events_per_sec": operations / baseline_seconds,
        "shared_events_per_sec": operations / shared_seconds,
        "baseline_memory_cells": baseline_memory,
        "shared_memory_cells": shared_memory,
        "memory_ratio": memory_ratio,
        "throughput_speedup": throughput_ratio,
    }
    if out is not None:
        directory = Path(out)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "BENCH_sharing.json").write_text(
            json.dumps(point, indent=2) + "\n"
        )
    if smoke:
        assert memory_ratio >= 2.0, (
            f"subplan sharing should at least halve memory cells, got "
            f"{memory_ratio:.1f}x"
        )
        print("\nsmoke mode: sharing paths exercised, timings not asserted")
        return
    Path("BENCH_sharing.json").write_text(json.dumps(point, indent=2) + "\n")
    print(f"\nwrote BENCH_sharing.json (memory {memory_ratio:.1f}x, " \
          f"throughput {throughput_ratio:.2f}x)")
    assert memory_ratio >= 2.0, (
        f"subplan sharing should at least halve memory cells at "
        f"{sizes['views']} views, got {memory_ratio:.1f}x"
    )
    assert throughput_ratio > 1.0, (
        f"subplan sharing should win on event throughput, got "
        f"{throughput_ratio:.2f}x"
    )
    print(
        f"≥2x memory and >1x throughput at {sizes['views']} overlapping views ✓"
    )


if __name__ == "__main__":
    argv = sys.argv[1:]
    main(
        smoke="--smoke" in argv,
        out=argv[argv.index("--out") + 1] if "--out" in argv else None,
    )
