"""E12 — SNB-inspired query mix: per-query maintenance vs. recomputation.

The paper motivates IVM with the LDBC SNB domain [17].  This experiment
registers the nine adapted SNB queries (``repro.workloads.snb``) as
incremental views, streams an SNB-interactive-style update mix, and
reports per-query mean maintenance latency against the recompute baseline
(re-evaluating the query after every update, as a system without
incremental views must).

The fragment's boundary is also exercised: the top-k variant
(``ORDER BY likes DESC LIMIT 3``) is rejected for registration and timed
one-shot instead — the paper's stated trade-off on its own motivating
domain.
"""

from __future__ import annotations

import time

from repro import QueryEngine
from repro.bench import format_table, speedup
from repro.errors import UnsupportedForIncrementalError
from repro.workloads.snb import (
    SNB_QUERIES,
    SNB_TOPK_QUERIES,
    generate_snb,
    update_stream,
)


def network(persons=15, seed=11):
    return generate_snb(
        persons=persons,
        forums=3,
        posts_per_forum=6,
        comments_per_post=4,
        seed=seed,
    )


def parameters_for(query: str) -> dict | None:
    return {"name": "person-0"} if "$name" in query else None


# -- pytest-benchmark kernels ----------------------------------------------------


def test_incremental_stream(benchmark, bench_sizes):
    net = network(persons=bench_sizes["persons"])
    engine = QueryEngine(net.graph)
    for query in SNB_QUERIES.values():
        engine.register(query, parameters_for(query))
    updates = [apply for _, apply in update_stream(net, operations=200, seed=4)]
    iterator = iter(updates)

    def step():
        try:
            next(iterator)()
        except StopIteration:  # pragma: no cover - generous pool
            pass

    benchmark(step)


def test_recompute_stream(benchmark, bench_sizes):
    net = network(persons=bench_sizes["persons"])
    engine = QueryEngine(net.graph)
    updates = [apply for _, apply in update_stream(net, operations=200, seed=4)]
    iterator = iter(updates)

    def step():
        try:
            next(iterator)()
        except StopIteration:  # pragma: no cover
            return
        for query in SNB_QUERIES.values():
            engine.evaluate(query, parameters_for(query), use_views=False)

    benchmark(step)


def test_all_queries_register(bench_sizes):
    net = network(persons=6)
    engine = QueryEngine(net.graph)
    for query in SNB_QUERIES.values():
        engine.register(query, parameters_for(query))
    assert len(engine.views) == len(SNB_QUERIES)


def test_topk_rejected_but_evaluates():
    net = network(persons=6)
    engine = QueryEngine(net.graph)
    for query in SNB_TOPK_QUERIES.values():
        try:
            engine.register(query)
            raise AssertionError("top-k must be outside the fragment")
        except UnsupportedForIncrementalError:
            pass
        assert len(engine.evaluate(query, use_views=False).rows()) <= 3


# -- standalone report --------------------------------------------------------------


def main() -> None:
    net = network(persons=20, seed=11)
    engine = QueryEngine(net.graph)
    views = {
        key: engine.register(query, parameters_for(query))
        for key, query in SNB_QUERIES.items()
    }

    # Per-query incremental maintenance cost: stream updates, attributing
    # propagation time per view is not separable (shared input layer), so
    # measure each query in isolation on its own engine.
    rows = []
    for key, query in SNB_QUERIES.items():
        isolated = network(persons=20, seed=11)
        iso_engine = QueryEngine(isolated.graph)
        iso_engine.register(query, parameters_for(query))
        updates = list(update_stream(isolated, operations=150, seed=4))
        start = time.perf_counter()
        for _, apply in updates:
            apply()
        incremental = (time.perf_counter() - start) / len(updates)

        baseline_net = network(persons=20, seed=11)
        baseline_engine = QueryEngine(baseline_net.graph)
        baseline_updates = list(update_stream(baseline_net, operations=30, seed=4))
        start = time.perf_counter()
        for _, apply in baseline_updates:
            apply()
            baseline_engine.evaluate(query, parameters_for(query), use_views=False)
        recompute = (time.perf_counter() - start) / len(baseline_updates)
        rows.append([key, incremental, recompute, speedup(recompute, incremental)])

    print(
        format_table(
            ["query", "incremental/update", "recompute/update", "speedup"],
            rows,
            title="E12 — SNB query mix under the interactive update stream",
        )
    )

    for key, query in SNB_TOPK_QUERIES.items():
        try:
            engine.register(query)
        except UnsupportedForIncrementalError as exc:
            print(f"\n{key}: rejected for IVM ({exc});")
            start = time.perf_counter()
            result = engine.evaluate(query, use_views=False)
            elapsed = time.perf_counter() - start
            print(f"  one-shot evaluation: {elapsed * 1e3:.2f} ms, "
                  f"{len(result.rows())} rows")


if __name__ == "__main__":
    main()
