"""E8 — sustained update throughput on the social-network domain (LDBC
SNB-flavoured, paper ref [17]; the running example's home turf).

A mixed update stream (comments, likes, language edits, subtree deletes,
new posts) runs against a graph with several live views registered; we
report the stream throughput with incremental maintenance versus
re-evaluating every view after every operation.
"""

from __future__ import annotations

import pytest

from repro import QueryEngine
from repro.bench import Timer, format_table, speedup
from repro.workloads import social

VIEW_NAMES = ("running_example", "thread_sizes", "posts_per_person", "popular_posts")
STREAM_LENGTH = 60


def network(persons=10):
    return social.generate_social(
        persons=persons, posts_per_person=2, comments_per_post=4, seed=21
    )


# -- pytest-benchmark kernels -------------------------------------------------------


def test_stream_with_incremental_views(benchmark, bench_sizes):
    def setup():
        net = network(bench_sizes["persons"])
        engine = QueryEngine(net.graph)
        for name in VIEW_NAMES:
            engine.register(social.QUERIES[name])
        return (net,), {}

    def target(net):
        for _ in social.update_stream(net, STREAM_LENGTH, seed=2):
            pass

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


def test_stream_with_recompute(benchmark, bench_sizes):
    def setup():
        net = network(bench_sizes["persons"])
        engine = QueryEngine(net.graph)
        return (net, engine), {}

    def target(net, engine):
        for _ in social.update_stream(net, STREAM_LENGTH, seed=2):
            for name in VIEW_NAMES:
                engine.evaluate(social.QUERIES[name], use_views=False)

    benchmark.pedantic(target, setup=setup, rounds=2, iterations=1)


def test_stream_correctness(bench_sizes):
    net = network(bench_sizes["persons"])
    engine = QueryEngine(net.graph)
    views = {name: engine.register(social.QUERIES[name]) for name in VIEW_NAMES}
    for _ in social.update_stream(net, STREAM_LENGTH, seed=2):
        pass
    for name, view in views.items():
        assert view.multiset() == engine.evaluate(social.QUERIES[name], use_views=False).multiset(), name


# -- standalone report -----------------------------------------------------------------


def main(persons: int = 20, operations: int = 200) -> None:
    net = network(persons)
    engine = QueryEngine(net.graph)
    views = {name: engine.register(social.QUERIES[name]) for name in VIEW_NAMES}
    print(f"graph: {net.graph.stats()}, views: {len(views)}")

    with Timer() as t_inc:
        kinds: dict[str, int] = {}
        for kind in social.update_stream(net, operations, seed=5):
            kinds[kind] = kinds.get(kind, 0) + 1

    net2 = network(persons)
    engine2 = QueryEngine(net2.graph)
    with Timer() as t_re:
        for _ in social.update_stream(net2, operations, seed=5):
            for name in VIEW_NAMES:
                engine2.evaluate(social.QUERIES[name], use_views=False)

    for name, view in views.items():
        assert view.multiset() == engine.evaluate(social.QUERIES[name], use_views=False).multiset(), name

    rows = [
        [
            "incremental",
            t_inc.seconds,
            f"{operations / t_inc.seconds:.0f}",
            speedup(t_re.seconds, t_inc.seconds),
        ],
        ["recompute-per-op", t_re.seconds, f"{operations / t_re.seconds:.0f}", "1.0x"],
    ]
    print(
        format_table(
            ["mode", "total", "ops/sec", "speedup"],
            rows,
            title=f"E8 — social update stream, {operations} ops, mix={kinds}",
        )
    )


if __name__ == "__main__":
    main()
