"""E3/E4 — the maintainable-fragment matrix (paper §4 claims).

Regenerates, as a table, the paper's central claim: which openCypher
constructs are incrementally maintainable (bags + atomic paths + path
unwinding) and which are excluded (ordering / top-k).  For every supported
construct the incremental view is checked against the recompute oracle and
its maintenance cost is measured.
"""

from __future__ import annotations

from repro import PropertyGraph, QueryEngine, UnsupportedForIncrementalError
from repro.bench import Timer, format_table
from repro.compiler import compile_query
from repro.workloads import social

#: construct → (query, expected_in_fragment)
MATRIX: dict[str, tuple[str, bool]] = {
    "node scan": ("MATCH (n:Post) RETURN n", True),
    "selection": ("MATCH (n:Post) WHERE n.lang = 'en' RETURN n", True),
    "join (single hop)": ("MATCH (a:Post)-[:REPLY]->(b:Comm) RETURN a, b", True),
    "transitive closure + path": (
        "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) RETURN p, t",
        True,
    ),
    "path unwinding": (
        "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) UNWIND nodes(t) AS n RETURN n",
        True,
    ),
    "DISTINCT": ("MATCH (n:Post) RETURN DISTINCT n.lang AS l", True),
    "aggregation": ("MATCH (n:Post) RETURN n.lang AS l, count(*) AS c", True),
    "OPTIONAL MATCH": (
        "MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY]->(c) RETURN p, c",
        True,
    ),
    "UNION": (
        "MATCH (p:Post) RETURN p AS n UNION MATCH (c:Comm) RETURN c AS n",
        True,
    ),
    "WITH + HAVING": (
        "MATCH (p:Post)-[:REPLY]->(c) WITH p, count(c) AS n WHERE n > 1 RETURN p, n",
        True,
    ),
    "ORDER BY": ("MATCH (n:Post) RETURN n ORDER BY n.lang", False),
    "SKIP": ("MATCH (n:Post) RETURN n SKIP 2", False),
    "LIMIT": ("MATCH (n:Post) RETURN n LIMIT 3", False),
    "top-k (paper's example)": (
        "MATCH (p:Post)-[:REPLY*]->(c) RETURN p, count(c) AS n ORDER BY n DESC LIMIT 3",
        False,
    ),
}


def workload():
    return social.generate_social(
        persons=8, posts_per_person=2, comments_per_post=4, seed=7
    )


# -- pytest-benchmark kernels ---------------------------------------------------


def test_compile_matrix(benchmark):
    def compile_all():
        for query, _ in MATRIX.values():
            compile_query(query)

    benchmark(compile_all)


def test_maintain_supported_fragment(benchmark):
    net = workload()
    engine = QueryEngine(net.graph)
    for name, (query, in_fragment) in MATRIX.items():
        if in_fragment:
            engine.register(query)
    posts = net.posts
    counter = iter(range(10**9))

    def one_update():
        social.add_comment(net, posts[next(counter) % len(posts)], "en")

    benchmark(one_update)


def test_matrix_correctness():
    net = workload()
    engine = QueryEngine(net.graph)
    for name, (query, in_fragment) in MATRIX.items():
        assert compile_query(query).is_incremental == in_fragment, name
        if in_fragment:
            view = engine.register(query)
            assert view.multiset() == engine.evaluate(query, use_views=False).multiset(), name
        else:
            try:
                engine.register(query)
            except UnsupportedForIncrementalError:
                pass
            else:  # pragma: no cover - defensive
                raise AssertionError(f"{name} should be rejected for IVM")
            engine.evaluate(query, use_views=False)  # one-shot stays supported


# -- standalone report -------------------------------------------------------------


def main() -> None:
    net = workload()
    engine = QueryEngine(net.graph)
    rows = []
    for name, (query, expected) in MATRIX.items():
        compiled = compile_query(query)
        assert compiled.is_incremental == expected, name
        if compiled.is_incremental:
            view = engine.register(query)
            with Timer() as update_t:
                social.add_comment(net, net.posts[0], "en")
            consistent = view.multiset() == engine.evaluate(query, use_views=False).multiset()
            rows.append(
                [name, "yes", f"{update_t.seconds * 1e3:.2f}ms (all views)",
                 "ok" if consistent else "MISMATCH"]
            )
        else:
            try:
                engine.register(query)
                status = "BUG: accepted"
            except UnsupportedForIncrementalError:
                status = "rejected (ORD)"
            engine.evaluate(query, use_views=False)
            rows.append([name, "no", "-", status + ", one-shot ok"])
    print(
        format_table(
            ["construct", "IVM", "update latency", "check"],
            rows,
            title="E3/E4 — incrementally maintainable fragment matrix",
        )
    )


if __name__ == "__main__":
    main()
