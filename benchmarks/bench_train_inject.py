"""E5 — Train Benchmark *inject* scenario (methodology of paper ref [30]).

For each of the six well-formedness queries: apply a small batch of fault
injections, then re-obtain the match set — either by reading the
incrementally maintained view (this paper's approach) or by full
recomputation (a system without IVM).  The Train Benchmark reports exactly
this per-query revalidation time; the expected *shape* is incremental ≪
recompute, since injections touch a tiny fraction of the model.
"""

from __future__ import annotations

import random

import pytest

from repro import QueryEngine
from repro.bench import Timer, format_table, speedup
from repro.workloads import trainbenchmark as tb

QUERY_NAMES = list(tb.QUERIES)
INJECT_BATCH = 2


def fresh(routes=10, seed=31):
    model = tb.generate_railway(routes=routes, seed=seed)
    engine = QueryEngine(model.graph)
    return model, engine


# -- pytest-benchmark kernels ---------------------------------------------------


@pytest.mark.parametrize("query_name", QUERY_NAMES)
def test_inject_incremental(benchmark, query_name, bench_sizes):
    def setup():
        model, engine = fresh(routes=bench_sizes["routes"])
        view = engine.register(tb.QUERIES[query_name])
        return (model, view, random.Random(2)), {}

    def target(model, view, rng):
        tb.inject(model, query_name, INJECT_BATCH, rng)
        return view.multiset()

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


@pytest.mark.parametrize("query_name", QUERY_NAMES)
def test_inject_recompute(benchmark, query_name, bench_sizes):
    def setup():
        model, engine = fresh(routes=bench_sizes["routes"])
        return (model, engine, random.Random(2)), {}

    def target(model, engine, rng):
        tb.inject(model, query_name, INJECT_BATCH, rng)
        return engine.evaluate(tb.QUERIES[query_name], use_views=False).multiset()

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


def test_inject_correctness(bench_sizes):
    model, engine = fresh(routes=bench_sizes["routes"])
    rng = random.Random(5)
    views = {name: engine.register(q) for name, q in tb.QUERIES.items()}
    for name in QUERY_NAMES:
        tb.inject(model, name, INJECT_BATCH, rng)
    for name, query in tb.QUERIES.items():
        assert views[name].multiset() == engine.evaluate(query, use_views=False).multiset(), name


# -- standalone report -------------------------------------------------------------


def main(routes: int = 30) -> None:
    rows = []
    for name in QUERY_NAMES:
        # incremental
        model, engine = fresh(routes=routes)
        view = engine.register(tb.QUERIES[name])
        rng = random.Random(7)
        with Timer() as t_inc:
            tb.inject(model, name, INJECT_BATCH, rng)
            matches_inc = view.multiset()
        # recompute
        model, engine = fresh(routes=routes)
        rng = random.Random(7)
        with Timer() as t_re:
            tb.inject(model, name, INJECT_BATCH, rng)
            matches_re = engine.evaluate(tb.QUERIES[name], use_views=False).multiset()
        assert matches_inc == matches_re, name
        rows.append(
            [name, len(matches_inc), t_inc.seconds, t_re.seconds, speedup(t_re.seconds, t_inc.seconds)]
        )
    model, _ = fresh(routes=routes)
    print(
        format_table(
            ["query", "matches", "incremental", "recompute", "speedup"],
            rows,
            title=f"E5 — Train Benchmark inject, {routes} routes ({model.graph.stats()})",
        )
    )


if __name__ == "__main__":
    main()
