"""E6 — Train Benchmark *repair* scenario (methodology of paper ref [30]).

The repair phase fixes previously found violations and re-obtains the match
set.  Repairs are *deletions from the view* — the direction classic
insert-only incremental techniques struggle with and where counting-based
maintenance (this paper's step 4) shines.
"""

from __future__ import annotations

import random

import pytest

from repro import QueryEngine
from repro.bench import Timer, format_table, speedup
from repro.workloads import trainbenchmark as tb

QUERY_NAMES = list(tb.QUERIES)
REPAIR_BATCH = 2


def prepared(routes=10, seed=33, query_name="PosLength"):
    """A model with injected faults plus its registered view."""
    model = tb.generate_railway(routes=routes, seed=seed)
    engine = QueryEngine(model.graph)
    view = engine.register(tb.QUERIES[query_name])
    tb.inject(model, query_name, 4, random.Random(seed))
    return model, engine, view


# -- pytest-benchmark kernels ----------------------------------------------------


@pytest.mark.parametrize("query_name", QUERY_NAMES)
def test_repair_incremental(benchmark, query_name, bench_sizes):
    def setup():
        model, engine, view = prepared(
            routes=bench_sizes["routes"], query_name=query_name
        )
        return (model, view, random.Random(3)), {}

    def target(model, view, rng):
        matches = view.rows()
        tb.repair(model, query_name, matches, REPAIR_BATCH, rng)
        return view.multiset()

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


@pytest.mark.parametrize("query_name", QUERY_NAMES)
def test_repair_recompute(benchmark, query_name, bench_sizes):
    def setup():
        model = tb.generate_railway(routes=bench_sizes["routes"], seed=33)
        engine = QueryEngine(model.graph)
        tb.inject(model, query_name, 4, random.Random(33))
        return (model, engine, random.Random(3)), {}

    def target(model, engine, rng):
        matches = engine.evaluate(tb.QUERIES[query_name], use_views=False).rows()
        tb.repair(model, query_name, matches, REPAIR_BATCH, rng)
        return engine.evaluate(tb.QUERIES[query_name], use_views=False).multiset()

    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)


def test_repair_correctness(bench_sizes):
    for name in QUERY_NAMES:
        model, engine, view = prepared(routes=bench_sizes["routes"], query_name=name)
        rng = random.Random(9)
        while view.rows():
            before = len(view.rows())
            tb.repair(model, name, view.rows(), before, rng)
            assert view.multiset() == engine.evaluate(tb.QUERIES[name], use_views=False).multiset()
            assert len(view.rows()) < before, f"{name}: repair made no progress"


# -- standalone report ----------------------------------------------------------------


def main(routes: int = 30) -> None:
    rows = []
    for name in QUERY_NAMES:
        model, engine, view = prepared(routes=routes, seed=33, query_name=name)
        rng = random.Random(3)
        with Timer() as t_inc:
            tb.repair(model, name, view.rows(), REPAIR_BATCH, rng)
            remaining_inc = view.multiset()

        model2 = tb.generate_railway(routes=routes, seed=33)
        engine2 = QueryEngine(model2.graph)
        tb.inject(model2, name, 4, random.Random(33))
        rng = random.Random(3)
        with Timer() as t_re:
            matches = engine2.evaluate(tb.QUERIES[name], use_views=False).rows()
            tb.repair(model2, name, matches, REPAIR_BATCH, rng)
            remaining_re = engine2.evaluate(tb.QUERIES[name], use_views=False).multiset()

        assert remaining_inc == remaining_re, name
        rows.append(
            [
                name,
                len(remaining_inc),
                t_inc.seconds,
                t_re.seconds,
                speedup(t_re.seconds, t_inc.seconds),
            ]
        )
    print(
        format_table(
            ["query", "remaining", "incremental", "recompute", "speedup"],
            rows,
            title=f"E6 — Train Benchmark repair, {routes} routes",
        )
    )


if __name__ == "__main__":
    main()
