"""Benchmark trend gate: fail CI on regressions against committed baselines.

CI runs the memory-sensitive benches in ``--smoke`` mode with ``--out``
pointing at a scratch directory, then calls this script to compare the
fresh ``BENCH_*.json`` points against ``benchmarks/trend_baselines.json``.

Smoke workloads are seeded and fixed-size, so their *memory* metrics
(cell-count and growth ratios) are exactly reproducible run to run: a
drop beyond the tolerance is a structural regression, not runner noise,
and fails the build.  Timing-derived metrics (the ``*_speedup`` keys)
vary with machine load, so they only warn.

Usage::

    python benchmarks/bench_trend.py --fresh DIR [--baseline FILE]
        [--tolerance 0.30] [--update]

``--update`` rewrites the baseline file from the fresh points (run it
after intentionally changing a smoke workload, and commit the result).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "trend_baselines.json"
TOLERANCE = 0.30

#: metric -> direction, where "up" means larger is better.  Hard metrics
#: are deterministic at the smoke scale (pure cell arithmetic over seeded
#: graphs): any regression past the tolerance fails the gate.
HARD_METRICS: dict[str, dict[str, str]] = {
    "columnar_memory": {"cells_reduction": "up"},
    "sharing": {"memory_ratio": "up"},
    "param_sharing": {"memory_ratio": "up", "shared_layer_growth": "down"},
}

#: timing-derived metrics: compared with the same tolerance but only
#: warned about, because smoke runs on shared CI runners are noisy.
SOFT_METRICS: dict[str, dict[str, str]] = {
    "columnar_memory": {"churn_speedup": "up"},
    "sharing": {"throughput_speedup": "up"},
    "param_sharing": {"throughput_speedup": "up", "registration_speedup": "up"},
}


def regression(baseline: float, fresh: float, direction: str) -> float:
    """Fractional regression of *fresh* against *baseline* (≤0 = no worse)."""
    if baseline == 0:
        return 0.0
    if direction == "up":
        return (baseline - fresh) / abs(baseline)
    return (fresh - baseline) / abs(baseline)


def load_points(directory: Path) -> dict[str, dict]:
    """All ``BENCH_*.json`` points in *directory*, keyed by experiment."""
    points: dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        data = json.loads(path.read_text())
        points[data["experiment"]] = data
    return points


def compare(
    baselines: dict[str, dict],
    fresh: dict[str, dict],
    tolerance: float = TOLERANCE,
) -> tuple[list[str], list[str]]:
    """Returns ``(failures, warnings)`` as human-readable lines."""
    failures: list[str] = []
    warnings: list[str] = []
    for experiment in sorted(HARD_METRICS):
        if experiment not in baselines:
            continue  # no committed baseline yet — nothing to hold it to
        if experiment not in fresh:
            failures.append(
                f"{experiment}: no fresh point (did the bench run with --out?)"
            )
            continue
        base_point, fresh_point = baselines[experiment], fresh[experiment]
        checks = [
            (HARD_METRICS[experiment], failures),
            (SOFT_METRICS.get(experiment, {}), warnings),
        ]
        for metrics, sink in checks:
            for metric, direction in sorted(metrics.items()):
                if metric not in base_point or metric not in fresh_point:
                    failures.append(f"{experiment}.{metric}: metric missing")
                    continue
                drop = regression(
                    base_point[metric], fresh_point[metric], direction
                )
                if drop > tolerance:
                    sink.append(
                        f"{experiment}.{metric}: baseline "
                        f"{base_point[metric]:.3f} -> fresh "
                        f"{fresh_point[metric]:.3f} "
                        f"({drop:+.1%} regression, tolerance {tolerance:.0%})"
                    )
    return failures, warnings


def baselines_from_points(points: dict[str, dict]) -> dict[str, dict]:
    """Project *points* down to the declared trend metrics."""
    baselines: dict[str, dict] = {}
    for experiment, point in sorted(points.items()):
        declared = {
            **HARD_METRICS.get(experiment, {}),
            **SOFT_METRICS.get(experiment, {}),
        }
        if declared:
            baselines[experiment] = {
                metric: point[metric] for metric in sorted(declared)
            }
    return baselines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="compare fresh smoke bench points against the committed "
        "trend baselines"
    )
    parser.add_argument(
        "--fresh", metavar="DIR", required=True,
        help="directory of BENCH_*.json points written by --smoke --out runs",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=str(BASELINE_PATH),
        help="committed baseline file (default: benchmarks/trend_baselines.json)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=TOLERANCE, metavar="FRACTION",
        help="fractional regression allowed before failing (default: 0.30)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline file from the fresh points and exit",
    )
    args = parser.parse_args(argv)

    fresh = load_points(Path(args.fresh))
    baseline_path = Path(args.baseline)
    if args.update:
        baselines = baselines_from_points(fresh)
        baseline_path.write_text(json.dumps(baselines, indent=2) + "\n")
        print(f"wrote {baseline_path} ({len(baselines)} experiments)")
        return 0

    baselines = json.loads(baseline_path.read_text())
    failures, warnings = compare(baselines, fresh, args.tolerance)
    for line in warnings:
        print(f"warning (timing, not gated): {line}")
    for line in failures:
        print(f"REGRESSION: {line}")
    if failures:
        print(f"\ntrend gate failed: {len(failures)} regression(s)")
        return 1
    checked = sum(len(m) for e, m in HARD_METRICS.items() if e in baselines)
    print(
        f"trend gate passed: {checked} deterministic metrics within "
        f"{args.tolerance:.0%} of baseline ({len(warnings)} timing warnings)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
