"""E15 — answering one-shot queries from materialised views (SNB read mix).

The serving-system regime: an SNB-style social network with a set of
registered (incrementally maintained) views, a write stream trickling in,
and a heavy snapshot-read mix on top — profile pages, friend lists,
aggregate leaderboards, top-k variants.  With ``use_views=True`` (the
engine default) each read is matched against the view catalog and served
from live maintained state (O(view lookup + result)); with
``use_views=False`` every read pays full recomputation (O(graph)), which
is what a system without view answering must do.

Every run is correctness-gated: each read in the mix is first answered
from views *and* recomputed, and the multisets must agree — after every
update round, so the gate also covers maintained-state freshness.

The standalone main asserts a ≥5x read-mix speedup when covering views
are registered and writes a ``BENCH_view_answering.json`` trajectory
point; ``--smoke`` runs the differential gate only (no timing claims)
for CI.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro import PropertyGraph, QueryEngine
from repro.bench import Timer, format_table, speedup
from repro.workloads.snb import SNB_QUERIES, generate_snb, update_stream

SEED = 71
SMOKE_SIZES = {
    "persons": 12,
    "forums": 2,
    "posts_per_forum": 4,
    "comments_per_post": 2,
    "update_rounds": 3,
    "updates_per_round": 10,
    "read_rounds": 2,
}
FULL_SIZES = {
    "persons": 40,
    "forums": 6,
    "posts_per_forum": 10,
    "comments_per_post": 4,
    "update_rounds": 5,
    "updates_per_round": 40,
    "read_rounds": 10,
}

#: the registered (covering) views — parameter-free SNB interactive cores
VIEW_KEYS = (
    "is3_friends",
    "ic2_friend_messages",
    "ic4_friend_tags",
    "ic5_forum_posts",
    "ic7_likers",
    "ic8_replies",
)

#: the snapshot-read mix: exact hits, alpha-renamed hits, residual hits
#: (DISTINCT / top-k / HAVING over maintained cores)
READ_MIX: tuple[tuple[str, str], ...] = tuple(
    [(key, SNB_QUERIES[key]) for key in VIEW_KEYS]
    + [
        (
            "is3_renamed",
            "MATCH (a:Person)-[:KNOWS]->(z:Person) "
            "RETURN a.name AS person, z.name AS friend",
        ),
        (
            "ic7_top3",
            "MATCH (fan:Person)-[:LIKES]->(m:Post)-[:HAS_CREATOR]->(auth:Person) "
            "RETURN auth.name AS author, count(*) AS likes "
            "ORDER BY likes DESC LIMIT 3",
        ),
        (
            "ic4_hot_tags",
            "MATCH (p:Person)-[:KNOWS]->(f:Person)<-[:HAS_CREATOR]-(m:Post)"
            "-[:HAS_TAG]->(t:Tag) "
            "WITH t.name AS tag, count(*) AS posts WHERE posts > 1 "
            "RETURN tag, posts",
        ),
        (
            "ic2_distinct_friends",
            "MATCH (p:Person)-[:KNOWS]->(f:Person)<-[:HAS_CREATOR]-(m:Post) "
            "WHERE m.recent = TRUE RETURN DISTINCT f.name AS friend",
        ),
    ]
)


def build(sizes: dict) -> tuple[QueryEngine, object]:
    net = generate_snb(
        persons=sizes["persons"],
        forums=sizes["forums"],
        posts_per_forum=sizes["posts_per_forum"],
        comments_per_post=sizes["comments_per_post"],
        seed=SEED,
    )
    engine = QueryEngine(net.graph)
    for key in VIEW_KEYS:
        engine.register(SNB_QUERIES[key])
    return engine, net


def verify(engine: QueryEngine) -> None:
    """The differential oracle gate, per read."""
    for name, query in READ_MIX:
        served = engine.evaluate(query, use_views=True).multiset()
        direct = engine.evaluate(query, use_views=False).multiset()
        assert served == direct, f"view answer diverged from oracle: {name}"


def run(sizes: dict) -> dict:
    engine, net = build(sizes)
    verify(engine)
    served_seconds = 0.0
    direct_seconds = 0.0
    reads = 0
    for _ in range(sizes["update_rounds"]):
        for _, apply in update_stream(net, sizes["updates_per_round"], seed=SEED):
            apply()
        verify(engine)  # maintained state stays oracle-fresh mid-stream
        for _ in range(sizes["read_rounds"]):
            for _, query in READ_MIX:
                with Timer() as timer:
                    engine.evaluate(query, use_views=True)
                served_seconds += timer.seconds
                with Timer() as timer:
                    engine.evaluate(query, use_views=False)
                direct_seconds += timer.seconds
                reads += 1
    stats = engine.answer_stats()
    return {
        "reads": reads,
        "served_seconds": served_seconds,
        "direct_seconds": direct_seconds,
        "answered": stats.answered,
        "exact": stats.exact,
        "residual": stats.residual,
        "root_hits": stats.root_hits,
        "subplan_hits": stats.subplan_hits,
        "fallbacks": stats.fallbacks,
    }


# -- pytest-benchmark kernels --------------------------------------------------


def test_view_answering_differential():
    engine, net = build(SMOKE_SIZES)
    for _, apply in update_stream(net, 20, seed=SEED):
        apply()
    verify(engine)


def test_read_mix_served(benchmark):
    engine, _ = build(SMOKE_SIZES)
    benchmark.pedantic(
        lambda: [engine.evaluate(q) for _, q in READ_MIX], rounds=3, iterations=1
    )


def test_read_mix_recomputed(benchmark):
    engine, _ = build(SMOKE_SIZES)
    benchmark.pedantic(
        lambda: [engine.evaluate(q, use_views=False) for _, q in READ_MIX],
        rounds=3,
        iterations=1,
    )


# -- standalone report ---------------------------------------------------------


def main(smoke: bool = False) -> None:
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    print(
        f"view answering: {len(VIEW_KEYS)} registered views, "
        f"{len(READ_MIX)}-query SNB read mix, "
        f"{sizes['update_rounds']}x{sizes['updates_per_round']} updates"
    )
    point = run(sizes)
    print("differential oracle: view-answered == full recomputation ✓")
    ratio = point["direct_seconds"] / max(point["served_seconds"], 1e-9)
    reads = point["reads"]
    rows = [
        [
            "full recomputation (use_views=False)",
            point["direct_seconds"],
            f"{reads / point['direct_seconds']:.0f}",
            "1.0x",
        ],
        [
            "view answering (catalog)",
            point["served_seconds"],
            f"{reads / point['served_seconds']:.0f}",
            speedup(point["direct_seconds"], point["served_seconds"]),
        ],
    ]
    print(
        format_table(
            ["read path", "total", "reads/sec", "vs baseline"],
            rows,
            title="E15 — snapshot reads from materialised views (SNB mix)",
        )
    )
    print(
        f"hits: {point['exact']} exact, {point['residual']} residual "
        f"({point['root_hits']} view roots, {point['subplan_hits']} shared "
        f"subplans), {point['fallbacks']} fallbacks"
    )
    if smoke:
        assert point["answered"] > 0, "smoke run should serve some reads"
        print("\nsmoke mode: answering paths exercised, timings not asserted")
        return
    point["speedup"] = ratio
    Path("BENCH_view_answering.json").write_text(
        json.dumps(point, indent=2) + "\n"
    )
    print(f"\nwrote BENCH_view_answering.json (speedup {ratio:.1f}x)")
    assert ratio >= 5.0, (
        f"view answering should be ≥5x faster than recomputation on the "
        f"covered SNB read mix, got {ratio:.1f}x"
    )
    print("≥5x snapshot-read speedup with covering views registered ✓")


if __name__ == "__main__":
    main(smoke="--smoke" in sys.argv[1:])
