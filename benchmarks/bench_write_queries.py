"""E14 — the write path: Cypher update statements driving live views.

The other experiments mutate the graph through its Python API; this one
exercises the full *active graph database* loop the write layer enables:

    parse → bind → mutate (in a transaction) → events → Rete → views

Measured over an SNB-style statement mix (CREATE / MERGE / SET / DELETE):

* statement throughput with 0 / 2 / 6 live views (the marginal cost of
  each maintained view),
* the same statements with recompute-after-every-statement, the paper's
  non-IVM baseline,
* executor overhead: statement execution vs. the equivalent raw API calls.
"""

from __future__ import annotations

import random

from repro import PropertyGraph, QueryEngine
from repro.bench import Timer, format_table, speedup

VIEWS = [
    "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS n",
    "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
    "MATCH (u:Person)-[:LIKES]->(p:Post) RETURN p, count(*) AS likes",
    "MATCH (p:Post)-[:REPLY]->(c:Comm)-[:REPLY]->(d:Comm) RETURN p, d",
    "MATCH (u:Person) RETURN u.name AS name",
    "MATCH (c:Comm) RETURN c.lang AS lang, count(*) AS n",
]

LANGS = ("en", "de", "fr")


def statements(count: int, seed: int = 7):
    rng = random.Random(seed)
    out = []
    for index in range(count):
        lang = rng.choice(LANGS)
        other = rng.choice(LANGS)
        kind = rng.randrange(10)
        if kind < 3:
            out.append(f"CREATE (p:Post {{lang: '{lang}'}})")
        elif kind < 6:
            out.append(
                f"MATCH (p:Post {{lang: '{lang}'}}) WITH p LIMIT 1 "
                f"CREATE (p)-[:REPLY]->(c:Comm {{lang: '{other}'}})"
            )
        elif kind < 7:
            out.append(f"MERGE (u:Person {{name: 'user-{index % 10}'}})")
        elif kind < 8:
            out.append(
                f"MATCH (u:Person {{name: 'user-{index % 10}'}}) "
                f"MATCH (p:Post {{lang: '{lang}'}}) WITH u, p LIMIT 1 "
                "MERGE (u)-[:LIKES]->(p)"
            )
        elif kind < 9:
            out.append(f"MATCH (c:Comm {{lang: '{lang}'}}) WITH c LIMIT 1 SET c.lang = '{other}'")
        else:
            out.append(
                f"MATCH (c:Comm {{lang: '{lang}'}}) "
                "WITH c LIMIT 1 DETACH DELETE c"
            )
    return out


def run_statements(engine: QueryEngine, batch: list[str]) -> None:
    for statement in batch:
        engine.execute(statement)


# -- pytest-benchmark kernels ----------------------------------------------------


def test_write_stream_no_views(benchmark):
    engine = QueryEngine(PropertyGraph())
    batch = statements(40)
    run_statements(engine, batch)  # warm the graph
    benchmark(lambda: run_statements(engine, statements(10, seed=1)))


def test_write_stream_six_views(benchmark):
    engine = QueryEngine(PropertyGraph())
    for view in VIEWS:
        engine.register(view)
    batch = statements(40)
    run_statements(engine, batch)
    benchmark(lambda: run_statements(engine, statements(10, seed=1)))


def test_write_stream_recompute_baseline(benchmark):
    engine = QueryEngine(PropertyGraph())
    run_statements(engine, statements(40))

    def step():
        for statement in statements(5, seed=1):
            engine.execute(statement)
            for view in VIEWS:
                engine.evaluate(view, use_views=False)

    benchmark(step)


def test_views_stay_consistent():
    engine = QueryEngine(PropertyGraph())
    views = [engine.register(q) for q in VIEWS]
    run_statements(engine, statements(60))
    for query, view in zip(VIEWS, views):
        assert sorted(view.rows(), key=repr) == sorted(
            engine.evaluate(query, use_views=False).rows(), key=repr
        )


# -- standalone report --------------------------------------------------------------


def main() -> None:
    rows = []
    for view_count in (0, 2, 6):
        engine = QueryEngine(PropertyGraph())
        for query in VIEWS[:view_count]:
            engine.register(query)
        run_statements(engine, statements(60))  # warm up
        batch = statements(300, seed=1)
        with Timer() as timer:
            run_statements(engine, batch)
        rows.append(
            [
                f"incremental, {view_count} views",
                timer.seconds / len(batch),
                f"{len(batch) / timer.seconds:,.0f}",
            ]
        )

    engine = QueryEngine(PropertyGraph())
    run_statements(engine, statements(60))
    batch = statements(60, seed=1)
    with Timer() as timer:
        for statement in batch:
            engine.execute(statement)
            for query in VIEWS:
                engine.evaluate(query, use_views=False)
    rows.append(
        [
            "recompute 6 queries/stmt",
            timer.seconds / len(batch),
            f"{len(batch) / timer.seconds:,.0f}",
        ]
    )
    print(
        format_table(
            ["mode", "per statement", "statements/s"],
            rows,
            title="E14 — write-query stream (active graph database loop)",
        )
    )
    print(
        "6-view incremental vs recompute: "
        f"{speedup(rows[-1][1], rows[-2][1])} per statement"
    )


if __name__ == "__main__":
    main()
