"""Shared benchmark configuration.

Every experiment file doubles as a standalone script: ``python
benchmarks/bench_<x>.py`` prints the full paper-style table/series, while
``pytest benchmarks/ --benchmark-only`` runs the timed kernels under
pytest-benchmark.
"""

import pytest


@pytest.fixture(scope="session")
def bench_sizes():
    """Default workload sizes for timed kernels (kept moderate so the whole
    suite runs in seconds; the standalone mains sweep larger sizes)."""
    return {"routes": 10, "persons": 10}
