"""An active, durable graph database: triggers, WAL recovery, PROFILE.

Combines the engine's systems features around the paper's IVM core:

* **write queries** (CREATE / MERGE / SET / DELETE) drive the graph,
* **incremental views with change callbacks** act as triggers — the
  "active graph database" mode of operation (cf. Graphflow in the paper's
  related work),
* **durability** — every change lands in a write-ahead log; we simulate a
  crash and recover the store (snapshot + WAL tail), then keep serving
  the same views,
* **PROFILE** — per-node delta/memory counters of a live view's network.

Scenario: payment monitoring.  Accounts make transfers; a view watches
for accounts whose flagged-transfer volume crosses a threshold, and a
trigger reacts by labelling the account, which a second view picks up.

Run:  python examples/active_monitoring.py
"""

import shutil
import tempfile
from pathlib import Path

from repro import DurableGraph, QueryEngine

FLAGGED_VOLUME = """
MATCH (a:Account)-[t:TRANSFER]->(b:Account)
WHERE t.flagged = TRUE
RETURN a.iban AS iban, sum(t.amount) AS flagged_volume
"""

QUARANTINED = """
MATCH (a:Account:Quarantined)
RETURN a.iban AS iban
"""

THRESHOLD = 1000


def main() -> None:
    directory = Path(tempfile.mkdtemp(prefix="repro-monitoring-"))
    try:
        run(directory)
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def run(directory: Path) -> None:
    print(f"Opening durable graph under {directory}")
    durable = DurableGraph(directory)
    engine = QueryEngine(durable.graph)

    volume_view = engine.register(FLAGGED_VOLUME)
    quarantine_view = engine.register(QUARANTINED)

    # -- the trigger: react to view deltas with follow-up write queries -----
    def on_volume_change(delta) -> None:
        for (iban, volume), multiplicity in delta.items():
            if multiplicity > 0 and volume is not None and volume > THRESHOLD:
                print(f"  TRIGGER: {iban} flagged volume {volume} > {THRESHOLD}")
                engine.execute(
                    "MATCH (a:Account {iban: $iban}) SET a:Quarantined",
                    parameters={"iban": iban},
                )

    volume_view.on_change(on_volume_change)

    print("\nCreating accounts (MERGE is idempotent):")
    for iban in ("DE01", "DE02", "FR03"):
        engine.execute(
            "MERGE (a:Account {iban: $iban})", parameters={"iban": iban}
        )
    print(f"  accounts: {durable.graph.vertex_count}")

    print("\nStreaming transfers:")
    transfers = [
        ("DE01", "DE02", 400, False),
        ("DE01", "FR03", 700, True),
        ("DE02", "FR03", 900, True),
        ("DE01", "DE02", 600, True),  # pushes DE01 over the threshold
    ]
    for src, tgt, amount, flagged in transfers:
        engine.execute(
            "MATCH (a:Account {iban: $src}), (b:Account {iban: $tgt}) "
            "CREATE (a)-[:TRANSFER {amount: $amount, flagged: $flagged}]->(b)",
            parameters={"src": src, "tgt": tgt, "amount": amount, "flagged": flagged},
        )
    print(f"  quarantined accounts: {quarantine_view.rows()}")

    print("\nPROFILE of the volume view:")
    print(volume_view.profile())

    print(f"\nCheckpointing ({durable.wal_records} WAL records so far) …")
    durable.checkpoint()
    engine.execute(
        "MATCH (a:Account {iban: 'FR03'}), (b:Account {iban: 'DE01'}) "
        "CREATE (a)-[:TRANSFER {amount: 50, flagged: TRUE}]->(b)"
    )
    print("  one more transfer after the checkpoint (lives only in the WAL)")

    print("\n-- simulated crash: dropping the in-memory store ----------------")
    durable.close()
    del durable, engine, volume_view, quarantine_view

    recovered = DurableGraph(directory)
    print(
        f"Recovered: snapshot={recovered.recovered_from_snapshot}, "
        f"WAL tail records={recovered.recovered_wal_records}, "
        f"graph={recovered.graph.stats()}"
    )
    engine = QueryEngine(recovered.graph)
    view = engine.register(FLAGGED_VOLUME)
    print("Flagged volumes after recovery:")
    print(view.result_table().to_text())
    assert engine.evaluate(QUARANTINED).rows() == [("DE01",)]
    print("quarantine label survived recovery ✓")
    recovered.close()


if __name__ == "__main__":
    main()
