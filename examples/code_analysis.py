"""Source-code analysis: incremental anti-pattern detection.

The paper's §1 motivates IVM with, among others, *source code analysis*
(ref [32]: query-based anti-pattern detection).  This example models a
small Java-ish codebase as a property graph — classes, methods, fields,
calls — registers three classic anti-pattern queries as incremental
views, and then "edits the code" (adds calls, moves methods, deletes a
class), watching violations appear and disappear without any re-analysis
pass.

Anti-patterns:

* **god-class** — a class whose methods call into many other classes
  (coupling measured with an aggregate),
* **feature-envy** — a method accessing more fields of another class
  than of its own,
* **dead-method** — a non-public method that nobody calls (negation via
  OPTIONAL MATCH + IS NULL).

Run:  python examples/code_analysis.py
"""

from repro import PropertyGraph, QueryEngine

GOD_CLASS = """
MATCH (c:Class)-[:DECLARES]->(m:Method)-[:CALLS]->(m2:Method)<-[:DECLARES]-(other:Class)
WHERE c <> other
RETURN c.name AS class, count(m2) AS outgoing_calls
"""

FEATURE_ENVY = """
MATCH (c:Class)-[:DECLARES]->(m:Method)-[:READS]->(f:Field)<-[:DECLARES]-(other:Class)
WHERE c <> other
RETURN m.name AS method, other.name AS envied_class, count(f) AS foreign_reads
"""

DEAD_METHOD = """
MATCH (c:Class)-[:DECLARES]->(m:Method)
OPTIONAL MATCH (caller:Method)-[:CALLS]->(m)
WITH m, caller
WHERE m.visibility <> 'public' AND caller IS NULL
RETURN DISTINCT m.name AS dead
"""


def build_codebase(engine: QueryEngine) -> None:
    """Create the initial program graph with update queries (CREATE/MERGE)."""
    for class_name, methods in (
        ("OrderService", ["placeOrder", "validate", "audit"]),
        ("Billing", ["charge", "refund"]),
        ("Inventory", ["reserve", "release"]),
        ("Report", ["summarize"]),
    ):
        engine.execute(
            "CREATE (c:Class {name: $class})", parameters={"class": class_name}
        )
        for method in methods:
            engine.execute(
                "MATCH (c:Class {name: $class}) "
                "CREATE (c)-[:DECLARES]->(m:Method {name: $method, "
                "visibility: $visibility})",
                parameters={
                    "class": class_name,
                    "method": f"{class_name}.{method}",
                    "visibility": "public" if method[0] != "a" else "private",
                },
            )
    engine.execute(
        "MATCH (c:Class {name: 'Billing'}) "
        "CREATE (c)-[:DECLARES]->(f:Field {name: 'Billing.ledger'})"
    )
    engine.execute(
        "MATCH (c:Class {name: 'Inventory'}) "
        "CREATE (c)-[:DECLARES]->(f:Field {name: 'Inventory.stock'})"
    )
    # initial call graph
    for caller, callee in (
        ("OrderService.placeOrder", "Billing.charge"),
        ("OrderService.placeOrder", "Inventory.reserve"),
        ("OrderService.validate", "Inventory.reserve"),
        ("Billing.refund", "Billing.charge"),
    ):
        engine.execute(
            "MATCH (a:Method {name: $a}), (b:Method {name: $b}) "
            "MERGE (a)-[:CALLS]->(b)",
            parameters={"a": caller, "b": callee},
        )


def show(title: str, rows) -> None:
    print(f"  {title}: {rows if rows else '—'}")


def main() -> None:
    graph = PropertyGraph()
    engine = QueryEngine(graph)

    god = engine.register(GOD_CLASS)
    envy = engine.register(FEATURE_ENVY)
    dead = engine.register(DEAD_METHOD)

    print("Initial codebase:")
    build_codebase(engine)
    show("god-class coupling", god.rows())
    show("feature envy", envy.rows())
    show("dead methods", dead.rows())

    print("\nEdit 1: placeOrder starts reading Inventory.stock directly")
    engine.execute(
        "MATCH (m:Method {name: 'OrderService.placeOrder'}), "
        "(f:Field {name: 'Inventory.stock'}) CREATE (m)-[:READS]->(f)"
    )
    show("feature envy", envy.rows())

    print("\nEdit 2: audit() gains a caller — no longer dead")
    engine.execute(
        "MATCH (a:Method {name: 'OrderService.placeOrder'}), "
        "(b:Method {name: 'OrderService.audit'}) CREATE (a)-[:CALLS]->(b)"
    )
    show("dead methods", dead.rows())

    print("\nEdit 3: OrderService calls everything — god-class emerges")
    engine.execute(
        "MATCH (a:Method {name: 'OrderService.placeOrder'}), (b:Method) "
        "MATCH (other:Class)-[:DECLARES]->(b) "
        "WHERE other.name <> 'OrderService' MERGE (a)-[:CALLS]->(b)"
    )
    show("god-class coupling", god.rows())

    print("\nEdit 4: delete the Report class (DETACH DELETE)")
    engine.execute(
        "MATCH (c:Class {name: 'Report'}) "
        "OPTIONAL MATCH (c)-[:DECLARES]->(m:Method) "
        "DETACH DELETE m, c"
    )
    show("god-class coupling", god.rows())
    show("dead methods", dead.rows())

    # IVM guarantee: every view equals recomputation
    for view, query in ((god, GOD_CLASS), (envy, FEATURE_ENVY), (dead, DEAD_METHOD)):
        assert sorted(view.rows(), key=repr) == sorted(
            engine.evaluate(query).rows(), key=repr
        )
    print("\nall views ≡ full recomputation ✓")


if __name__ == "__main__":
    main()
