"""Low-latency financial fraud detection over a transaction graph.

One of the paper's motivating use cases (§1): fraud patterns are complex
graph queries that must fire with low latency as transactions stream in.
Three detectors run as incremental views:

* *layering chains* — money hopping through 3+ accounts of which the ends
  are flagged mules,
* *round-tripping* — funds returning to the origin account through a
  transfer cycle (a variable-length path back to the source),
* *smurfing hubs* — accounts receiving many small transfers.

Run:  python examples/fraud_detection.py
"""

import random

from repro import PropertyGraph, QueryEngine

DETECTORS = {
    "layering chain": (
        "MATCH p = (src:Account)-[:TRANSFER*3..5]->(dst:Account) "
        "WHERE src.flagged = TRUE AND dst.flagged = TRUE "
        "RETURN src, dst, p"
    ),
    "round trip": (
        # a cycle: some account reaches a flagged account which reaches it back
        "MATCH p = (a:Account)-[:TRANSFER*2..4]->(b:Account) "
        "MATCH (b)-[back:TRANSFER]->(a) "
        "WHERE b.flagged = TRUE "
        "RETURN a, b, p"
    ),
    "smurfing hub (≥4 small deposits)": (
        "MATCH (payer:Account)-[t:TRANSFER]->(hub:Account) "
        "WHERE t.amount < 100 "
        "WITH hub, count(t) AS small_deposits WHERE small_deposits >= 4 "
        "RETURN hub, small_deposits"
    ),
}


def build_bank(accounts: int, seed: int) -> tuple[PropertyGraph, list[int]]:
    rng = random.Random(seed)
    graph = PropertyGraph()
    ids = [
        graph.add_vertex(
            labels=["Account"],
            properties={"iban": f"ACC-{i:04d}", "flagged": rng.random() < 0.1},
        )
        for i in range(accounts)
    ]
    for _ in range(accounts * 2):
        src, dst = rng.sample(ids, 2)
        graph.add_edge(src, dst, "TRANSFER", properties={"amount": rng.randint(10, 5000)})
    return graph, ids


def main() -> None:
    graph, accounts = build_bank(accounts=40, seed=77)
    engine = QueryEngine(graph)
    print(f"transaction graph: {graph.stats()}\n")

    alerts: list[str] = []
    views = {}
    for name, query in DETECTORS.items():
        views[name] = engine.register(query)

        def alarm(delta, name=name):
            for row, multiplicity in delta.items():
                if multiplicity > 0:
                    alerts.append(f"[ALERT] {name}: {row}")

        views[name].on_change(alarm)
        print(f"armed detector: {name:35s} ({len(views[name].rows())} open alerts)")

    print("\n-- streaming transactions ------------------------------------")
    rng = random.Random(999)
    mule_a, mule_b = accounts[0], accounts[1]
    graph.set_vertex_property(mule_a, "flagged", True)
    graph.set_vertex_property(mule_b, "flagged", True)

    # a layering chain through three intermediaries
    chain = [mule_a] + rng.sample(accounts[5:], 3) + [mule_b]
    for src, dst in zip(chain, chain[1:]):
        graph.add_edge(src, dst, "TRANSFER", properties={"amount": 9000})

    # smurfing: five small deposits into one hub
    hub = accounts[2]
    for payer in rng.sample(accounts[10:], 5):
        graph.add_edge(payer, hub, "TRANSFER", properties={"amount": rng.randint(10, 99)})

    # round trip back to the origin
    origin, middle = accounts[3], accounts[4]
    graph.set_vertex_property(middle, "flagged", True)
    hop = rng.choice(accounts[20:])
    graph.add_edge(origin, hop, "TRANSFER", properties={"amount": 1200})
    graph.add_edge(hop, middle, "TRANSFER", properties={"amount": 1200})
    graph.add_edge(middle, origin, "TRANSFER", properties={"amount": 1150})

    print(f"\n{len(alerts)} alert(s) fired while streaming:")
    for alert in alerts[:10]:
        print(" ", alert)
    if len(alerts) > 10:
        print(f"  ... and {len(alerts) - 10} more")

    print("\nconsistency check against full recomputation:")
    for name, query in DETECTORS.items():
        assert views[name].multiset() == engine.evaluate(query).multiset()
        print(f"  {name:35s} ✓")


if __name__ == "__main__":
    main()
