"""Quickstart: the paper's running example, end to end.

Builds the example graph of §2, registers the paper's query as an
incremental view, and shows the view staying fresh while the graph changes
— including the atomic-path behaviour that motivates the design.

Run:  python examples/quickstart.py
"""

from repro import PropertyGraph, QueryEngine

QUERY = """
MATCH t = (p:Post)-[:REPLY*]->(c:Comm)
WHERE p.lang = c.lang
RETURN p, t
"""


def main() -> None:
    # -- build the paper's example graph -----------------------------------
    graph = PropertyGraph()
    post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
    comment2 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
    comment3 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
    graph.add_edge(post, comment2, "REPLY")
    reply_2_3 = graph.add_edge(comment2, comment3, "REPLY")

    engine = QueryEngine(graph)

    # -- one-shot evaluation (full recomputation) ---------------------------
    print("One-shot result (the paper's §2 table):")
    print(engine.evaluate(QUERY).to_text())
    print()

    # -- the compilation pipeline the paper describes ------------------------
    print(engine.explain(QUERY))
    print()

    # -- incremental view -----------------------------------------------------
    view = engine.register(QUERY)
    view.on_change(lambda delta: print(f"  view delta: {delta}"))

    print("Adding a third-level reply (lang='en'):")
    comment4 = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
    graph.add_edge(comment3, comment4, "REPLY")

    print("Changing comment 3's language to 'de' (filters two threads):")
    graph.set_vertex_property(comment3, "lang", "de")

    print("Deleting the 2→3 reply edge (paths die atomically):")
    graph.remove_edge(reply_2_3)

    print()
    print("Final view contents:")
    print(view.result_table().to_text())

    # the IVM guarantee: view == full recomputation, always
    assert view.multiset() == engine.evaluate(QUERY).multiset()
    print("\nview ≡ full recomputation ✓")


if __name__ == "__main__":
    main()
