"""Live social-network dashboards over an update stream.

The paper's motivating domain (LDBC SNB-style): a feed of posts and
threaded comments.  Several "dashboard" views stay continuously fresh while
a simulated user population comments, likes and edits — no query is ever
re-run.

Run:  python examples/social_feed.py
"""

from repro import QueryEngine
from repro.workloads import social

DASHBOARDS = {
    "hot threads (≥3 replies)": (
        "MATCH (p:Post)-[:REPLY*]->(c:Comm) "
        "WITH p, count(c) AS replies WHERE replies >= 3 "
        "RETURN p, replies"
    ),
    "same-language threads (paper query)": social.RUNNING_EXAMPLE_QUERY,
    "most-liked posts (≥2 likes)": (
        "MATCH (fan:Person)-[:LIKES]->(post:Post) "
        "WITH post, count(fan) AS fans WHERE fans >= 2 "
        "RETURN post, fans"
    ),
    "polyglot authors": (
        "MATCH (a:Person)<-[:HAS_CREATOR]-(post:Post) "
        "WITH a, count(DISTINCT post.lang) AS langs WHERE langs >= 2 "
        "RETURN a, langs"
    ),
}


def main() -> None:
    net = social.generate_social(
        persons=15, posts_per_person=2, comments_per_post=4, seed=99
    )
    engine = QueryEngine(net.graph)
    print(f"generated network: {net.graph.stats()}\n")

    views = {}
    changes = {name: 0 for name in DASHBOARDS}
    for name, query in DASHBOARDS.items():
        views[name] = engine.register(query)

        def count(delta, name=name):
            changes[name] += len(delta)

        views[name].on_change(count)
        print(f"registered: {name:40s} ({len(views[name].rows())} rows)")

    print("\napplying 300 live updates...\n")
    mix: dict[str, int] = {}
    for kind in social.update_stream(net, 300, seed=123):
        mix[kind] = mix.get(kind, 0) + 1

    print(f"update mix: {mix}\n")
    for name, view in views.items():
        print(f"== {name} — {len(view.rows())} rows, {changes[name]} row-changes ==")
        print(view.result_table().to_text(limit=5))
        print()
        # every dashboard is still exactly what a full re-query would return
        assert view.multiset() == engine.evaluate(DASHBOARDS[name]).multiset()

    print("all dashboards ≡ full recomputation ✓")


if __name__ == "__main__":
    main()
