"""Continuous well-formedness validation of a railway model.

The Train Benchmark scenario (paper ref [30]): a railway model must satisfy
six structural constraints; editing tools inject faults, repairs fix them,
and the validator — here, six incremental views — reports violations with
low latency after every change.

Run:  python examples/train_validation.py
"""

import random
import time

from repro import QueryEngine
from repro.workloads import trainbenchmark as tb


def main() -> None:
    model = tb.generate_railway(routes=20, seed=2024)
    engine = QueryEngine(model.graph)
    print(f"railway model: {model.graph.stats()}\n")

    views = {}
    start = time.perf_counter()
    for name, query in tb.QUERIES.items():
        views[name] = engine.register(query)
    elapsed = time.perf_counter() - start
    print(f"batch validation (view registration) took {elapsed * 1e3:.1f}ms:")
    for name, view in views.items():
        print(f"  {name:>20}: {len(view.rows()):3d} violations")

    rng = random.Random(7)

    print("\n-- inject phase: editing tools break things ------------------")
    start = time.perf_counter()
    for name in tb.QUERIES:
        tb.inject(model, name, 2, rng)
    elapsed = time.perf_counter() - start
    print(f"12 faults injected; views refreshed in {elapsed * 1e3:.1f}ms total:")
    for name, view in views.items():
        print(f"  {name:>20}: {len(view.rows()):3d} violations")

    print("\n-- repair phase: fix everything the validator reports ---------")
    start = time.perf_counter()
    for name, view in views.items():
        while view.rows():
            fixed = tb.repair(model, name, view.rows(), len(view.rows()), rng)
            if fixed == 0:
                break
    elapsed = time.perf_counter() - start
    print(f"repairs applied in {elapsed * 1e3:.1f}ms total:")
    for name, view in views.items():
        print(f"  {name:>20}: {len(view.rows()):3d} violations")

    print("\ncross-check against full recomputation:")
    for name, query in tb.QUERIES.items():
        assert views[name].multiset() == engine.evaluate(query).multiset()
        print(f"  {name:>20}: ✓")


if __name__ == "__main__":
    main()
