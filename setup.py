"""Offline-friendly shim: `python setup.py develop` when pip's isolated
build is unavailable.  Configuration lives in pyproject.toml."""

from setuptools import setup

setup()
