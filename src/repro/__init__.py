"""repro — Incremental View Maintenance for Property Graph Queries.

A faithful, self-contained Python reproduction of

    Gábor Szárnyas, "Incremental View Maintenance for Property Graph
    Queries", SIGMOD 2018 (SRC), arXiv:1712.04108,

comprising a property graph store, an openCypher front end, the paper's
GRA → NRA → FRA compilation pipeline with schema inference, a Rete-style
incremental maintenance engine with atomic paths, a full-recomputation
baseline, and the workloads/benchmarks used to evaluate them.

Quick start
-----------
>>> from repro import PropertyGraph, QueryEngine
>>> graph = PropertyGraph()
>>> engine = QueryEngine(graph)
>>> post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
>>> comment = graph.add_vertex(labels=["Comm"], properties={"lang": "en"})
>>> _ = graph.add_edge(post, comment, "REPLY")
>>> view = engine.register(
...     "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) "
...     "WHERE p.lang = c.lang RETURN p, t"
... )
>>> len(view.rows())
1
"""

from .api import QueryEngine
from .compiler.pipeline import CompiledQuery, compile_query
from .errors import (
    CypherSemanticError,
    CypherSyntaxError,
    EvaluationError,
    GraphError,
    ReproError,
    UnsupportedFeatureError,
    UnsupportedForIncrementalError,
)
from .eval.results import ResultTable
from .graph.graph import PropertyGraph, graph_from_dicts
from .graph.persistence import DurableGraph
from .graph.transactions import Transaction
from .graph.values import ListValue, MapValue, PathValue
from .rete.engine import IncrementalEngine, View

__version__ = "0.1.0"

__all__ = [
    "PropertyGraph",
    "graph_from_dicts",
    "DurableGraph",
    "Transaction",
    "QueryEngine",
    "IncrementalEngine",
    "View",
    "ResultTable",
    "CompiledQuery",
    "compile_query",
    "ListValue",
    "MapValue",
    "PathValue",
    "ReproError",
    "GraphError",
    "CypherSyntaxError",
    "CypherSemanticError",
    "EvaluationError",
    "UnsupportedFeatureError",
    "UnsupportedForIncrementalError",
    "__version__",
]
