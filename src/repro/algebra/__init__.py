"""Relational algebra stages (GRA / NRA / FRA), expressions, and schemas."""

from . import ops
from .expressions import (
    AGGREGATE_NAMES,
    AggregateSpec,
    EvalContext,
    compile_expr,
    contains_aggregate,
    evaluate,
    is_aggregate_call,
)
from .fra import check_incremental_fragment, validate_fra
from .gra import validate_gra
from .nra import validate_nra
from .printer import format_compact, format_plan
from .schema import EMPTY_SCHEMA, AttrKind, Attribute, Schema

__all__ = [
    "ops",
    "Schema",
    "Attribute",
    "AttrKind",
    "EMPTY_SCHEMA",
    "compile_expr",
    "evaluate",
    "EvalContext",
    "AggregateSpec",
    "AGGREGATE_NAMES",
    "contains_aggregate",
    "is_aggregate_call",
    "validate_gra",
    "validate_nra",
    "validate_fra",
    "check_incremental_fragment",
    "format_plan",
    "format_compact",
]
