"""Scalar expression compilation and evaluation over flat rows.

FRA expressions are Cypher AST expression trees whose :class:`Variable`
nodes name attributes of the operator's input :class:`~.schema.Schema`
(including pushed-down dotted attributes like ``p.lang`` — the paper's
``{lang → pL}`` columns).  After the compiler's pushdown pass, evaluating an
expression needs **no graph access**: everything an expression can observe
is already a column of the row.  This is exactly what makes the same
expression code usable both by the one-shot interpreter and by the
incremental Rete nodes.

Expressions are compiled to closures once per operator, then invoked per
row.  All predicate results follow openCypher's ternary (three-valued)
logic; ``WHERE`` keeps a row only when the predicate is exactly ``True``.

Aggregate functions live in their own registry (:data:`AGGREGATES`) with
*incremental* insert/remove state machines so the Rete aggregation node can
maintain them under deletions (Gupta–Mumick style counting).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..cypher import ast
from ..errors import CompilerError, EvaluationError
from ..graph.values import (
    ListValue,
    MapValue,
    PathValue,
    cypher_compare,
    cypher_eq,
    freeze_value,
    order_key,
)
from .schema import Schema


@dataclass(slots=True)
class EvalContext:
    """Per-evaluation environment: query parameters."""

    parameters: Mapping[str, Any] = field(default_factory=dict)


CompiledExpr = Callable[[tuple, EvalContext], Any]


class EntityResolver:
    """Graph access for evaluating *nested-stage* (GRA/NRA) expressions.

    FRA expressions never need one — the flattening step (paper §4 step 3)
    turns every entity dereference into a column.  The one-shot interpreter
    provides a resolver so the *unflattened* stages can also be evaluated,
    which the stage-equivalence tests use to check that each lowering step
    preserves semantics.
    """

    def vertex_property(self, vertex_id: int, key: str) -> Any:
        raise NotImplementedError

    def edge_property(self, edge_id: int, key: str) -> Any:
        raise NotImplementedError

    def vertex_labels(self, vertex_id: int) -> Any:
        raise NotImplementedError

    def edge_type(self, edge_id: int) -> Any:
        raise NotImplementedError

    def vertex_properties(self, vertex_id: int) -> Any:
        raise NotImplementedError

    def edge_properties(self, edge_id: int) -> Any:
        raise NotImplementedError

#: Names treated as aggregate functions (extracted by the compiler before
#: expression compilation; seeing one here is a compiler bug).
AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max", "collect"})


def is_aggregate_call(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.CountStar) or (
        isinstance(expr, ast.FunctionCall) and expr.name in AGGREGATE_NAMES
    )


def contains_aggregate(expr: ast.Expr) -> bool:
    return any(is_aggregate_call(node) for node in ast.walk(expr))


# ---------------------------------------------------------------------------
# three-valued logic helpers
# ---------------------------------------------------------------------------


def ternary_and(values: list[Any]) -> Any:
    if any(v is False for v in values):
        return False
    if any(v is None for v in values):
        return None
    return True

def ternary_or(values: list[Any]) -> Any:
    if any(v is True for v in values):
        return True
    if any(v is None for v in values):
        return None
    return False

def ternary_xor(values: list[Any]) -> Any:
    if any(v is None for v in values):
        return None
    result = False
    for v in values:
        result ^= bool(v)
    return result

def ternary_not(value: Any) -> Any:
    if value is None:
        return None
    return not value


def _as_bool(value: Any, what: str) -> Any:
    if value is None or isinstance(value, bool):
        return value
    raise EvaluationError(f"{what} must be a boolean, got {value!r}")


# ---------------------------------------------------------------------------
# arithmetic
# ---------------------------------------------------------------------------


def _nan_guard(value: float) -> Any:
    """Map NaN to null: NaN breaks hashing/equality in counting multisets."""
    if isinstance(value, float) and value != value:
        return None
    return value


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def arith_add(a: Any, b: Any) -> Any:
    if a is None or b is None:
        return None
    if _is_number(a) and _is_number(b):
        return _nan_guard(a + b)
    if isinstance(a, str) or isinstance(b, str):
        return value_to_string(a) + value_to_string(b)
    if isinstance(a, ListValue) and isinstance(b, ListValue):
        return ListValue(tuple(a) + tuple(b))
    if isinstance(a, ListValue):
        return ListValue(tuple(a) + (b,))
    if isinstance(b, ListValue):
        return ListValue((a,) + tuple(b))
    raise EvaluationError(f"cannot add {a!r} and {b!r}")


def _trunc_div(a: Any, b: Any) -> Any:
    if b == 0:
        raise EvaluationError("division by zero")
    if isinstance(a, int) and isinstance(b, int):
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return _nan_guard(a / b)


def _java_mod(a: Any, b: Any) -> Any:
    if b == 0:
        raise EvaluationError("division by zero")
    if isinstance(a, int) and isinstance(b, int):
        return a - _trunc_div(a, b) * b
    return _nan_guard(math.fmod(a, b))


def arith_binary(op: str, a: Any, b: Any) -> Any:
    if op == "+":
        return arith_add(a, b)
    if a is None or b is None:
        return None
    if not (_is_number(a) and _is_number(b)):
        raise EvaluationError(f"operator {op!r} requires numbers, got {a!r}, {b!r}")
    if op == "-":
        return _nan_guard(a - b)
    if op == "*":
        return _nan_guard(a * b)
    if op == "/":
        return _trunc_div(a, b)
    if op == "%":
        return _java_mod(a, b)
    if op == "^":
        try:
            return _nan_guard(float(a) ** float(b))
        except OverflowError:
            raise EvaluationError("numeric overflow in ^") from None
    raise CompilerError(f"unknown arithmetic operator {op!r}")


def compare_with_op(op: str, a: Any, b: Any) -> Any:
    if op == "=":
        return cypher_eq(a, b)
    if op == "<>":
        return ternary_not(cypher_eq(a, b))
    c = cypher_compare(a, b)
    if c is None:
        return None
    if op == "<":
        return c < 0
    if op == ">":
        return c > 0
    if op == "<=":
        return c <= 0
    if op == ">=":
        return c >= 0
    raise CompilerError(f"unknown comparison operator {op!r}")


def cypher_in(item: Any, container: Any) -> Any:
    if container is None:
        return None
    if isinstance(container, PathValue):
        elements: tuple = container.vertices
    elif isinstance(container, ListValue):
        elements = tuple(container)
    else:
        raise EvaluationError(f"IN requires a list, got {container!r}")
    unknown = False
    for element in elements:
        r = cypher_eq(item, element)
        if r is True:
            return True
        if r is None:
            unknown = True
    # ``x IN []`` is false even for null x; otherwise null x is unknown.
    if item is None and elements:
        return None
    return None if unknown else False


def value_to_string(value: Any) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return f"{value:.1f}"
    return str(value)


# ---------------------------------------------------------------------------
# scalar function library (pure functions; no graph access)
# ---------------------------------------------------------------------------


def _fn_coalesce(args: list[Any]) -> Any:
    for a in args:
        if a is not None:
            return a
    return None


def _fn_to_integer(args: list[Any]) -> Any:
    (x,) = args
    if x is None:
        return None
    if isinstance(x, bool):
        return None
    if isinstance(x, int):
        return x
    if isinstance(x, float):
        return int(x)
    if isinstance(x, str):
        try:
            return int(x.strip())
        except ValueError:
            try:
                return int(float(x.strip()))
            except ValueError:
                return None
    return None


def _fn_to_float(args: list[Any]) -> Any:
    (x,) = args
    if x is None or isinstance(x, bool):
        return None
    if isinstance(x, (int, float)):
        return float(x)
    if isinstance(x, str):
        try:
            return _nan_guard(float(x.strip()))
        except ValueError:
            return None
    return None


def _fn_to_string(args: list[Any]) -> Any:
    (x,) = args
    if x is None:
        return None
    return value_to_string(x)


def _fn_to_boolean(args: list[Any]) -> Any:
    (x,) = args
    if x is None:
        return None
    if isinstance(x, bool):
        return x
    if isinstance(x, str):
        lowered = x.strip().lower()
        if lowered == "true":
            return True
        if lowered == "false":
            return False
    return None


def _fn_size(args: list[Any]) -> Any:
    (x,) = args
    if x is None:
        return None
    if isinstance(x, (str, ListValue)):
        return len(x)
    raise EvaluationError(f"size() requires a list or string, got {x!r}")


def _fn_length(args: list[Any]) -> Any:
    (x,) = args
    if x is None:
        return None
    if isinstance(x, PathValue):
        return len(x)
    if isinstance(x, (ListValue, str)):
        return len(x)
    raise EvaluationError(f"length() requires a path, got {x!r}")


def _fn_nodes(args: list[Any]) -> Any:
    (p,) = args
    if p is None:
        return None
    if not isinstance(p, PathValue):
        raise EvaluationError(f"nodes() requires a path, got {p!r}")
    return ListValue(p.vertices)


def _fn_relationships(args: list[Any]) -> Any:
    (p,) = args
    if p is None:
        return None
    if not isinstance(p, PathValue):
        raise EvaluationError(f"relationships() requires a path, got {p!r}")
    return ListValue(p.edges)


def _require_list(x: Any, fn: str) -> ListValue:
    if isinstance(x, ListValue):
        return x
    raise EvaluationError(f"{fn}() requires a list, got {x!r}")


def _fn_head(args: list[Any]) -> Any:
    (x,) = args
    if x is None:
        return None
    xs = _require_list(x, "head")
    return xs[0] if xs else None


def _fn_last(args: list[Any]) -> Any:
    (x,) = args
    if x is None:
        return None
    xs = _require_list(x, "last")
    return xs[-1] if xs else None


def _fn_tail(args: list[Any]) -> Any:
    (x,) = args
    if x is None:
        return None
    xs = _require_list(x, "tail")
    return ListValue(tuple(xs)[1:])


def _fn_reverse(args: list[Any]) -> Any:
    (x,) = args
    if x is None:
        return None
    if isinstance(x, str):
        return x[::-1]
    xs = _require_list(x, "reverse")
    return ListValue(tuple(xs)[::-1])


def _fn_range(args: list[Any]) -> Any:
    if any(a is None for a in args):
        return None
    start, end = args[0], args[1]
    step = args[2] if len(args) > 2 else 1
    if not all(isinstance(v, int) and not isinstance(v, bool) for v in (start, end, step)):
        raise EvaluationError("range() requires integer arguments")
    if step == 0:
        raise EvaluationError("range() step must not be zero")
    out = []
    value = start
    if step > 0:
        while value <= end:
            out.append(value)
            value += step
    else:
        while value >= end:
            out.append(value)
            value += step
    return ListValue(out)


def _numeric_fn(fn: Callable[[float], Any], name: str, integer_preserving: bool = False):
    def wrapper(args: list[Any]) -> Any:
        (x,) = args
        if x is None:
            return None
        if not _is_number(x):
            raise EvaluationError(f"{name}() requires a number, got {x!r}")
        try:
            result = fn(x)
        except ValueError:
            return None
        except OverflowError:
            raise EvaluationError(f"numeric overflow in {name}()") from None
        if integer_preserving and isinstance(x, int) and isinstance(result, float):
            return int(result)
        return _nan_guard(result)

    return wrapper


def _string_fn(fn: Callable[..., Any], name: str, arity: int):
    def wrapper(args: list[Any]) -> Any:
        if any(a is None for a in args):
            return None
        if not isinstance(args[0], str):
            raise EvaluationError(f"{name}() requires a string, got {args[0]!r}")
        return fn(*args)

    return wrapper


def _fn_substring(args: list[Any]) -> Any:
    if any(a is None for a in args):
        return None
    s, start = args[0], args[1]
    if not isinstance(s, str) or not isinstance(start, int):
        raise EvaluationError("substring() requires (string, int[, int])")
    if len(args) > 2:
        length = args[2]
        if not isinstance(length, int):
            raise EvaluationError("substring() length must be an integer")
        return s[start : start + length]
    return s[start:]


def _fn_split(args: list[Any]) -> Any:
    if any(a is None for a in args):
        return None
    s, delim = args
    if not isinstance(s, str) or not isinstance(delim, str):
        raise EvaluationError("split() requires strings")
    return ListValue(s.split(delim))


def _fn_exists(args: list[Any]) -> Any:
    return args[0] is not None


def _fn_keys(args: list[Any]) -> Any:
    (x,) = args
    if x is None:
        return None
    if isinstance(x, MapValue):
        return ListValue(x.keys())
    raise EvaluationError(f"keys() requires a map, got {x!r}")


def _fn_internal_path(args: list[Any]) -> Any:
    """Build a :class:`PathValue` from alternating components.

    Components are vertex ids, edge ids, and sub-paths (from transitive
    segments).  A sub-path following a vertex must start at that vertex
    (the duplicate is dropped); a sub-path in edge position supplies both
    its edges and its interior vertices.  A null component (an OPTIONAL
    MATCH miss) yields a null path.
    """
    if any(a is None for a in args):
        return None
    vertices: list[int] = []
    edges: list[int] = []
    last_was_vertex = False
    for component in args:
        if isinstance(component, PathValue):
            if last_was_vertex:
                if vertices[-1] != component.start:
                    raise EvaluationError("discontinuous path segments")
                vertices.extend(component.vertices[1:])
            else:
                vertices.extend(component.vertices)
            edges.extend(component.edges)
            last_was_vertex = True
        elif last_was_vertex:
            edges.append(component)
            last_was_vertex = False
        else:
            vertices.append(component)
            last_was_vertex = True
    return PathValue(vertices, edges)


def _fn_internal_has_labels(args: list[Any]) -> Any:
    labels_value, required = args
    if labels_value is None:
        return None
    return all(label in tuple(labels_value) for label in tuple(required))


def _fn_internal_disjoint(args: list[Any]) -> Any:
    """True when two id lists share no element (edge-uniqueness checks)."""
    a, b = args
    if a is None or b is None:
        return None
    return not (set(tuple(a)) & set(tuple(b)))


#: name → (min_arity, max_arity, implementation)
FUNCTIONS: dict[str, tuple[int, int, Callable[[list[Any]], Any]]] = {
    "coalesce": (1, 99, _fn_coalesce),
    "tointeger": (1, 1, _fn_to_integer),
    "tofloat": (1, 1, _fn_to_float),
    "tostring": (1, 1, _fn_to_string),
    "toboolean": (1, 1, _fn_to_boolean),
    "size": (1, 1, _fn_size),
    "length": (1, 1, _fn_length),
    "nodes": (1, 1, _fn_nodes),
    "relationships": (1, 1, _fn_relationships),
    "rels": (1, 1, _fn_relationships),
    "head": (1, 1, _fn_head),
    "last": (1, 1, _fn_last),
    "tail": (1, 1, _fn_tail),
    "reverse": (1, 1, _fn_reverse),
    "range": (2, 3, _fn_range),
    "abs": (1, 1, _numeric_fn(abs, "abs")),
    "sign": (1, 1, _numeric_fn(lambda x: (x > 0) - (x < 0), "sign")),
    "ceil": (1, 1, _numeric_fn(math.ceil, "ceil")),
    "floor": (1, 1, _numeric_fn(math.floor, "floor")),
    "round": (1, 1, _numeric_fn(lambda x: float(round(x)), "round")),
    "sqrt": (1, 1, _numeric_fn(math.sqrt, "sqrt")),
    "exp": (1, 1, _numeric_fn(math.exp, "exp")),
    "log": (1, 1, _numeric_fn(math.log, "log")),
    "log10": (1, 1, _numeric_fn(math.log10, "log10")),
    "sin": (1, 1, _numeric_fn(math.sin, "sin")),
    "cos": (1, 1, _numeric_fn(math.cos, "cos")),
    "tan": (1, 1, _numeric_fn(math.tan, "tan")),
    "tolower": (1, 1, _string_fn(str.lower, "toLower", 1)),
    "toupper": (1, 1, _string_fn(str.upper, "toUpper", 1)),
    "trim": (1, 1, _string_fn(str.strip, "trim", 1)),
    "ltrim": (1, 1, _string_fn(str.lstrip, "lTrim", 1)),
    "rtrim": (1, 1, _string_fn(str.rstrip, "rTrim", 1)),
    "replace": (3, 3, _string_fn(str.replace, "replace", 3)),
    "substring": (2, 3, _fn_substring),
    "split": (2, 2, _fn_split),
    "left": (2, 2, _string_fn(lambda s, n: s[:n], "left", 2)),
    "right": (2, 2, _string_fn(lambda s, n: s[len(s) - n :] if n < len(s) else s, "right", 2)),
    "exists": (1, 1, _fn_exists),
    "keys": (1, 1, _fn_keys),
    "_path": (1, 99, _fn_internal_path),
    "_has_labels": (2, 2, _fn_internal_has_labels),
    "_disjoint": (2, 2, _fn_internal_disjoint),
}


# ---------------------------------------------------------------------------
# expression compiler
# ---------------------------------------------------------------------------


def compile_expr(
    expr: ast.Expr, schema: Schema, resolver: EntityResolver | None = None
) -> CompiledExpr:
    """Compile *expr* into a closure evaluated as ``fn(row, ctx)``.

    Variables must name attributes of *schema*; unknown names raise
    :class:`CompilerError` at compile time, never at run time.  With a
    *resolver*, entity dereferences (``p.lang`` on a vertex attribute,
    ``labels()``/``type()``/``properties()``, label predicates) are
    evaluated against the graph — used only for nested-stage (GRA/NRA)
    evaluation; flat (FRA) expressions never need it.
    """
    if isinstance(expr, ast.Literal):
        value = freeze_value(expr.value)
        return lambda row, ctx: value

    if isinstance(expr, ast.Parameter):
        name = expr.name

        def eval_parameter(row: tuple, ctx: EvalContext) -> Any:
            if name not in ctx.parameters:
                raise EvaluationError(f"missing query parameter ${name}")
            return freeze_value(ctx.parameters[name])

        return eval_parameter

    if isinstance(expr, ast.Variable):
        index = schema.index_of(expr.name)
        return lambda row, ctx: row[index]

    if isinstance(expr, ast.Property):
        subject = compile_expr(expr.subject, schema, resolver)
        key = expr.key
        entity_kind = _entity_kind_of(expr.subject, schema)

        if entity_kind is not None and resolver is not None:
            lookup = (
                resolver.vertex_property
                if entity_kind == "vertex"
                else resolver.edge_property
            )

            def eval_entity_property(row: tuple, ctx: EvalContext) -> Any:
                entity = subject(row, ctx)
                if entity is None:
                    return None
                return lookup(entity, key)

            return eval_entity_property

        def eval_property(row: tuple, ctx: EvalContext) -> Any:
            value = subject(row, ctx)
            if value is None:
                return None
            if isinstance(value, MapValue):
                return value.get(key)
            raise EvaluationError(
                f"property access .{key} on non-map value {value!r}; "
                "entity property access must be pushed down by the compiler"
            )

        return eval_property

    if isinstance(expr, ast.ListLiteral):
        items = [compile_expr(item, schema, resolver) for item in expr.items]
        return lambda row, ctx: ListValue(fn(row, ctx) for fn in items)

    if isinstance(expr, ast.MapLiteral):
        entries = [(key, compile_expr(value, schema, resolver)) for key, value in expr.items]
        return lambda row, ctx: MapValue({k: fn(row, ctx) for k, fn in entries})

    if isinstance(expr, ast.Subscript):
        subject = compile_expr(expr.subject, schema, resolver)
        index_fn = compile_expr(expr.index, schema, resolver)

        def eval_subscript(row: tuple, ctx: EvalContext) -> Any:
            container = subject(row, ctx)
            index = index_fn(row, ctx)
            if container is None or index is None:
                return None
            if isinstance(container, ListValue):
                if not isinstance(index, int) or isinstance(index, bool):
                    raise EvaluationError(f"list index must be an integer, got {index!r}")
                if -len(container) <= index < len(container):
                    return container[index]
                return None
            if isinstance(container, MapValue):
                if not isinstance(index, str):
                    raise EvaluationError(f"map key must be a string, got {index!r}")
                return container.get(index)
            raise EvaluationError(f"cannot subscript {container!r}")

        return eval_subscript

    if isinstance(expr, ast.Slice):
        subject = compile_expr(expr.subject, schema, resolver)
        low_fn = compile_expr(expr.low, schema, resolver) if expr.low is not None else None
        high_fn = compile_expr(expr.high, schema, resolver) if expr.high is not None else None

        def eval_slice(row: tuple, ctx: EvalContext) -> Any:
            container = subject(row, ctx)
            if container is None:
                return None
            if not isinstance(container, ListValue):
                raise EvaluationError(f"cannot slice {container!r}")
            low = low_fn(row, ctx) if low_fn else 0
            high = high_fn(row, ctx) if high_fn else len(container)
            if low is None or high is None:
                return None
            return ListValue(tuple(container)[low:high])

        return eval_slice

    if isinstance(expr, ast.FunctionCall):
        if expr.name in AGGREGATE_NAMES:
            raise CompilerError(
                f"aggregate {expr.name}() must be extracted before compilation"
            )
        if (
            resolver is not None
            and expr.name in ("labels", "type", "properties")
            and len(expr.args) == 1
        ):
            entity_kind = _entity_kind_of(expr.args[0], schema)
            if entity_kind is not None:
                subject = compile_expr(expr.args[0], schema, resolver)
                if expr.name == "labels":
                    lookup = resolver.vertex_labels
                elif expr.name == "type":
                    lookup = resolver.edge_type
                elif entity_kind == "vertex":
                    lookup = resolver.vertex_properties
                else:
                    lookup = resolver.edge_properties

                def eval_meta(row: tuple, ctx: EvalContext) -> Any:
                    entity = subject(row, ctx)
                    if entity is None:
                        return None
                    return lookup(entity)

                return eval_meta
        if expr.name not in FUNCTIONS:
            raise CompilerError(f"unknown function {expr.name}()")
        low, high, impl = FUNCTIONS[expr.name]
        if not (low <= len(expr.args) <= high):
            raise CompilerError(
                f"{expr.name}() takes {low}"
                + (f"..{high}" if high != low else "")
                + f" arguments, got {len(expr.args)}"
            )
        arg_fns = [compile_expr(a, schema, resolver) for a in expr.args]
        return lambda row, ctx: impl([fn(row, ctx) for fn in arg_fns])

    if isinstance(expr, ast.CountStar):
        raise CompilerError("count(*) must be extracted before compilation")

    if isinstance(expr, ast.Not):
        operand = compile_expr(expr.operand, schema, resolver)
        return lambda row, ctx: ternary_not(
            _as_bool(operand(row, ctx), "argument of NOT")
        )

    if isinstance(expr, ast.BooleanOp):
        operand_fns = [compile_expr(o, schema, resolver) for o in expr.operands]
        combiner = {"AND": ternary_and, "OR": ternary_or, "XOR": ternary_xor}[expr.op]
        op_name = expr.op

        def eval_boolean(row: tuple, ctx: EvalContext) -> Any:
            values = [
                _as_bool(fn(row, ctx), f"operand of {op_name}") for fn in operand_fns
            ]
            return combiner(values)

        return eval_boolean

    if isinstance(expr, ast.Comparison):
        operand_fns = [compile_expr(o, schema, resolver) for o in expr.operands]
        ops = expr.ops

        def eval_comparison(row: tuple, ctx: EvalContext) -> Any:
            values = [fn(row, ctx) for fn in operand_fns]
            results = [
                compare_with_op(op, values[i], values[i + 1])
                for i, op in enumerate(ops)
            ]
            return ternary_and(results)

        return eval_comparison

    if isinstance(expr, ast.Arithmetic):
        left = compile_expr(expr.left, schema, resolver)
        right = compile_expr(expr.right, schema, resolver)
        op = expr.op
        return lambda row, ctx: arith_binary(op, left(row, ctx), right(row, ctx))

    if isinstance(expr, ast.UnaryMinus):
        operand = compile_expr(expr.operand, schema, resolver)

        def eval_neg(row: tuple, ctx: EvalContext) -> Any:
            value = operand(row, ctx)
            if value is None:
                return None
            if not _is_number(value):
                raise EvaluationError(f"unary minus requires a number, got {value!r}")
            return -value

        return eval_neg

    if isinstance(expr, ast.In):
        item = compile_expr(expr.item, schema, resolver)
        container = compile_expr(expr.container, schema, resolver)
        return lambda row, ctx: cypher_in(item(row, ctx), container(row, ctx))

    if isinstance(expr, ast.StringPredicate):
        subject = compile_expr(expr.subject, schema, resolver)
        pattern = compile_expr(expr.pattern, schema, resolver)
        kind = expr.kind

        def eval_string_pred(row: tuple, ctx: EvalContext) -> Any:
            s = subject(row, ctx)
            p = pattern(row, ctx)
            if not isinstance(s, str) or not isinstance(p, str):
                return None
            if kind == "STARTS WITH":
                return s.startswith(p)
            if kind == "ENDS WITH":
                return s.endswith(p)
            return p in s

        return eval_string_pred

    if isinstance(expr, ast.IsNull):
        operand = compile_expr(expr.operand, schema, resolver)
        if expr.negated:
            return lambda row, ctx: operand(row, ctx) is not None
        return lambda row, ctx: operand(row, ctx) is None

    if isinstance(expr, ast.CaseExpr):
        when_fns = [
            (compile_expr(c, schema, resolver), compile_expr(v, schema, resolver)) for c, v in expr.whens
        ]
        default_fn = (
            compile_expr(expr.default, schema, resolver) if expr.default is not None else None
        )

        def eval_case(row: tuple, ctx: EvalContext) -> Any:
            for condition, value in when_fns:
                if condition(row, ctx) is True:
                    return value(row, ctx)
            return default_fn(row, ctx) if default_fn else None

        return eval_case

    if isinstance(expr, ast.HasLabel):
        if resolver is not None and _entity_kind_of(expr.subject, schema) == "vertex":
            subject = compile_expr(expr.subject, schema, resolver)
            required = expr.labels

            def eval_has_label(row: tuple, ctx: EvalContext) -> Any:
                entity = subject(row, ctx)
                if entity is None:
                    return None
                labels = tuple(resolver.vertex_labels(entity))
                return all(label in labels for label in required)

            return eval_has_label
        raise CompilerError(
            "label predicates must be rewritten to _has_labels by the compiler"
        )

    raise CompilerError(f"cannot compile expression {type(expr).__name__}")


def _entity_kind_of(expr: ast.Expr, schema: Schema) -> str | None:
    """'vertex' / 'edge' when *expr* is a variable of that kind, else None."""
    from .schema import AttrKind

    if isinstance(expr, ast.Variable) and expr.name in schema:
        kind = schema.kind_of(expr.name)
        if kind is AttrKind.VERTEX:
            return "vertex"
        if kind is AttrKind.EDGE:
            return "edge"
    return None


def evaluate(
    expr: ast.Expr,
    schema: Schema,
    row: tuple,
    parameters: Mapping[str, Any] | None = None,
) -> Any:
    """One-off evaluation convenience (tests, small paths)."""
    return compile_expr(expr, schema, resolver)(row, EvalContext(parameters or {}))


# ---------------------------------------------------------------------------
# aggregates (incremental state machines)
# ---------------------------------------------------------------------------


class Aggregator:
    """Incremental aggregate over a bag of values.

    ``insert``/``remove`` take the value and a positive multiplicity;
    ``result`` is pure.  ``count(*)`` aggregators receive ``_ROW`` markers.
    """

    def insert(self, value: Any, multiplicity: int) -> None:
        raise NotImplementedError

    def remove(self, value: Any, multiplicity: int) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class CountAggregator(Aggregator):
    """count(expr) — counts non-null values; count(*) counts rows."""

    def __init__(self) -> None:
        self.total = 0

    def insert(self, value: Any, multiplicity: int) -> None:
        if value is not None:
            self.total += multiplicity

    def remove(self, value: Any, multiplicity: int) -> None:
        if value is not None:
            self.total -= multiplicity

    def result(self) -> Any:
        return self.total


class SumAggregator(Aggregator):
    def __init__(self) -> None:
        self.total: int | float = 0
        self.count = 0

    def insert(self, value: Any, multiplicity: int) -> None:
        if value is None:
            return
        if not _is_number(value):
            raise EvaluationError(f"sum() requires numbers, got {value!r}")
        self.total += value * multiplicity
        self.count += multiplicity

    def remove(self, value: Any, multiplicity: int) -> None:
        if value is None:
            return
        self.total -= value * multiplicity
        self.count -= multiplicity
        if self.count == 0:
            self.total = 0  # reset float drift on empty

    def result(self) -> Any:
        return self.total


class AvgAggregator(SumAggregator):
    def result(self) -> Any:
        if self.count == 0:
            return None
        return self.total / self.count


class _BagAggregator(Aggregator):
    """Base for aggregates that need the full value bag (min/max/collect)."""

    def __init__(self) -> None:
        self.bag: dict[Any, int] = {}

    def insert(self, value: Any, multiplicity: int) -> None:
        if value is None:
            return
        self.bag[value] = self.bag.get(value, 0) + multiplicity

    def remove(self, value: Any, multiplicity: int) -> None:
        if value is None:
            return
        remaining = self.bag.get(value, 0) - multiplicity
        if remaining > 0:
            self.bag[value] = remaining
        elif remaining == 0:
            self.bag.pop(value, None)
        else:
            raise EvaluationError(f"aggregate multiset underflow for {value!r}")


class MinAggregator(_BagAggregator):
    def result(self) -> Any:
        if not self.bag:
            return None
        return min(self.bag, key=order_key)


class MaxAggregator(_BagAggregator):
    def result(self) -> Any:
        if not self.bag:
            return None
        return max(self.bag, key=order_key)


class CollectAggregator(_BagAggregator):
    """collect(expr) → list.

    The paper's model is bag-based (ORD dropped except for paths), so the
    collected list has no inherent order; we emit a canonical order (sorted
    by the global value ordering) for reproducibility.
    """

    def result(self) -> Any:
        out: list[Any] = []
        for value in sorted(self.bag, key=order_key):
            out.extend([value] * self.bag[value])
        return ListValue(out)


class DistinctAggregator(Aggregator):
    """Wraps another aggregator, feeding each distinct value once."""

    def __init__(self, inner: Aggregator) -> None:
        self.inner = inner
        self.seen: dict[Any, int] = {}

    def insert(self, value: Any, multiplicity: int) -> None:
        if value is None:
            return
        before = self.seen.get(value, 0)
        self.seen[value] = before + multiplicity
        if before == 0:
            self.inner.insert(value, 1)

    def remove(self, value: Any, multiplicity: int) -> None:
        if value is None:
            return
        remaining = self.seen.get(value, 0) - multiplicity
        if remaining < 0:
            raise EvaluationError(f"distinct aggregate underflow for {value!r}")
        if remaining == 0:
            self.seen.pop(value, None)
            self.inner.remove(value, 1)
        else:
            self.seen[value] = remaining

    def result(self) -> Any:
        return self.inner.result()


AGGREGATES: dict[str, Callable[[], Aggregator]] = {
    "count": CountAggregator,
    "sum": SumAggregator,
    "avg": AvgAggregator,
    "min": MinAggregator,
    "max": MaxAggregator,
    "collect": CollectAggregator,
}


@dataclass(frozen=True, slots=True)
class AggregateSpec:
    """A single aggregate column of an Aggregate operator.

    ``argument`` is ``None`` for ``count(*)`` (every row counts).
    """

    function: str
    argument: ast.Expr | None
    distinct: bool
    output: str

    def make_aggregator(self) -> Aggregator:
        factory = AGGREGATES.get(self.function)
        if factory is None:
            raise CompilerError(f"unknown aggregate {self.function}()")
        aggregator = factory()
        if self.distinct:
            aggregator = DistinctAggregator(aggregator)
        return aggregator
