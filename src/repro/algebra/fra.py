"""FRA — flat relational algebra (paper §4, compilation step 3).

The flattening step removes every µ by *pushing down* the required
properties into the © and ⇑ base operators (the paper's ``{lang → pL}``
annotations, here kept as dotted attribute names like ``p.lang``).  After
flattening:

* no :class:`~.ops.PropertyUnnest` remains,
* no expression dereferences an entity (``Property`` on a VERTEX/EDGE
  attribute) — everything expressions observe is a column,
* the plan is directly executable both by the pull-based interpreter and by
  the Rete network builder.

``validate_fra`` enforces these invariants; the incremental fragment check
(:func:`check_incremental_fragment`) additionally rejects the ordering
operators, per the paper's central claim about the maintainable fragment.
"""

from __future__ import annotations

from ..cypher import ast
from ..errors import CompilerError, UnsupportedForIncrementalError
from . import ops
from .schema import AttrKind

FRA_OPERATORS = (
    ops.Unit,
    ops.GetVertices,
    ops.GetEdges,
    ops.Select,
    ops.Project,
    ops.Dedup,
    ops.Unwind,
    ops.Aggregate,
    ops.Join,
    ops.AntiJoin,
    ops.LeftOuterJoin,
    ops.Union,
    ops.TransitiveJoin,
    ops.Sort,
    ops.Skip,
    ops.Limit,
)

#: Operators excluded from the paper's incrementally maintainable fragment:
#: anything that depends on row ordering (ORD).
ORDERING_OPERATORS = (ops.Sort, ops.Skip, ops.Limit)


def _expressions_of(op: ops.Operator) -> list[ast.Expr]:
    if isinstance(op, ops.Select):
        return [op.predicate]
    if isinstance(op, ops.Project):
        return [e for _, e in op.items]
    if isinstance(op, ops.Unwind):
        return [op.expression]
    if isinstance(op, ops.Aggregate):
        exprs = [e for _, e in op.keys]
        exprs += [a.argument for a in op.aggregates if a.argument is not None]
        return exprs
    if isinstance(op, ops.Sort):
        return [e for e, _ in op.items]
    if isinstance(op, (ops.Skip, ops.Limit)):
        return [op.count]
    return []


def validate_fra(plan: ops.Operator) -> None:
    """Raise :class:`CompilerError` if *plan* violates the FRA invariants."""
    for op in plan.walk():
        if not isinstance(op, FRA_OPERATORS):
            raise CompilerError(f"{type(op).__name__} is not an FRA operator")
        schema = op.children[0].schema if op.children else None
        for expr in _expressions_of(op):
            for node in ast.walk(expr):
                if (
                    isinstance(node, ast.Property)
                    and isinstance(node.subject, ast.Variable)
                    and schema is not None
                    and node.subject.name in schema
                    and schema.kind_of(node.subject.name)
                    in (AttrKind.VERTEX, AttrKind.EDGE)
                ):
                    raise CompilerError(
                        f"entity property access {node.subject.name}.{node.key} "
                        "survived flattening (pushdown bug)"
                    )
                if isinstance(node, ast.HasLabel):
                    raise CompilerError(
                        "label predicate survived flattening (pushdown bug)"
                    )


def check_incremental_fragment(plan: ops.Operator) -> None:
    """Reject plans outside the paper's incrementally maintainable fragment.

    The fragment allows bags and atomic paths but no ordering: Sort / Skip /
    Limit (and therefore top-k) raise
    :class:`~repro.errors.UnsupportedForIncrementalError` — exactly the
    trade-off the paper states in §4 ("It is also not possible to specify
    top-k style queries").
    """
    for op in plan.walk():
        if isinstance(op, ORDERING_OPERATORS):
            raise UnsupportedForIncrementalError(
                f"{type(op).__name__} requires ordering (ORD), which the "
                "incrementally maintainable openCypher fragment excludes; "
                "evaluate the query one-shot instead"
            )
