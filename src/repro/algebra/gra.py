"""GRA — graph relational algebra (paper §2, compilation step 1).

The GRA stage is the direct image of the query: patterns appear as
``get-vertices`` (©) chains of ``expand-out`` (↑) operators, and property
access still happens *inside* expressions (``p.lang``), not as columns.
Legal operators: © ↑ σ π δ ω γ ⋈ ⟕ ▷ ∪ sort/skip/limit.

``validate_gra`` asserts a tree stays inside this vocabulary — useful both
as compiler self-checks and as executable documentation of the paper's
pipeline stages.
"""

from __future__ import annotations

from ..errors import CompilerError
from . import ops

GRA_OPERATORS = (
    ops.Unit,
    ops.GetVertices,
    ops.ExpandOut,
    ops.Select,
    ops.Project,
    ops.Dedup,
    ops.Unwind,
    ops.Aggregate,
    ops.Join,
    ops.AntiJoin,
    ops.LeftOuterJoin,
    ops.Union,
    ops.Sort,
    ops.Skip,
    ops.Limit,
)


def validate_gra(plan: ops.Operator) -> None:
    """Raise :class:`CompilerError` if *plan* uses non-GRA operators."""
    for op in plan.walk():
        if not isinstance(op, GRA_OPERATORS):
            raise CompilerError(
                f"{type(op).__name__} is not a GRA operator (expand not yet "
                "eliminated?)"
            )
        if isinstance(op, ops.GetVertices) and op.projections:
            raise CompilerError(
                "GRA base relations carry no pushed-down projections; "
                "those appear only after NRA→FRA flattening"
            )
