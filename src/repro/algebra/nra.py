"""NRA — nested relational algebra (paper §4, compilation step 2).

After expand elimination, no ↑ remains: single-hop expands became natural
joins with ``get-edges`` (⇑) base relations, transitive expands became
transitive joins (⋈*), and every entity property an expression needs is
exposed by an explicit attribute-directed unnest µ (the paper's modified
unnest, e.g. ``µ_{c.lang→cL}``).

This is the key stage for incrementality: every operator here has a known
counting-based maintenance rule, whereas ↑ does not (paper: "expand
operators cannot be maintained incrementally").
"""

from __future__ import annotations

from ..cypher import ast
from ..errors import CompilerError
from . import ops
from .expressions import contains_aggregate

NRA_OPERATORS = (
    ops.Unit,
    ops.GetVertices,
    ops.GetEdges,
    ops.Select,
    ops.Project,
    ops.Dedup,
    ops.Unwind,
    ops.PropertyUnnest,
    ops.Aggregate,
    ops.Join,
    ops.AntiJoin,
    ops.LeftOuterJoin,
    ops.Union,
    ops.TransitiveJoin,
    ops.Sort,
    ops.Skip,
    ops.Limit,
)


def validate_nra(plan: ops.Operator) -> None:
    """Raise :class:`CompilerError` if *plan* is not valid NRA.

    Checks the vocabulary and that base relations are still projection-free
    (property access flows through µ at this stage).
    """
    for op in plan.walk():
        if not isinstance(op, NRA_OPERATORS):
            raise CompilerError(f"{type(op).__name__} is not an NRA operator")
        if isinstance(op, (ops.GetVertices, ops.GetEdges)) and op.projections:
            raise CompilerError(
                "NRA base relations must not carry projections; "
                "pushdown happens in the NRA→FRA flattening step"
            )


def collect_unnests(plan: ops.Operator) -> list[ops.PropertyUnnest]:
    """All µ operators in the tree (pre-order)."""
    return [op for op in plan.walk() if isinstance(op, ops.PropertyUnnest)]


def entity_property_accesses(expr: ast.Expr) -> set[tuple[str, str]]:
    """(variable, key) pairs accessed as ``variable.key`` in *expr*."""
    return ast.property_accesses(expr)


__all__ = [
    "NRA_OPERATORS",
    "validate_nra",
    "collect_unnests",
    "entity_property_accesses",
    "contains_aggregate",
]
