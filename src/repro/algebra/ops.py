"""Relational algebra operators for all three stages (GRA / NRA / FRA).

One operator vocabulary serves the whole lowering pipeline; the stage
modules (:mod:`.gra`, :mod:`.nra`, :mod:`.fra`) define which subset is legal
at each stage and validate trees against it.  This mirrors the paper's
presentation where GRA/NRA/FRA share σ, π, ⋈ and differ in the
graph-specific operators:

* GRA: ``get-vertices`` © and ``expand-out`` ↑ (§2),
* NRA: adds ``get-edges`` ⇑, unnest µ, transitive join ⋈* (§4 step 2),
* FRA: base operators carry pushed-down property projections
  (``{lang → pL}``, §4 step 3) and no unnest remains.

Every operator computes its output :class:`~.schema.Schema` eagerly at
construction, so schema errors surface where the tree is built.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cypher import ast
from ..errors import CompilerError
from .expressions import AggregateSpec
from .schema import AttrKind, Attribute, Schema

# ---------------------------------------------------------------------------
# pushed-down attribute naming (the paper's {key → attr} annotations)
# ---------------------------------------------------------------------------


def prop_attr(var: str, key: str) -> str:
    """Attribute name for a pushed-down property, e.g. ``p.lang``."""
    return f"{var}.{key}"


def labels_attr(var: str) -> str:
    return f"labels({var})"


def type_attr(var: str) -> str:
    return f"type({var})"


def properties_attr(var: str) -> str:
    return f"properties({var})"


@dataclass(frozen=True, slots=True)
class PropertyProjection:
    """One pushed-down column of a base operator.

    ``kind`` selects what is materialised for entity ``subject``:
    ``"property"`` (needs ``key``), ``"labels"``, ``"type"`` or
    ``"properties"`` (the full map).
    """

    subject: str
    kind: str
    key: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("property", "labels", "type", "properties"):
            raise CompilerError(f"bad projection kind {self.kind!r}")
        if (self.kind == "property") != (self.key is not None):
            raise CompilerError("'property' projections (and only those) need a key")

    @property
    def output(self) -> str:
        if self.kind == "property":
            return prop_attr(self.subject, self.key)  # type: ignore[arg-type]
        if self.kind == "labels":
            return labels_attr(self.subject)
        if self.kind == "type":
            return type_attr(self.subject)
        return properties_attr(self.subject)


def infer_kind(expr: ast.Expr, schema: Schema) -> AttrKind:
    """Result kind of a projection expression."""
    if isinstance(expr, ast.Variable) and expr.name in schema:
        return schema.kind_of(expr.name)
    if isinstance(expr, ast.FunctionCall) and expr.name == "_path":
        return AttrKind.PATH
    return AttrKind.VALUE


# ---------------------------------------------------------------------------
# operator base
# ---------------------------------------------------------------------------


class Operator:
    """Base class; subclasses set ``children`` and ``schema`` in __init__."""

    # ``_fingerprint`` lazily caches the canonical subplan fingerprint (or
    # None for unshareable subtrees); ``_generalized`` caches the
    # parameter-generalised variant (parameter names become occurrence
    # positions, for cross-binding sharing).  Operators are immutable, so
    # neither value can ever go stale.  Both are written by
    # repro.compiler.fingerprint via object.__setattr__ (the same escape
    # hatch _init/_set use).
    __slots__ = ("children", "schema", "_fingerprint", "_generalized")

    children: tuple["Operator", ...]
    schema: Schema

    def _init(self, children: tuple["Operator", ...], schema: Schema) -> None:
        object.__setattr__(self, "children", children)
        object.__setattr__(self, "schema", schema)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError(f"{type(self).__name__} is immutable")

    # Subclasses may add fields via object.__setattr__ in __init__.
    def _set(self, **fields) -> None:
        for name, value in fields.items():
            object.__setattr__(self, name, value)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        from .printer import format_plan

        return format_plan(self)


# ---------------------------------------------------------------------------
# nullary operators (base relations)
# ---------------------------------------------------------------------------


class GetVertices(Operator):
    """© — vertices with all of ``labels``, plus pushed-down columns."""

    __slots__ = ("var", "labels", "projections")

    def __init__(
        self,
        var: str,
        labels: tuple[str, ...] = (),
        projections: tuple[PropertyProjection, ...] = (),
    ):
        attrs = [Attribute(var, AttrKind.VERTEX)]
        for projection in projections:
            if projection.subject != var:
                raise CompilerError(
                    f"projection subject {projection.subject!r} is not {var!r}"
                )
            attrs.append(Attribute(projection.output, AttrKind.VALUE))
        self._init((), Schema(attrs))
        self._set(var=var, labels=tuple(labels), projections=tuple(projections))


class GetEdges(Operator):
    """⇑ — ``(src, edge, tgt)`` triples of the given types.

    With ``directed=False`` each edge contributes both orientations (a
    self-loop contributes one).  Endpoint label constraints are applied at
    the base relation (the paper's ``⇑(c:Comm)(p:Post)[:REPLY]`` form).
    """

    __slots__ = (
        "src",
        "edge",
        "tgt",
        "types",
        "src_labels",
        "tgt_labels",
        "directed",
        "projections",
    )

    def __init__(
        self,
        src: str,
        edge: str,
        tgt: str,
        types: tuple[str, ...] = (),
        src_labels: tuple[str, ...] = (),
        tgt_labels: tuple[str, ...] = (),
        directed: bool = True,
        projections: tuple[PropertyProjection, ...] = (),
    ):
        if len({src, edge, tgt}) != 3:
            raise CompilerError(
                f"get-edges variables must be distinct, got {(src, edge, tgt)}"
            )
        attrs = [
            Attribute(src, AttrKind.VERTEX),
            Attribute(edge, AttrKind.EDGE),
            Attribute(tgt, AttrKind.VERTEX),
        ]
        for projection in projections:
            if projection.subject not in (src, edge, tgt):
                raise CompilerError(
                    f"projection subject {projection.subject!r} not one of the "
                    f"get-edges variables {(src, edge, tgt)}"
                )
            attrs.append(Attribute(projection.output, AttrKind.VALUE))
        self._init((), Schema(attrs))
        self._set(
            src=src,
            edge=edge,
            tgt=tgt,
            types=tuple(types),
            src_labels=tuple(src_labels),
            tgt_labels=tuple(tgt_labels),
            directed=directed,
            projections=tuple(projections),
        )

    def projection_roles(self) -> tuple[tuple[str, str, str | None], ...]:
        """Pushed-down columns keyed by role, not by variable name.

        The canonical ``(role, kind, key)`` form every sharing key uses
        (input signatures, within-network caches, subplan fingerprints):
        tuple layout depends only on this, never on variable names.
        """
        return tuple(
            (
                "src"
                if p.subject == self.src
                else "edge"
                if p.subject == self.edge
                else "tgt",
                p.kind,
                p.key,
            )
            for p in self.projections
        )


# ---------------------------------------------------------------------------
# GRA-only: expand
# ---------------------------------------------------------------------------


class ExpandOut(Operator):
    """↑ — navigate from ``src`` to a new ``tgt`` over one edge (GRA only).

    ``direction`` ∈ {"out", "in", "both"}; var-length expansion is carried
    by ``min_hops``/``max_hops`` with ``max_hops=None`` meaning unbounded.
    For single-hop expansion the edge variable joins the schema; var-length
    expansions contribute a path attribute instead (named ``path_alias``),
    matching the paper's treatment of paths as atomic values.
    """

    __slots__ = (
        "src",
        "edge",
        "tgt",
        "types",
        "tgt_labels",
        "direction",
        "min_hops",
        "max_hops",
        "path_alias",
    )

    def __init__(
        self,
        child: Operator,
        src: str,
        edge: str,
        tgt: str,
        types: tuple[str, ...] = (),
        tgt_labels: tuple[str, ...] = (),
        direction: str = "out",
        min_hops: int = 1,
        max_hops: int | None = 1,
        path_alias: str | None = None,
    ):
        if src not in child.schema:
            raise CompilerError(f"expand source {src!r} not bound by child")
        if direction not in ("out", "in", "both"):
            raise CompilerError(f"bad direction {direction!r}")
        var_length = not (min_hops == 1 and max_hops == 1)
        attrs = list(child.schema)
        if not var_length:
            attrs.append(Attribute(edge, AttrKind.EDGE))
        attrs.append(Attribute(tgt, AttrKind.VERTEX))
        if var_length and path_alias is not None:
            attrs.append(Attribute(path_alias, AttrKind.PATH))
        self._init((child,), Schema(attrs))
        self._set(
            src=src,
            edge=edge,
            tgt=tgt,
            types=tuple(types),
            tgt_labels=tuple(tgt_labels),
            direction=direction,
            min_hops=min_hops,
            max_hops=max_hops,
            path_alias=path_alias,
        )

    @property
    def var_length(self) -> bool:
        return not (self.min_hops == 1 and self.max_hops == 1)


# ---------------------------------------------------------------------------
# unary operators
# ---------------------------------------------------------------------------


class Select(Operator):
    """σ — keep rows whose predicate evaluates to exactly ``true``."""

    __slots__ = ("predicate",)

    def __init__(self, child: Operator, predicate: ast.Expr):
        self._init((child,), child.schema)
        self._set(predicate=predicate)


class Project(Operator):
    """π — compute named output columns; defines the operator's schema."""

    __slots__ = ("items",)

    def __init__(self, child: Operator, items: tuple[tuple[str, ast.Expr], ...]):
        attrs = [
            Attribute(name, infer_kind(expr, child.schema)) for name, expr in items
        ]
        self._init((child,), Schema(attrs))
        self._set(items=tuple(items))


class Dedup(Operator):
    """δ — collapse bag multiplicities to one (DISTINCT)."""

    def __init__(self, child: Operator):
        self._init((child,), child.schema)


class Unwind(Operator):
    """ω — one output row per element of a list-valued expression."""

    __slots__ = ("expression", "alias")

    def __init__(self, child: Operator, expression: ast.Expr, alias: str):
        if alias in child.schema:
            raise CompilerError(f"UNWIND alias {alias!r} already bound")
        self._init(
            (child,),
            Schema(tuple(child.schema) + (Attribute(alias, AttrKind.VALUE),)),
        )
        self._set(expression=expression, alias=alias)


class PropertyUnnest(Operator):
    """µ — the paper's attribute-directed unnest (NRA only).

    ``µ_{c.lang→cL}`` in the paper; here the output attribute keeps the
    dotted name (``c.lang``).  The flattening pass removes these by pushing
    the projection into the base operators.
    """

    __slots__ = ("projection",)

    def __init__(self, child: Operator, projection: PropertyProjection):
        if projection.subject not in child.schema:
            raise CompilerError(
                f"unnest subject {projection.subject!r} not bound by child"
            )
        if projection.output in child.schema:
            raise CompilerError(f"unnest output {projection.output!r} already bound")
        self._init(
            (child,),
            Schema(
                tuple(child.schema) + (Attribute(projection.output, AttrKind.VALUE),)
            ),
        )
        self._set(projection=projection)


class Aggregate(Operator):
    """γ — grouping + incremental aggregate functions."""

    __slots__ = ("keys", "aggregates")

    def __init__(
        self,
        child: Operator,
        keys: tuple[tuple[str, ast.Expr], ...],
        aggregates: tuple[AggregateSpec, ...],
    ):
        attrs = [Attribute(n, infer_kind(e, child.schema)) for n, e in keys]
        attrs += [Attribute(a.output, AttrKind.VALUE) for a in aggregates]
        self._init((child,), Schema(attrs))
        self._set(keys=tuple(keys), aggregates=tuple(aggregates))


class Sort(Operator):
    """Order rows; outside the incrementally maintainable fragment."""

    __slots__ = ("items",)

    def __init__(self, child: Operator, items: tuple[tuple[ast.Expr, bool], ...]):
        self._init((child,), child.schema)
        self._set(items=tuple(items))


class Skip(Operator):
    __slots__ = ("count",)

    def __init__(self, child: Operator, count: ast.Expr):
        self._init((child,), child.schema)
        self._set(count=count)


class Limit(Operator):
    __slots__ = ("count",)

    def __init__(self, child: Operator, count: ast.Expr):
        self._init((child,), child.schema)
        self._set(count=count)


# ---------------------------------------------------------------------------
# binary operators
# ---------------------------------------------------------------------------


class Join(Operator):
    """⋈ — natural join on the attributes the two inputs share."""

    __slots__ = ("common",)

    def __init__(self, left: Operator, right: Operator):
        schema, common = left.schema.join_with(right.schema)
        self._init((left, right), schema)
        self._set(common=common)


class AntiJoin(Operator):
    """▷ — left rows with no natural-join partner on the right."""

    __slots__ = ("common",)

    def __init__(self, left: Operator, right: Operator):
        _, common = left.schema.join_with(right.schema)
        self._init((left, right), left.schema)
        self._set(common=common)


class LeftOuterJoin(Operator):
    """⟕ — natural left outer join (OPTIONAL MATCH); unmatched rows pad
    the right-only attributes with nulls."""

    __slots__ = ("common",)

    def __init__(self, left: Operator, right: Operator):
        schema, common = left.schema.join_with(right.schema)
        self._init((left, right), schema)
        self._set(common=common)


class Union(Operator):
    """∪ — bag union; ``all=False`` adds a dedup on top conceptually
    (the compiler inserts an explicit Dedup, keeping this operator pure)."""

    __slots__ = ("right_permutation",)

    def __init__(self, left: Operator, right: Operator):
        if set(left.schema.names) != set(right.schema.names):
            raise CompilerError(
                f"UNION inputs must share columns: {left.schema.names} vs "
                f"{right.schema.names}"
            )
        permutation = tuple(right.schema.index_of(n) for n in left.schema.names)
        for name in left.schema.names:
            if left.schema.kind_of(name) is not right.schema.kind_of(name):
                raise CompilerError(f"UNION column {name!r} has mismatched kinds")
        self._init((left, right), left.schema)
        self._set(right_permutation=permutation)


class TransitiveJoin(Operator):
    """⋈* — the paper's transitive join (§4 step 2).

    Joins the left input with the transitive closure of the ``edges`` base
    relation: for each left row, one output row per *trail* (edge-distinct
    walk) of length ``min_hops..max_hops`` starting at the row's ``source``
    vertex.  The trail's final vertex binds ``target`` (which must be fresh)
    and, when ``path_alias`` is set, the whole trail binds an atomic
    :class:`~repro.graph.values.PathValue`.

    Label and property constraints on the *final* vertex are expressed by a
    companion natural join with a :class:`GetVertices` on ``target`` (the
    compiler inserts it); intermediate hops stay unconstrained, matching
    Cypher's ``(p:Post)-[:REPLY*]->(c:Comm)``.
    """

    __slots__ = (
        "source",
        "target",
        "direction",
        "min_hops",
        "max_hops",
        "path_alias",
    )

    def __init__(
        self,
        left: Operator,
        edges: GetEdges,
        source: str,
        target: str,
        direction: str = "out",
        min_hops: int = 1,
        max_hops: int | None = None,
        path_alias: str | None = None,
    ):
        if source not in left.schema:
            raise CompilerError(f"transitive-join source {source!r} not bound")
        if target in left.schema:
            raise CompilerError(f"transitive-join target {target!r} already bound")
        if direction not in ("out", "in", "both"):
            raise CompilerError(f"bad direction {direction!r}")
        if min_hops < 0:
            raise CompilerError("min_hops must be >= 0")
        if edges.src_labels or edges.tgt_labels:
            raise CompilerError(
                "the edges relation of a transitive join must be label-free; "
                "constrain the final vertex with a companion get-vertices join"
            )
        if edges.projections:
            raise CompilerError(
                "the edges relation of a transitive join carries no projections"
            )
        attrs = list(left.schema) + [Attribute(target, AttrKind.VERTEX)]
        if path_alias is not None:
            attrs.append(Attribute(path_alias, AttrKind.PATH))
        self._init((left, edges), Schema(attrs))
        self._set(
            source=source,
            target=target,
            direction=direction,
            min_hops=min_hops,
            max_hops=max_hops,
            path_alias=path_alias,
        )

    @property
    def edges(self) -> GetEdges:
        return self.children[1]  # type: ignore[return-value]


class Unit(Operator):
    """The unit relation: one empty tuple.

    Source for pattern-free queries (``RETURN 1``, leading ``UNWIND``) and
    the left input of a leading ``OPTIONAL MATCH``.
    """

    def __init__(self) -> None:
        self._init((), Schema(()))


class ViewScan(Operator):
    """A materialised scan: reads a maintained view or shared subplan bag.

    Spliced into one-shot plans by the view-answering rewriter
    (:mod:`repro.views`) in place of a subtree some live materialisation
    already computes — never produced by the compiler and not part of any
    algebra stage, so it appears only in plans handed directly to the
    interpreter.  ``source`` is a zero-argument callable returning a fresh
    ``row → multiplicity`` bag whose tuple layout matches the replaced
    subtree (and therefore ``schema``: fingerprint equality guarantees
    positional layout equality even when variable names differ).
    """

    __slots__ = ("source", "label")

    def __init__(self, schema: Schema, source, label: str = "view"):
        self._init((), schema)
        self._set(source=source, label=label)
