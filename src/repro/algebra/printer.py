"""Pretty-printer for algebra trees using the paper's notation.

``format_plan`` renders an indented tree; ``format_compact`` renders a
single-line nested expression close to the paper's formulas, e.g.::

    π[p, t] σ[(c.lang = p.lang)] (©(p:Post{lang}) ⋈* ⇑(p)-[:REPLY]->(c))
"""

from __future__ import annotations

from ..cypher.unparser import unparse_expr
from . import ops


def _hops(min_hops: int, max_hops: int | None) -> str:
    if min_hops == 1 and max_hops is None:
        return "*"
    if max_hops is None:
        return f"*{min_hops}.."
    if min_hops == max_hops:
        return f"*{min_hops}"
    return f"*{min_hops}..{max_hops}"


def _projections(projections: tuple[ops.PropertyProjection, ...], subject: str) -> str:
    keys = [
        p.key if p.kind == "property" else p.kind
        for p in projections
        if p.subject == subject
    ]
    return "{" + ",".join(keys) + "}" if keys else ""


def _node_label(op: ops.Operator) -> str:
    if isinstance(op, ops.GetVertices):
        labels = "".join(f":{l}" for l in op.labels)
        return f"©({op.var}{labels}{_projections(op.projections, op.var)})"
    if isinstance(op, ops.GetEdges):
        src_labels = "".join(f":{l}" for l in op.src_labels)
        tgt_labels = "".join(f":{l}" for l in op.tgt_labels)
        types = ":" + "|".join(op.types) if op.types else ""
        arrow = "->" if op.directed else "-"
        return (
            f"⇑({op.src}{src_labels}{_projections(op.projections, op.src)})"
            f"-[{op.edge}{types}{_projections(op.projections, op.edge)}]"
            f"{arrow}({op.tgt}{tgt_labels}{_projections(op.projections, op.tgt)})"
        )
    if isinstance(op, ops.ExpandOut):
        types = ":" + "|".join(op.types) if op.types else ""
        hops = "" if not op.var_length else _hops(op.min_hops, op.max_hops)
        labels = "".join(f":{l}" for l in op.tgt_labels)
        arrow = {"out": "->", "in": "<-", "both": "-"}[op.direction]
        return f"↑({op.src})-[{op.edge}{types}{hops}]{arrow}({op.tgt}{labels})"
    if isinstance(op, ops.Select):
        return f"σ[{unparse_expr(op.predicate)}]"
    if isinstance(op, ops.Project):
        items = ", ".join(
            name if _trivial(expr, name) else f"{unparse_expr(expr)} AS {name}"
            for name, expr in op.items
        )
        return f"π[{items}]"
    if isinstance(op, ops.Dedup):
        return "δ"
    if isinstance(op, ops.Unwind):
        return f"ω[{unparse_expr(op.expression)} AS {op.alias}]"
    if isinstance(op, ops.PropertyUnnest):
        p = op.projection
        source = f"{p.subject}.{p.key}" if p.kind == "property" else p.output
        return f"µ[{source}→{p.output}]"
    if isinstance(op, ops.Aggregate):
        keys = ", ".join(name for name, _ in op.keys)
        aggs = ", ".join(
            f"{a.function}({'DISTINCT ' if a.distinct else ''}"
            f"{unparse_expr(a.argument) if a.argument is not None else '*'}) AS {a.output}"
            for a in op.aggregates
        )
        return f"γ[{keys} | {aggs}]"
    if isinstance(op, ops.Sort):
        items = ", ".join(
            unparse_expr(e) + ("" if asc else " DESC") for e, asc in op.items
        )
        return f"sort[{items}]"
    if isinstance(op, ops.Skip):
        return f"skip[{unparse_expr(op.count)}]"
    if isinstance(op, ops.Limit):
        return f"limit[{unparse_expr(op.count)}]"
    if isinstance(op, ops.Join):
        return "⋈" + (f"[{', '.join(op.common)}]" if op.common else "[×]")
    if isinstance(op, ops.AntiJoin):
        return f"▷[{', '.join(op.common)}]"
    if isinstance(op, ops.LeftOuterJoin):
        return f"⟕[{', '.join(op.common)}]"
    if isinstance(op, ops.Union):
        return "∪"
    if isinstance(op, ops.TransitiveJoin):
        path = f", {op.path_alias}=path" if op.path_alias else ""
        arrow = {"out": "→", "in": "←", "both": "↔"}[op.direction]
        return (
            f"⋈*[{op.source}{_hops(op.min_hops, op.max_hops)}"
            f"{arrow}{op.target}{path}]"
        )
    if isinstance(op, ops.Unit):
        return "unit"
    if isinstance(op, ops.ViewScan):
        return f"scan⟨{op.label}⟩"
    return type(op).__name__


def _trivial(expr, name: str) -> bool:
    from ..cypher import ast

    return isinstance(expr, ast.Variable) and expr.name == name


def format_plan(op: ops.Operator, indent: int = 0) -> str:
    """Indented multi-line rendering of the operator tree."""
    lines = ["  " * indent + _node_label(op)]
    for child in op.children:
        lines.append(format_plan(child, indent + 1))
    return "\n".join(lines)


def format_compact(op: ops.Operator) -> str:
    """Single-line rendering close to the paper's formulas."""
    label = _node_label(op)
    if not op.children:
        return label
    if isinstance(op, (ops.Join, ops.LeftOuterJoin, ops.AntiJoin, ops.Union)):
        left, right = op.children
        symbol = {"Join": "⋈", "LeftOuterJoin": "⟕", "AntiJoin": "▷", "Union": "∪"}[
            type(op).__name__
        ]
        return f"({format_compact(left)} {symbol} {format_compact(right)})"
    if isinstance(op, ops.TransitiveJoin):
        left, edges = op.children
        return f"({format_compact(left)} {label} {format_compact(edges)})"
    inner = " ".join(format_compact(c) for c in op.children)
    return f"{label} ({inner})" if len(op.children) == 1 else f"{label} ({inner})"
