"""Relation schemas for graph relations.

The paper (§2) works with *graph relations*: relations whose attribute
domains are vertices, edges, or atomic/nested values.  A :class:`Schema` is
an ordered list of named, kinded attributes; engine tuples are positionally
aligned with their operator's schema.

Attribute names follow the compiler's conventions:

* ``p`` — an entity variable bound by a pattern (vertex/edge/path),
* ``p.lang`` — a property pushed down into a base operator
  (the paper's ``{lang → pL}`` annotation; we keep the dotted name
  instead of inventing ``pL``),
* ``labels(p)`` / ``type(e)`` / ``properties(p)`` — pushed-down
  meta-attributes for expressions the flat engine cannot compute from ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator

from ..errors import CompilerError


class AttrKind(Enum):
    VERTEX = "vertex"
    EDGE = "edge"
    PATH = "path"
    VALUE = "value"


@dataclass(frozen=True, slots=True)
class Attribute:
    name: str
    kind: AttrKind

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"{self.name}:{self.kind.value}"


class Schema:
    """An ordered, duplicate-free list of attributes with O(1) name lookup."""

    __slots__ = ("attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = tuple(attributes)
        index: dict[str, int] = {}
        for position, attribute in enumerate(attrs):
            if attribute.name in index:
                raise CompilerError(f"duplicate attribute {attribute.name!r} in schema")
            index[attribute.name] = position
        object.__setattr__(self, "attributes", attrs)
        object.__setattr__(self, "_index", index)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("Schema is immutable")

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schema):
            return self.attributes == other.attributes
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.attributes)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise CompilerError(
                f"attribute {name!r} not in schema {self.names}"
            ) from None

    def attribute(self, name: str) -> Attribute:
        return self.attributes[self.index_of(name)]

    def kind_of(self, name: str) -> AttrKind:
        return self.attribute(name).kind

    def project(self, names: Iterable[str]) -> "Schema":
        return Schema(self.attribute(n) for n in names)

    def concat(self, other: "Schema") -> "Schema":
        """Disjoint concatenation; raises on duplicate names."""
        return Schema(self.attributes + other.attributes)

    def join_with(self, other: "Schema") -> tuple["Schema", tuple[str, ...]]:
        """Natural-join result schema and the shared attribute names.

        Result layout: all left attributes, then right attributes that are
        not shared.  Shared attributes must agree on kind.
        """
        shared: list[str] = []
        extra: list[Attribute] = []
        for attribute in other.attributes:
            if attribute.name in self._index:
                mine = self.attribute(attribute.name)
                if mine.kind is not attribute.kind:
                    raise CompilerError(
                        f"attribute {attribute.name!r} has kind {mine.kind} on the "
                        f"left but {attribute.kind} on the right"
                    )
                shared.append(attribute.name)
            else:
                extra.append(attribute)
        return Schema(self.attributes + tuple(extra)), tuple(shared)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"Schema({', '.join(map(repr, self.attributes))})"


EMPTY_SCHEMA = Schema(())
