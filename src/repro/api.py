"""Public façade: one object for both evaluation modes.

:class:`QueryEngine` bundles the two executors the paper contrasts:

* ``evaluate(query)`` — one-shot full evaluation (supports the complete
  implemented openCypher fragment, including ORDER BY / SKIP / LIMIT),
* ``register(query)`` — an incrementally maintained view (the paper's
  maintainable fragment: bags + atomic paths, no ordering).

Example
-------
>>> from repro import PropertyGraph, QueryEngine
>>> graph = PropertyGraph()
>>> engine = QueryEngine(graph)
>>> post = graph.add_vertex(labels=["Post"], properties={"lang": "en"})
>>> view = engine.register("MATCH (p:Post) RETURN p.lang AS lang")
>>> view.rows()
[('en',)]
>>> graph.set_vertex_property(post, "lang", "de")
>>> view.rows()
[('de',)]
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import asdict
from typing import Any, Mapping

from .compiler.pipeline import CompiledQuery, compile_query
from .cypher import ast
from .cypher.parser import parse, parse_script
from .cypher.unparser import unparse
from .errors import UnsupportedForIncrementalError
from .eval.interpreter import Interpreter
from .eval.results import ResultTable
from .graph.graph import PropertyGraph
from .rete.engine import IncrementalEngine, View
from .rete.shard import ShardCoordinator
from .rete.sharing import SharedSubplanLayer
from .updates import ExecutionResult, UpdateExecutor, UpdateSummary
from .views import AnswerStats, ViewCatalog


class QueryEngine:
    """Evaluate openCypher queries over a property graph, one-shot or
    incrementally.

    With ``answer_from_views=True`` (the default) one-shot ``evaluate``
    calls first consult the :class:`~repro.views.ViewCatalog`: when a
    registered view — or a shared interior subplan of one — already
    materialises the query (or a subtree the query is residual work over),
    the result is served from live maintained state instead of re-scanning
    the graph.  ``evaluate(..., use_views=False)`` forces the full
    recomputation baseline per call; ``answer_from_views=False`` disables
    the catalog engine-wide (the ablation configuration).

    With ``workers=N`` (N ≥ 1) incremental maintenance runs on the sharded
    multi-process tier (:class:`~repro.rete.shard.ShardCoordinator`): views
    are partitioned across N forked worker processes by input-signature
    shard key, net batches fan out over pipes, and per-view ``on_change``
    streams merge back in registration order.  ``workers=0`` (the default)
    is the exact in-process PR 1–6 engine.  Sharding disables the view
    catalog (maintained state lives in the workers, not this process), so
    one-shot ``evaluate`` always recomputes.
    """

    def __init__(
        self,
        graph: PropertyGraph,
        transitive_mode: str = "trails",
        share_inputs: bool = True,
        batch_transactions: bool = False,
        route_events: bool = True,
        share_subplans: bool = True,
        answer_from_views: bool = True,
        detached_cache_size: int = 4,
        share_across_bindings: bool = True,
        columnar_deltas: bool = True,
        columnar_memories: bool = True,
        workers: int = 0,
        collect_metrics: bool = False,
        trace_batches: bool = False,
    ):
        self.graph = graph
        self.workers = workers
        if workers:
            self._incremental: IncrementalEngine = ShardCoordinator(
                graph,
                workers=workers,
                transitive_mode=transitive_mode,
                share_inputs=share_inputs,
                batch_transactions=batch_transactions,
                route_events=route_events,
                share_subplans=share_subplans,
                detached_cache_size=detached_cache_size,
                share_across_bindings=share_across_bindings,
                columnar_deltas=columnar_deltas,
                columnar_memories=columnar_memories,
                collect_metrics=collect_metrics,
                trace_batches=trace_batches,
            )
            # view answering needs in-process networks; ShardViews have none
            self.answer_from_views = False
            self._catalog = None
        else:
            self._incremental = IncrementalEngine(
                graph,
                transitive_mode=transitive_mode,
                share_inputs=share_inputs,
                batch_transactions=batch_transactions,
                route_events=route_events,
                share_subplans=share_subplans,
                detached_cache_size=detached_cache_size,
                share_across_bindings=share_across_bindings,
                columnar_deltas=columnar_deltas,
                columnar_memories=columnar_memories,
                collect_metrics=collect_metrics,
                trace_batches=trace_batches,
            )
            self.answer_from_views = answer_from_views
            self._catalog = ViewCatalog(self._incremental)
        if self._catalog is not None and self._incremental.metrics is not None:
            self._incremental.metrics.registry.add_collector(
                self._collect_catalog_gauges
            )
        self._plan_cache: dict[str, CompiledQuery] = {}

    @property
    def batch_transactions(self) -> bool:
        """Whether transactions (and write queries) propagate as one batch."""
        return self._incremental.batch_transactions

    def batch(self):
        """Defer view maintenance: one net delta per input node on exit.

        >>> from repro import PropertyGraph, QueryEngine
        >>> graph = PropertyGraph()
        >>> engine = QueryEngine(graph)
        >>> view = engine.register("MATCH (p:Post) RETURN p")
        >>> with engine.batch():
        ...     doomed = graph.add_vertex(labels=["Post"])
        ...     graph.remove_vertex(doomed)  # cancels inside the batch
        >>> view.rows()
        []
        """
        return self._incremental.batch()

    def compile(self, query: str) -> CompiledQuery:
        """Compile (with caching) through GRA → NRA → FRA."""
        compiled = self._plan_cache.get(query)
        if compiled is None:
            compiled = compile_query(query)
            self._plan_cache[query] = compiled
        return compiled

    def evaluate(
        self,
        query: str,
        parameters: Mapping[str, Any] | None = None,
        use_views: bool | None = None,
    ) -> ResultTable:
        """One-shot evaluation: from materialised views when possible.

        With ``use_views`` unset, the engine default (``answer_from_views``)
        decides.  A catalog miss — no covering view, parameter mismatch,
        open batch window — always falls back to full recomputation, so
        the result is identical either way; ``use_views=False`` is the
        explicit recomputation baseline (and what differential oracles
        should ask for).
        """
        compiled = self.compile(query)
        if use_views is None:
            use_views = self.answer_from_views
        if use_views and self._catalog is not None:
            answered = self._catalog.try_answer(compiled, parameters)
            if answered is not None:
                return answered
        return Interpreter(self.graph, parameters).run(compiled.plan)

    def execute(
        self, query: str, parameters: Mapping[str, Any] | None = None
    ) -> ExecutionResult:
        """Run *query*, reading or updating.

        Updating queries (CREATE / DELETE / SET / REMOVE / MERGE) run
        atomically through the update executor; their writes propagate to
        every registered incremental view.  Read-only queries evaluate
        one-shot and return an :class:`ExecutionResult` with an empty
        summary, so callers can use one entry point for both.
        """
        syntax = parse(query)
        if isinstance(syntax, ast.UpdatingQuery):
            return UpdateExecutor(
                self.graph, parameters, batcher=self._update_batcher()
            ).execute(syntax)
        return ExecutionResult(UpdateSummary(), self.evaluate(query, parameters))

    def _update_batcher(self):
        """Batch-scope factory handed to update executors.

        With ``batch_transactions`` enabled, a write query's side effects
        reach the views as one consolidated delta after its transaction
        commits; otherwise ``None`` keeps the per-event path (and the
        mid-query trigger semantics that come with it).
        """
        if self._incremental.batch_transactions:
            return self._incremental.batch
        return None

    def execute_script(
        self, script: str, parameters: Mapping[str, Any] | None = None
    ) -> list[ExecutionResult]:
        """Run a ``;``-separated statement sequence in one transaction.

        Statements execute in order and see each other's writes; a failure
        anywhere rolls back the whole script (views included).  Returns one
        :class:`ExecutionResult` per statement.
        """
        statements = parse_script(script)
        results: list[ExecutionResult] = []
        scope = (
            nullcontext()
            if self.graph.in_transaction
            else self.graph.transaction()
        )
        with scope:
            for statement in statements:
                if isinstance(statement, ast.UpdatingQuery):
                    results.append(
                        UpdateExecutor(
                            self.graph, parameters, batcher=self._update_batcher()
                        ).execute(statement)
                    )
                else:
                    # round-trip through the unparser: read statements use
                    # the compiled pipeline, which takes query text
                    table = self.evaluate(unparse(statement), parameters)
                    results.append(ExecutionResult(UpdateSummary(), table))
        return results

    def register(
        self,
        query: str | CompiledQuery,
        parameters: Mapping[str, Any] | None = None,
    ) -> View:
        """Register *query* as an incrementally maintained view.

        Accepts query text or a pre-compiled :class:`CompiledQuery` (e.g.
        one compiled with cost-based statistics).  Raises
        :class:`UnsupportedForIncrementalError` outside the paper's
        fragment.
        """
        compiled = self.compile(query) if isinstance(query, str) else query
        return self._incremental.register(compiled, parameters)

    def is_incremental(self, query: str) -> bool:
        """Whether *query* lies in the incrementally maintainable fragment."""
        return self.compile(query).is_incremental

    def explain(
        self, query: str, parameters: Mapping[str, Any] | None = None
    ) -> str:
        """The compilation pipeline's stages for *query*, plus how view
        answering would serve it against the current catalog."""
        compiled = self.compile(query)
        if self._catalog is None:
            match = "disabled (sharded tier: maintained state lives in workers)"
        else:
            match = self._catalog.describe_match(compiled, parameters)
        text = compiled.explain() + f"\n\n== View answering ==\n{match}"
        snapshot = self.metrics_snapshot()
        if snapshot is not None:
            lines = ["", "== Live stats =="]
            for name in (
                "repro_batches_total",
                "repro_events_total",
                "repro_views_live",
                "repro_nodes_live",
                "repro_memory_entries",
                "repro_catalog_answered",
                "repro_catalog_fallbacks",
                "repro_shard_batches_fanned_out",
            ):
                data = snapshot.get(name)
                if data is not None:
                    lines.append(f"{name} = {data['value']}")
            latency = snapshot.get("repro_batch_seconds")
            if latency is not None and latency["count"]:
                mean_ms = latency["sum"] / latency["count"] * 1000
                lines.append(
                    f"repro_batch_seconds: count={latency['count']} "
                    f"mean={mean_ms:.3f}ms"
                )
            text += "\n" + "\n".join(lines)
        return text

    @property
    def catalog(self) -> ViewCatalog | None:
        """The view-answering catalog (``None`` under ``workers=N``)."""
        return self._catalog

    def answer_stats(self) -> AnswerStats:
        """Counters of how evaluate() calls were served."""
        if self._catalog is None:
            return AnswerStats()
        return self._catalog.stats

    def shard_stats(self) -> dict:
        """Per-worker and aggregate maintenance counters.

        Under ``workers=N`` the real cluster picture: one section per
        worker plus aggregates.  The in-process engine answers the same
        shape with zero workers — empty ``workers``/zeroed coordinator
        counters and its own totals — so callers (the CLI's ``:shards``,
        dashboards) need no special case.
        """
        if isinstance(self._incremental, ShardCoordinator):
            return self._incremental.shard_stats()
        engine = self._incremental
        layer = engine.input_layer
        totals: dict[str, Any] = {
            "views": len(engine.views),
            "memory_size": engine.memory_size(),
            "memory_cells": engine.memory_cells(),
            "node_count": layer.node_count if layer is not None else 0,
            "sharing": asdict(layer.stats) if layer is not None else {},
        }
        if isinstance(layer, SharedSubplanLayer):
            totals["subplan_count"] = layer.subplan_count
            totals["binding_node_count"] = layer.binding_node_count
            totals["binding_partition_count"] = layer.binding_partition_count
            totals["detached_count"] = layer.detached_count
        return {
            "workers": [],
            "totals": totals,
            "views": len(engine.views),
            "coordinator": {
                "batches_fanned_out": 0,
                "records_fanned_out": 0,
                "records_sliced_away": 0,
            },
        }

    # -- observability --------------------------------------------------------

    def metrics_snapshot(self) -> dict | None:
        """JSON-ready metrics snapshot (``None`` with ``collect_metrics``
        off).  Under ``workers=N`` this merges the coordinator's pipeline
        metrics with every worker's node/router/sharing samples."""
        return self._incremental.metrics_snapshot()

    def view_costs(self) -> dict:
        """Maintenance cost attributed per view (see
        :meth:`~repro.rete.engine.IncrementalEngine.view_costs`)."""
        return self._incremental.view_costs()

    @property
    def tracing(self) -> bool:
        """Whether per-batch trace recording is currently on."""
        return self._incremental.trace_batches

    def set_tracing(self, enabled: bool) -> None:
        """Toggle per-batch trace recording at runtime.

        Recording costs one span per emit/apply hop while on; the latest
        finished tree is kept at :attr:`last_trace`.
        """
        self._incremental.trace_batches = bool(enabled)

    @property
    def last_trace(self):
        """Span tree of the most recently traced propagation, or ``None``."""
        return self._incremental.last_trace

    def _collect_catalog_gauges(self) -> None:
        """Sample view-catalog counters into gauges at snapshot time."""
        gauge = self._incremental.metrics.registry.gauge
        help_by_name = {
            "queries": "View-catalog probes (try_answer calls)",
            "answered": "One-shot queries served from maintained state",
            "exact": "Catalog answers covering the whole plan",
            "residual": "Catalog answers with residual operators on top",
            "root_hits": "Catalog sources read from view result tables",
            "subplan_hits": "Catalog sources read from shared subplan memories",
            "fallbacks": "Catalog declines (no cover / params / stale)",
            "stale_declines": "Declines forced by an open batch window",
        }
        for name, value in self._catalog.stats.as_dict().items():
            gauge(
                f"repro_catalog_{name}",
                help_by_name.get(name, "View-catalog counter"),
            ).set(value)

    def shutdown(self) -> None:
        """Stop shard workers, if any.  A no-op for the in-process engine."""
        if isinstance(self._incremental, ShardCoordinator):
            self._incremental.shutdown()

    @property
    def views(self) -> tuple[View, ...]:
        return self._incremental.views

    def memory_size(self) -> int:
        """Total memory entries across all views, shared nodes counted once."""
        return self._incremental.memory_size()

    def memory_cells(self) -> int:
        """Total stored tuple fields, shared nodes counted once."""
        return self._incremental.memory_cells()


__all__ = ["QueryEngine", "ExecutionResult", "UnsupportedForIncrementalError"]
