"""Benchmark harness utilities shared by the ``benchmarks/`` experiments."""

from .harness import Measurement, Timer, format_table, speedup, timed

__all__ = ["Measurement", "Timer", "timed", "format_table", "speedup"]
