"""Shared benchmark harness: timing, comparison runs, table rendering.

Every experiment in ``benchmarks/`` reports through these helpers so the
output format is uniform: one table per experiment, with the incremental
engine and the full-recomputation baseline side by side (the shape the
Train Benchmark and the paper's companion evaluations report).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence


@dataclass
class Measurement:
    """Wall-clock samples for one (experiment, series, x) cell."""

    label: str
    samples: list[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        self.samples.append(seconds)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples) if self.samples else 0.0

    @property
    def median(self) -> float:
        return statistics.median(self.samples) if self.samples else 0.0


class Timer:
    """``with Timer() as t: ...; t.seconds``"""

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


def timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None
) -> str:
    """Fixed-width table; floats rendered in engineering-friendly units."""

    def cell(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) < 1e-3:
                return f"{value * 1e6:.1f}µs"
            if abs(value) < 1:
                return f"{value * 1e3:.2f}ms"
            return f"{value:.3f}s"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def speedup(baseline_seconds: float, subject_seconds: float) -> str:
    """Human-readable baseline/subject ratio (e.g. '37.2x')."""
    if subject_seconds <= 0:
        return "inf"
    return f"{baseline_seconds / subject_seconds:.1f}x"
