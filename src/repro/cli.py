"""Interactive shell: ``python -m repro [--db DIR] [--file SCRIPT]``.

A minimal console over :class:`~repro.api.QueryEngine`:

* statements end with ``;`` (multi-line input is buffered),
* read queries print their result table; updating queries print the
  Neo4j-style counter summary (plus the RETURN table, if any),
* ``--db DIR`` opens a :class:`~repro.graph.persistence.DurableGraph`
  (recovering snapshot + WAL) instead of an in-memory store,
* meta commands start with ``:`` — ``:help`` lists them.

The shell is also scriptable: pipe statements via stdin or pass
``--file``; exit status is 1 if any statement failed.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO

from .api import QueryEngine
from .compiler.stats import GraphStatistics
from .errors import ReproError
from .graph.graph import PropertyGraph
from .graph.persistence import DurableGraph
from .obs.export import render_json, render_prometheus, render_table

PROMPT = "repro> "
CONTINUATION = "  ...> "

HELP = """\
Statements end with ';'.  Read queries print rows; updating queries print
what changed.  Meta commands:
  :help                 this message
  :quit                 leave the shell
  :views                list registered incremental views
  :register <query>     register an incremental view
  :detach <n>           drop view number n
  :catalog              view-answering catalog: entries and hit counters
  :shards               per-worker maintenance stats (zeroed when in-process)
  :metrics [json|table] metrics snapshot, Prometheus text (JSON, or a p50/p99 table)
  :trace [on|off]       toggle per-batch tracing; bare :trace prints the last tree
  :costs                maintenance cost attributed per view (row-work units)
  :explain <query>      show the compilation stages and view-answering plan
  :profile <n>          per-node counters of view n
  :index <Label> <key>  create a property index
  :indexes              list property indexes
  :stats                graph size and planner statistics
  :checkpoint           snapshot + truncate the WAL (--db mode only)
"""


class Shell:
    """One interactive session over a graph."""

    def __init__(self, engine: QueryEngine, out: IO[str], durable=None):
        self.engine = engine
        self.out = out
        self.durable = durable
        self.failed = False

    # -- output --------------------------------------------------------------

    def _print(self, text: str = "") -> None:
        self.out.write(text + "\n")

    def _error(self, exc: Exception) -> None:
        self.failed = True
        self._print(f"error: {exc}")

    # -- statement handling ------------------------------------------------------

    def run_statement(self, statement: str) -> None:
        statement = statement.strip().rstrip(";").strip()
        if not statement:
            return
        try:
            result = self.engine.execute(statement)
        except ReproError as exc:
            self._error(exc)
            return
        if result.table is not None:
            self._print(result.table.to_text())
        if result.summary.contains_updates:
            self._print(str(result.summary))
        elif result.table is None:
            self._print("no changes")

    def run_meta(self, line: str) -> bool:
        """Handle a ``:command``; returns False when the shell should exit."""
        command, _, argument = line.partition(" ")
        argument = argument.strip()
        try:
            return self._dispatch_meta(command, argument)
        except ReproError as exc:
            self._error(exc)
            return True

    def _dispatch_meta(self, command: str, argument: str) -> bool:
        if command in (":quit", ":exit", ":q"):
            return False
        if command == ":help":
            self._print(HELP)
        elif command == ":views":
            views = self.engine.views
            if not views:
                self._print("no views registered")
            for index, view in enumerate(views):
                self._print(
                    f"[{index}] {view.compiled.text.strip()} "
                    f"({len(view.multiset())} distinct rows)"
                )
        elif command == ":register":
            view = self.engine.register(argument)
            self._print(
                f"registered view [{len(self.engine.views) - 1}] "
                f"({len(view.rows())} rows)"
            )
        elif command == ":detach":
            views = self.engine.views
            index = int(argument)
            if not 0 <= index < len(views):
                self._print(f"no view [{index}]")
            else:
                views[index].detach()
                self._print(f"detached view [{index}]")
        elif command == ":catalog":
            catalog = self.engine.catalog
            if catalog is None:
                self._print(
                    "view answering is disabled under --workers "
                    "(maintained state lives in the shard workers)"
                )
            else:
                self._print(
                    f"{catalog.root_count} view root(s), "
                    f"{catalog.subplan_count} shared subplan(s) servable"
                )
                stats = catalog.stats
                self._print(
                    f"answered {stats.answered}/{stats.queries} one-shot "
                    f"queries from views ({stats.exact} exact, "
                    f"{stats.residual} residual, "
                    f"{stats.fallbacks} full evaluations)"
                )
        elif command == ":shards":
            stats = self.engine.shard_stats()
            fanned = stats["coordinator"]
            self._print(
                f"{len(stats['workers'])} workers, {stats['views']} views, "
                f"{fanned['batches_fanned_out']} batches fanned out "
                f"({fanned['records_sliced_away']} records sliced away)"
            )
            if not stats["workers"]:
                totals = stats["totals"]
                self._print(
                    f"  in-process engine: {totals['memory_size']} memory "
                    f"entries, {totals['memory_cells']} cells, "
                    f"{totals['node_count']} shared nodes"
                )
            for worker in stats["workers"]:
                self._print(
                    f"  worker {worker['worker']}: {worker['views']} views, "
                    f"{worker['memory_cells']} memory cells, "
                    f"{worker['dispatched_batches']}/{worker['batches']} "
                    f"batches dispatched"
                )
        elif command == ":metrics":
            snapshot = self.engine.metrics_snapshot()
            if snapshot is None:
                self._print("metrics collection is off (start with --metrics)")
            elif argument == "json":
                self._print(render_json(snapshot).rstrip("\n"))
            elif argument == "table":
                self._print(render_table(snapshot).rstrip("\n"))
            elif argument:
                self._print("usage: :metrics [json|table]")
            else:
                self._print(render_prometheus(snapshot).rstrip("\n"))
        elif command == ":trace":
            if argument == "on":
                self.engine.set_tracing(True)
                self._print("batch tracing on")
            elif argument == "off":
                self.engine.set_tracing(False)
                self._print("batch tracing off")
            elif argument:
                self._print("usage: :trace [on|off]")
            elif self.engine.last_trace is None:
                state = "on" if self.engine.tracing else "off"
                self._print(f"tracing is {state}; no trace recorded yet")
            else:
                self._print(self.engine.last_trace.render())
        elif command == ":costs":
            costs = self.engine.view_costs()
            if not costs["views"]:
                self._print("no views registered")
            else:
                self._print(f"maintenance cost per view ({costs['unit']})")
                total = costs["total"] or 1.0
                for entry in costs["views"]:
                    where = (
                        f" on worker {entry['worker']}"
                        if "worker" in entry
                        else ""
                    )
                    self._print(
                        f"  [{entry['view']}] {entry['cost']:.1f} "
                        f"({entry['cost'] / total * 100:.1f}%){where}  "
                        f"{entry['query'].strip()}"
                    )
                self._print(
                    f"  unattributed {costs['unattributed']:.1f}, "
                    f"total {costs['total']:.1f}"
                )
        elif command == ":explain":
            self._print(self.engine.explain(argument))
        elif command == ":profile":
            views = self.engine.views
            index = int(argument) if argument else 0
            if not 0 <= index < len(views):
                self._print(f"no view [{index}]")
            else:
                self._print(views[index].profile())
        elif command == ":index":
            label, _, key = argument.partition(" ")
            if not label or not key.strip():
                self._print("usage: :index <Label> <key>")
            else:
                self.engine.graph.create_index(label, key.strip())
                self._print(f"index on (:{label} {{{key.strip()}}})")
        elif command == ":indexes":
            indexes = self.engine.graph.indexes()
            if not indexes:
                self._print("no indexes")
            for label, key in indexes:
                self._print(f"(:{label} {{{key}}})")
        elif command == ":stats":
            stats = self.engine.graph.stats()
            self._print(
                f"{stats['vertices']} vertices, {stats['edges']} edges, "
                f"{stats['labels']} labels, {stats['edge_types']} edge types"
            )
            planning = GraphStatistics.from_graph(self.engine.graph)
            for label, count in sorted(planning.label_counts.items()):
                self._print(f"  :{label}  {count}")
            for edge_type, count in sorted(planning.type_counts.items()):
                self._print(f"  [:{edge_type}]  {count}")
        elif command == ":checkpoint":
            if self.durable is None:
                self._print("not a durable store (start with --db DIR)")
            else:
                self.durable.checkpoint()
                self._print("checkpointed")
        else:
            self._print(f"unknown command {command}; :help lists commands")
            self.failed = True
        return True

    # -- the loop -------------------------------------------------------------------

    def run(self, source: IO[str], interactive: bool) -> None:
        buffer: list[str] = []
        while True:
            if interactive:
                self.out.write(CONTINUATION if buffer else PROMPT)
                self.out.flush()
            line = source.readline()
            if not line:
                break
            stripped = line.strip()
            if not buffer and stripped.startswith(":"):
                if not self.run_meta(stripped):
                    break
                continue
            buffer.append(line)
            if stripped.endswith(";"):
                self.run_statement("\n".join(buffer))
                buffer.clear()
        if buffer:  # trailing statement without ';'
            self.run_statement("\n".join(buffer))


def main(argv: list[str] | None = None, stdin: IO[str] | None = None,
         stdout: IO[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Incremental openCypher shell (Szárnyas 2018 reproduction).",
    )
    parser.add_argument(
        "--db", metavar="DIR", help="open (or create) a durable store under DIR"
    )
    parser.add_argument(
        "--file", metavar="SCRIPT", help="run statements from SCRIPT and exit"
    )
    parser.add_argument(
        "--batch-transactions",
        action="store_true",
        help="propagate each write statement to incremental views as one "
        "consolidated delta at commit (instead of per elementary change)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="maintain views on N forked shard worker processes "
        "(0 = in-process; incompatible with --db)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect engine metrics (inspect with :metrics; small "
        "per-batch timing overhead)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="start with per-batch trace recording on (also :trace on|off)",
    )
    args = parser.parse_args(argv)
    out = stdout if stdout is not None else sys.stdout

    if args.workers and args.db:
        # shard workers fork the store; a forked WAL handle would interleave
        # writes from every process and corrupt the log
        parser.error("--workers requires an in-memory store (omit --db)")

    durable = None
    if args.db:
        durable = DurableGraph(args.db)
        graph = durable.graph
    else:
        graph = PropertyGraph()
    engine = QueryEngine(
        graph,
        batch_transactions=args.batch_transactions,
        workers=args.workers,
        collect_metrics=args.metrics,
        trace_batches=args.trace,
    )
    shell = Shell(engine, out, durable=durable)

    try:
        if args.file:
            with open(args.file, "r", encoding="utf-8") as handle:
                shell.run(handle, interactive=False)
        else:
            source = stdin if stdin is not None else sys.stdin
            interactive = source is sys.stdin and sys.stdin.isatty()
            if interactive:
                out.write("repro shell — :help for commands, :quit to leave\n")
            shell.run(source, interactive=interactive)
    finally:
        engine.shutdown()
        if durable is not None:
            durable.close()
    return 1 if shell.failed else 0
