"""Query compiler: openCypher → GRA → NRA → FRA (paper §4 steps 1–3)."""

from .cypher_to_gra import compile_to_gra
from .gra_to_nra import lower_to_nra
from .nra_to_fra import flatten_to_fra, parse_pushed_attribute
from .optimizer import optimize
from .pipeline import CompiledQuery, compile_query

__all__ = [
    "compile_query",
    "CompiledQuery",
    "compile_to_gra",
    "lower_to_nra",
    "flatten_to_fra",
    "parse_pushed_attribute",
    "optimize",
]
