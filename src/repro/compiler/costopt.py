"""Cost-based join ordering over FRA plans (ablation E13).

The rule-based optimiser compiles patterns in syntactic order, producing a
left-deep join tree that mirrors how the query was *written*.  For a Rete
network that order matters twice: every join node stores both inputs, so a
bad order inflates join memories *and* per-update delta work.

This pass flattens each maximal chain of natural ⋈ operators into its leaf
set and rebuilds it greedily: start from the smallest estimated leaf, then
repeatedly join with the connected leaf (sharing ≥ 1 attribute) that
minimises the estimated intermediate cardinality.  Cross products are
deferred until forced.  Natural joins are associative and commutative over
a fixed leaf set, and attributes are resolved by name, so any order is
semantics-preserving — the equivalence property tests hammer this.

Opt-in: pass ``statistics`` to ``compile_query`` (or construct
:class:`~repro.compiler.stats.GraphStatistics` yourself).  Statistics are a
snapshot; a badly stale snapshot degrades the *ordering*, never
correctness.
"""

from __future__ import annotations

from ..algebra import ops
from .stats import GraphStatistics, estimate_cardinality
from .treeutil import rebuild


def _join_leaves(op: ops.Operator) -> list[ops.Operator]:
    """Leaves of the maximal ⋈ chain rooted at *op* (op must be a Join)."""
    if isinstance(op, ops.Join):
        return _join_leaves(op.children[0]) + _join_leaves(op.children[1])
    return [op]


def _connected(left: ops.Operator, right: ops.Operator) -> bool:
    return bool(set(left.schema.names) & set(right.schema.names))


def reorder_joins(plan: ops.Operator, stats: GraphStatistics) -> ops.Operator:
    """Reorder every ⋈ chain in *plan* by estimated cardinality."""
    if isinstance(plan, ops.Join):
        leaves = [reorder_joins(leaf, stats) for leaf in _join_leaves(plan)]
        return _greedy_tree(leaves, stats)
    return rebuild(plan, [reorder_joins(child, stats) for child in plan.children])


def _greedy_tree(
    leaves: list[ops.Operator], stats: GraphStatistics
) -> ops.Operator:
    remaining = list(leaves)
    # seed: the smallest leaf that is connected to at least one other
    # (an isolated leaf would force an immediate cross product)
    def seed_key(leaf: ops.Operator) -> tuple:
        connected = any(_connected(leaf, other) for other in remaining if other is not leaf)
        return (not connected, estimate_cardinality(leaf, stats))

    current = min(remaining, key=seed_key)
    remaining.remove(current)
    while remaining:
        connected = [leaf for leaf in remaining if _connected(current, leaf)]
        candidates = connected if connected else remaining  # cross product only when forced
        best = min(
            candidates,
            key=lambda leaf: estimate_cardinality(ops.Join(current, leaf), stats),
        )
        remaining.remove(best)
        current = ops.Join(current, best)
    return current


def estimated_cost(plan: ops.Operator, stats: GraphStatistics) -> float:
    """Σ of estimated intermediate cardinalities — the ordering objective.

    For Rete this approximates total join-memory size (every operator's
    output is somebody's stored input).
    """
    return sum(estimate_cardinality(op, stats) for op in plan.walk())
