"""Compilation step 1 (paper §4): openCypher AST → GRA.

Follows the mapping of Marton–Szárnyas–Varró [20] that the paper builds on:

* each pattern part becomes a ``get-vertices`` (©) chain of ``expand-out``
  (↑) operators; comma-separated parts and consecutive MATCH clauses are
  combined by natural joins;
* WHERE and pattern property maps become selections σ;
* OPTIONAL MATCH becomes a left outer join ⟕;
* WITH/RETURN become projections π (with grouping γ when aggregates occur,
  dedup δ for DISTINCT, and sort/skip/limit for the ordering constructs
  outside the incrementally maintainable fragment);
* named paths become atomic path values built by the internal ``_path``
  constructor, with variable-length segments contributed as whole
  sub-paths — the paper's "paths as atomic units" design;
* Cypher's per-MATCH relationship uniqueness (no edge matched twice within
  one MATCH) is compiled to explicit disjointness predicates.
"""

from __future__ import annotations

from ..cypher import ast
from ..cypher.parser import UnionQuery
from ..cypher.unparser import unparse_expr
from ..errors import (
    CompilerError,
    CypherSemanticError,
    UnsupportedFeatureError,
)
from ..algebra import ops
from ..algebra.expressions import (
    AGGREGATE_NAMES,
    FUNCTIONS,
    AggregateSpec,
    contains_aggregate,
    is_aggregate_call,
)
from ..algebra.schema import AttrKind, Schema
from .rewrite import bottom_up, substitute_subexpression, substitute_variables

#: Graph-dependent functions resolved by the pushdown pass (or rewritten
#: here); they are not in the pure-function registry.
_GRAPH_FUNCTIONS = frozenset({"labels", "type", "properties", "id", "startnode", "endnode"})


def _eq(left: ast.Expr, right: ast.Expr) -> ast.Expr:
    return ast.Comparison((left, right), ("=",))


def _conjoin(predicates: list[ast.Expr]) -> ast.Expr | None:
    if not predicates:
        return None
    if len(predicates) == 1:
        return predicates[0]
    return ast.BooleanOp("AND", tuple(predicates))


class GraCompiler:
    """Stateful single-query compiler (one instance per query)."""

    def __init__(self) -> None:
        self._anon = 0
        # compiler-introduced column names, invisible to ``RETURN *``
        self._anon_names: set[str] = set()
        self._used_rel_vars: set[str] = set()
        # var-length relationship variable -> expression over its segment path
        self._rel_list_rewrites: dict[str, ast.Expr] = {}
        # single-hop directed edge var -> (source var, target var)
        self._edge_endpoints: dict[str, tuple[str, str]] = {}

    # -- helpers -----------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._anon += 1
        name = f"_{prefix}{self._anon}"
        self._anon_names.add(name)
        return name

    # -- expression preparation --------------------------------------------

    def _prepare(
        self, expr: ast.Expr, schema: Schema, allow_aggregates: bool = False
    ) -> ast.Expr:
        """Validate and normalise an expression against *schema*.

        Applies the variable rewrites accumulated from patterns (var-length
        relationship lists, ``id()``/``startNode()``/``endNode()``), checks
        function names and variable bindings, and rejects aggregates where
        they are not allowed.
        """
        expr = substitute_variables(expr, self._rel_list_rewrites)

        def normalise(node: ast.Expr) -> ast.Expr:
            if isinstance(node, ast.FunctionCall):
                if node.name == "id" and len(node.args) == 1:
                    return node.args[0]
                if node.name in ("startnode", "endnode") and len(node.args) == 1:
                    arg = node.args[0]
                    if (
                        isinstance(arg, ast.Variable)
                        and arg.name in self._edge_endpoints
                    ):
                        src, tgt = self._edge_endpoints[arg.name]
                        return ast.Variable(src if node.name == "startnode" else tgt)
                    raise UnsupportedFeatureError(
                        f"{node.name}() requires a directed, single-hop "
                        "pattern-bound relationship variable"
                    )
                if node.name == "keys" and len(node.args) == 1:
                    arg = node.args[0]
                    if (
                        isinstance(arg, ast.Variable)
                        and arg.name in schema
                        and schema.kind_of(arg.name) in (AttrKind.VERTEX, AttrKind.EDGE)
                    ):
                        return ast.FunctionCall(
                            "keys", (ast.FunctionCall("properties", (arg,)),)
                        )
            return node

        expr = bottom_up(expr, normalise)
        self._validate(expr, schema, allow_aggregates)
        return expr

    def _validate(
        self, expr: ast.Expr, schema: Schema, allow_aggregates: bool
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Variable):
                if node.name not in schema:
                    raise CypherSemanticError(f"variable {node.name!r} is not bound")
            elif isinstance(node, ast.Property):
                if (
                    isinstance(node.subject, ast.Variable)
                    and node.subject.name in schema
                    and schema.kind_of(node.subject.name) is AttrKind.PATH
                ):
                    raise CypherSemanticError(
                        f"paths have no properties: {node.subject.name}.{node.key}"
                    )
            elif isinstance(node, ast.HasLabel):
                if not isinstance(node.subject, ast.Variable):
                    raise UnsupportedFeatureError(
                        "label predicates apply to variables only"
                    )
                if (
                    node.subject.name in schema
                    and schema.kind_of(node.subject.name) is not AttrKind.VERTEX
                ):
                    raise CypherSemanticError(
                        f"label predicate on non-vertex {node.subject.name!r}"
                    )
            elif isinstance(node, ast.FunctionCall):
                if node.name in AGGREGATE_NAMES:
                    if not allow_aggregates:
                        raise CypherSemanticError(
                            f"aggregate {node.name}() is not allowed here"
                        )
                    for arg in node.args:
                        if contains_aggregate(arg):
                            raise CypherSemanticError("nested aggregates")
                elif node.name not in FUNCTIONS and node.name not in _GRAPH_FUNCTIONS:
                    raise CypherSemanticError(f"unknown function {node.name}()")
                if node.name in ("labels", "type", "properties"):
                    arg = node.args[0] if node.args else None
                    if not isinstance(arg, ast.Variable):
                        raise UnsupportedFeatureError(
                            f"{node.name}() applies to pattern variables only"
                        )
                    if arg.name in schema:
                        kind = schema.kind_of(arg.name)
                        expected = (
                            (AttrKind.VERTEX,)
                            if node.name == "labels"
                            else (AttrKind.EDGE,)
                            if node.name == "type"
                            else (AttrKind.VERTEX, AttrKind.EDGE)
                        )
                        if kind not in expected:
                            raise CypherSemanticError(
                                f"{node.name}() applied to {kind.value} "
                                f"variable {arg.name!r}"
                            )
            elif isinstance(node, ast.CountStar) and not allow_aggregates:
                raise CypherSemanticError("count(*) is not allowed here")

    # -- patterns ------------------------------------------------------------

    def _node_base(self, node: ast.NodePattern, var: str) -> ops.Operator:
        return ops.GetVertices(var, node.labels)

    def _pattern_part(
        self, part: ast.PatternPart
    ) -> tuple[ops.Operator, list[ast.Expr], list[str], list[str]]:
        """Compile one pattern part.

        Returns ``(plan, predicates, single_edge_vars, segment_path_vars)``;
        predicates carry pattern property maps and intra-part vertex reuse
        equalities, and are applied by the caller after joining parts.
        """
        predicates: list[ast.Expr] = []
        single_edges: list[str] = []
        segment_paths: list[str] = []
        path_components: list[ast.Expr] = []

        elements = part.elements
        first = elements[0]
        assert isinstance(first, ast.NodePattern)
        first_var = first.variable or self._fresh("v")
        plan: ops.Operator = self._node_base(first, first_var)
        for key, value in first.properties:
            predicates.append(_eq(ast.Property(ast.Variable(first_var), key), value))
        path_components.append(ast.Variable(first_var))
        previous_var = first_var

        index = 1
        while index < len(elements):
            rel = elements[index]
            node = elements[index + 1]
            assert isinstance(rel, ast.RelationshipPattern)
            assert isinstance(node, ast.NodePattern)
            index += 2

            node_var = node.variable or self._fresh("v")
            target_var = node_var
            if node_var in plan.schema:
                # cyclic pattern within the part, e.g. (a)-[:T]->(a):
                # expand to a fresh variable and assert equality.
                target_var = self._fresh("v")
                predicates.append(
                    _eq(ast.Variable(target_var), ast.Variable(node_var))
                )
            for key, value in node.properties:
                predicates.append(
                    _eq(ast.Property(ast.Variable(node_var), key), value)
                )

            rel_var = rel.variable
            if rel_var is not None:
                if (
                    rel_var in self._used_rel_vars
                    or rel_var in self._rel_list_rewrites
                ):
                    raise CypherSemanticError(
                        f"relationship variable {rel_var!r} is already bound"
                    )
                self._used_rel_vars.add(rel_var)

            if rel.var_length:
                if rel.properties:
                    raise UnsupportedFeatureError(
                        "property maps on variable-length relationships"
                    )
                path_alias = self._fresh("p")
                plan = ops.ExpandOut(
                    plan,
                    src=previous_var,
                    edge=self._fresh("e"),
                    tgt=target_var,
                    types=rel.types,
                    tgt_labels=node.labels,
                    direction=rel.direction,
                    min_hops=rel.min_hops,
                    max_hops=rel.max_hops,
                    path_alias=path_alias,
                )
                segment_paths.append(path_alias)
                # The segment path already ends at the target vertex, so it
                # stands in for both the relationship and the node component.
                path_components.append(ast.Variable(path_alias))
                if rel_var is not None:
                    self._rel_list_rewrites[rel_var] = ast.FunctionCall(
                        "relationships", (ast.Variable(path_alias),)
                    )
            else:
                edge_var = rel_var or self._fresh("e")
                plan = ops.ExpandOut(
                    plan,
                    src=previous_var,
                    edge=edge_var,
                    tgt=target_var,
                    types=rel.types,
                    tgt_labels=node.labels,
                    direction=rel.direction,
                )
                single_edges.append(edge_var)
                if rel.direction == "out":
                    self._edge_endpoints[edge_var] = (previous_var, target_var)
                elif rel.direction == "in":
                    self._edge_endpoints[edge_var] = (target_var, previous_var)
                for key, value in rel.properties:
                    predicates.append(
                        _eq(ast.Property(ast.Variable(edge_var), key), value)
                    )
                path_components.append(ast.Variable(edge_var))
                path_components.append(ast.Variable(target_var))

            previous_var = target_var

        if part.variable is not None:
            if part.variable in plan.schema:
                raise CypherSemanticError(
                    f"path variable {part.variable!r} is already bound"
                )
            items = [(name, ast.Variable(name)) for name in plan.schema.names]
            items.append(
                (part.variable, ast.FunctionCall("_path", tuple(path_components)))
            )
            plan = ops.Project(plan, tuple(items))
        return plan, predicates, single_edges, segment_paths

    def _relationships_of(self, path_var: str) -> ast.Expr:
        return ast.FunctionCall("relationships", (ast.Variable(path_var),))

    def _uniqueness_predicates(
        self, single_edges: list[str], segment_paths: list[str]
    ) -> list[ast.Expr]:
        """Cypher's per-MATCH relationship uniqueness as predicates."""
        predicates: list[ast.Expr] = []
        for i in range(len(single_edges)):
            for j in range(i + 1, len(single_edges)):
                predicates.append(
                    ast.Comparison(
                        (ast.Variable(single_edges[i]), ast.Variable(single_edges[j])),
                        ("<>",),
                    )
                )
        for edge in single_edges:
            for path in segment_paths:
                predicates.append(
                    ast.Not(ast.In(ast.Variable(edge), self._relationships_of(path)))
                )
        for i in range(len(segment_paths)):
            for j in range(i + 1, len(segment_paths)):
                predicates.append(
                    ast.FunctionCall(
                        "_disjoint",
                        (
                            self._relationships_of(segment_paths[i]),
                            self._relationships_of(segment_paths[j]),
                        ),
                    )
                )
        return predicates

    # -- clauses -------------------------------------------------------------

    def _match(self, plan: ops.Operator | None, clause: ast.MatchClause) -> ops.Operator:
        part_plans: list[ops.Operator] = []
        predicates: list[ast.Expr] = []
        single_edges: list[str] = []
        segment_paths: list[str] = []
        for part in clause.pattern.parts:
            part_plan, part_preds, edges, paths = self._pattern_part(part)
            part_plans.append(part_plan)
            predicates.extend(part_preds)
            single_edges.extend(edges)
            segment_paths.extend(paths)
        predicates.extend(self._uniqueness_predicates(single_edges, segment_paths))

        clause_plan = part_plans[0]
        for part_plan in part_plans[1:]:
            clause_plan = ops.Join(clause_plan, part_plan)

        if clause.optional:
            left = plan if plan is not None else ops.Unit()
            inner_predicates = list(predicates)
            if clause.where is not None:
                combined_schema, _ = left.schema.join_with(clause_plan.schema)
                where = self._prepare(clause.where, combined_schema)
                # Pull left-bound vertex variables the predicate needs into
                # the optional side so the predicate can be evaluated there
                # (ON-condition semantics).
                needed = ast.free_variables(where) - set(clause_plan.schema.names)
                for name in sorted(needed):
                    if name not in left.schema:
                        raise CypherSemanticError(f"variable {name!r} is not bound")
                    if left.schema.kind_of(name) is not AttrKind.VERTEX:
                        raise UnsupportedFeatureError(
                            "OPTIONAL MATCH WHERE may only reference vertex "
                            "variables from the outer scope "
                            f"(got {name!r})"
                        )
                    clause_plan = ops.Join(clause_plan, ops.GetVertices(name, ()))
                inner_predicates.append(where)
            prepared = [
                self._prepare(p, clause_plan.schema) for p in inner_predicates
            ]
            predicate = _conjoin(prepared)
            if predicate is not None:
                clause_plan = ops.Select(clause_plan, predicate)
            return ops.LeftOuterJoin(left, clause_plan)

        plan = clause_plan if plan is None else ops.Join(plan, clause_plan)
        if clause.where is not None:
            if contains_aggregate(clause.where):
                raise CypherSemanticError("aggregates are not allowed in WHERE")
            predicates.append(clause.where)
        prepared = [self._prepare(p, plan.schema) for p in predicates]
        predicate = _conjoin(prepared)
        if predicate is not None:
            plan = ops.Select(plan, predicate)
        return plan

    def _default_name(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.Variable):
            return expr.name
        if isinstance(expr, ast.Property) and isinstance(expr.subject, ast.Variable):
            return f"{expr.subject.name}.{expr.key}"
        return unparse_expr(expr)

    def _projection(
        self,
        plan: ops.Operator,
        body: ast.ProjectionBody,
        where: ast.Expr | None,
    ) -> ops.Operator:
        """Compile a WITH/RETURN projection body onto *plan*."""
        items = body.items
        if body.star:
            # ``*`` expands to the user-visible columns, in schema order,
            # ahead of any explicit items; compiler-introduced names
            # (anonymous pattern variables) stay hidden.
            visible = [
                name
                for name in plan.schema.names
                if name not in self._anon_names
            ]
            if not visible:
                raise CypherSemanticError(
                    "* is not allowed when there are no variables in scope"
                )
            items = (
                tuple(
                    ast.ReturnItem(ast.Variable(name), None)
                    for name in visible
                )
                + items
            )
        named_items: list[tuple[str, ast.Expr]] = []
        seen: set[str] = set()
        for item in items:
            expr = self._prepare(item.expression, plan.schema, allow_aggregates=True)
            name = item.alias or self._default_name(item.expression)
            if name in seen:
                raise CypherSemanticError(f"duplicate column name {name!r}")
            seen.add(name)
            named_items.append((name, expr))

        if any(contains_aggregate(expr) for _, expr in named_items):
            plan = self._aggregate_projection(plan, named_items)
        else:
            plan = ops.Project(plan, tuple(named_items))

        if body.distinct:
            plan = ops.Dedup(plan)

        if where is not None:
            prepared = self._prepare(where, plan.schema)
            plan = ops.Select(plan, prepared)

        if body.order_by:
            sort_items = []
            for order in body.order_by:
                # ORDER BY may reference output columns either by alias or by
                # repeating the projected expression verbatim.
                expr = order.expression
                for name, item_expr in named_items:
                    expr = substitute_subexpression(expr, item_expr, ast.Variable(name))
                expr = self._prepare(expr, plan.schema)
                sort_items.append((expr, order.ascending))
            plan = ops.Sort(plan, tuple(sort_items))
        if body.skip is not None:
            plan = ops.Skip(plan, self._constant(body.skip, "SKIP"))
        if body.limit is not None:
            plan = ops.Limit(plan, self._constant(body.limit, "LIMIT"))

        # Projected aliases shadow pattern-level rewrites from here on.
        self._rel_list_rewrites = {
            k: v for k, v in self._rel_list_rewrites.items() if k not in plan.schema
        }
        self._edge_endpoints = {
            k: v
            for k, v in self._edge_endpoints.items()
            if k in plan.schema
            and v[0] in plan.schema
            and v[1] in plan.schema
        }
        return plan

    def _constant(self, expr: ast.Expr, what: str) -> ast.Expr:
        if ast.free_variables(expr):
            raise CypherSemanticError(f"{what} must be a constant expression")
        if contains_aggregate(expr):
            raise CypherSemanticError(f"aggregates are not allowed in {what}")
        return expr

    def _aggregate_projection(
        self, plan: ops.Operator, named_items: list[tuple[str, ast.Expr]]
    ) -> ops.Operator:
        """Build γ + π for a projection containing aggregate calls.

        Grouping keys are the aggregate-free items (Cypher's rule); each
        aggregate call becomes an internal column, and the projection on top
        recombines them into the requested output expressions.
        """
        keys = [(name, expr) for name, expr in named_items if not contains_aggregate(expr)]
        specs: list[AggregateSpec] = []
        post_items: list[tuple[str, ast.Expr]] = []

        def extract(node: ast.Expr) -> ast.Expr:
            if is_aggregate_call(node):
                output = f"_agg{len(specs)}"
                if isinstance(node, ast.CountStar):
                    specs.append(AggregateSpec("count", None, False, output))
                else:
                    assert isinstance(node, ast.FunctionCall)
                    if len(node.args) != 1:
                        raise CypherSemanticError(
                            f"{node.name}() takes exactly one argument"
                        )
                    specs.append(
                        AggregateSpec(node.name, node.args[0], node.distinct, output)
                    )
                return ast.Variable(output)
            return node

        for name, expr in named_items:
            if not contains_aggregate(expr):
                post_items.append((name, ast.Variable(name)))
                continue
            rewritten = bottom_up(expr, extract)
            # Replace any subexpression equal to a grouping key with a
            # reference to that key's output column.
            for key_name, key_expr in keys:
                rewritten = substitute_subexpression(
                    rewritten, key_expr, ast.Variable(key_name)
                )
            allowed = {key_name for key_name, _ in keys}
            allowed |= {spec.output for spec in specs}
            stray = ast.free_variables(rewritten) - allowed
            if stray:
                raise CypherSemanticError(
                    "non-grouped variables in aggregate expression: "
                    + ", ".join(sorted(stray))
                )
            post_items.append((name, rewritten))

        aggregate = ops.Aggregate(plan, tuple(keys), tuple(specs))
        return ops.Project(aggregate, tuple(post_items))

    # -- entry ----------------------------------------------------------------

    def compile_query(self, query: ast.Query) -> ops.Operator:
        plan: ops.Operator | None = None
        for clause in query.clauses:
            if isinstance(clause, ast.MatchClause):
                plan = self._match(plan, clause)
            elif isinstance(clause, ast.UnwindClause):
                base = plan if plan is not None else ops.Unit()
                expr = self._prepare(clause.expression, base.schema)
                plan = ops.Unwind(base, expr, clause.alias)
            elif isinstance(clause, ast.WithClause):
                base = plan if plan is not None else ops.Unit()
                plan = self._projection(base, clause.body, clause.where)
            else:  # pragma: no cover - parser produces no other clause types
                raise CompilerError(f"unexpected clause {type(clause).__name__}")
        base = plan if plan is not None else ops.Unit()
        return self._projection(base, query.return_clause.body, None)


def compile_to_gra(query: ast.Query | UnionQuery) -> ops.Operator:
    """Compile a parsed query (or UNION of queries) to a GRA plan."""
    if isinstance(query, UnionQuery):
        plans = [GraCompiler().compile_query(q) for q in query.queries]
        plan = plans[0]
        for other in plans[1:]:
            plan = ops.Union(plan, other)
        if not query.all:
            plan = ops.Dedup(plan)
        return plan
    return GraCompiler().compile_query(query)
