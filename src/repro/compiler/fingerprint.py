"""Canonical fingerprints for FRA subtrees (cross-view subplan sharing).

Two views that both compute ``σ(⋈(©(:Post), ⇑[:REPLY]))`` should pay for
that subnetwork **once** — the paper's engine lineage (ingraph, Viatra,
refs [31, 33]) shares whole Rete subnetworks between queries, not just
base-relation inputs.  The sharing decision needs an equality notion for
subplans that is *structural modulo variable renaming*: tuple layouts are
positional, so ``MATCH (p:Post)-[:REPLY]->(c:Comm)`` and
``MATCH (x:Post)-[:REPLY]->(y:Comm)`` build byte-identical dataflow nodes
even though every variable differs.

:func:`fingerprint` computes that notion as a hashable canonical tree:

* variable references are replaced by their *schema position* in the
  operator's input (alpha-equivalence — names never appear),
* output attribute names of π / γ / ω are dropped (they only feed
  downstream references, which are themselves canonicalised by position),
* label/type *sets* are sorted (``©(:A:B)`` ≡ ``©(:B:A)``),
* pushed-down projections keep their order (they fix the tuple layout)
  but are keyed by role/kind/key, not by variable,
* query parameters stay **symbolic** (``$min`` fingerprints as its name);
  whether two views' bindings for ``$min`` actually agree is decided by
  the sharing layer, which pairs the fingerprint with the resolved
  bindings of exactly the parameters the subtree mentions.

:func:`generalized_fingerprint` abstracts one step further for the
cross-binding sharing tier: parameter *names* become first-occurrence
positions (``σ[x > $min]`` ≡ ``σ[x > $lo]``), with the subtree's own
names recorded in position order so bindings translate across views.

Anything the canonicaliser does not understand (an unknown operator, an
unhashable literal) makes the subtree — and therefore every ancestor —
unshareable; :func:`fingerprint` returns ``None`` and the network builder
falls back to a private node.  That keeps sharing a pure optimisation:
opting out is always safe.

Fingerprints are **memoised per operator** (operators are immutable, so
the cached value can never go stale): each subtree is canonicalised once,
its parents embed the cached child structures, and repeated callers —
``ReteNetwork._build`` asking per level, the view-answering matcher asking
per query — pay a dict-free attribute read instead of re-walking the
subtree, turning the total cost per plan from O(depth·size) into O(size).
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields

from ..algebra import ops
from ..algebra.schema import Schema
from ..cypher import ast
from ..errors import CompilerError


class _Unfingerprintable(Exception):
    """Internal: this subtree cannot participate in subplan sharing."""


class _ParamTag:
    """Singleton head of parameter leaves in canonical structures.

    A plain string head could collide with user data (a sorted label/type
    tuple whose first element happens to be that string); an identity
    singleton cannot appear in any canonicalised field, so parameter
    leaves stay unambiguous for :func:`generalized_fingerprint`.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "$"


PARAM_TAG = _ParamTag()


@dataclass(frozen=True, slots=True)
class SubplanFingerprint:
    """A canonical, hashable identity for one FRA subtree.

    ``structure`` is the alpha-equivalent canonical tree; ``parameters``
    names every ``$param`` the subtree mentions, so the sharing layer can
    refuse to share across differing bindings.
    """

    structure: tuple
    parameters: frozenset[str]


@dataclass(frozen=True, slots=True)
class GeneralizedFingerprint:
    """A fingerprint further canonicalised over parameter *names*.

    The resolved :class:`SubplanFingerprint` keeps parameters symbolic but
    name-sensitive (``σ[x > $min]`` ≢ ``σ[x > $lo]``).  For cross-binding
    sharing the name is as irrelevant as the binding: two views asking the
    same shape under any parameter name and any binding should feed from
    one binding-indexed node.  Here every ``(PARAM_TAG, name)`` leaf is
    replaced by its *first-occurrence position* in a deterministic walk of
    the canonical structure (de Bruijn-style), and ``param_order`` records
    this subtree's own names in exactly that position order — which is how
    a probing view translates *its* bindings into the position-aligned
    partition key (and how the node owner maps positions back to the
    creator's names for evaluation).
    """

    structure: tuple
    param_order: tuple[str, ...]


def fingerprint(op: ops.Operator) -> SubplanFingerprint | None:
    """Canonical fingerprint of *op*'s subtree, or ``None`` if unshareable.

    Memoised on the operator itself (``op._fingerprint``); children are
    fingerprinted through this entry point too, so one pass over a fresh
    plan caches every subtree bottom-up.
    """
    try:
        return op._fingerprint
    except AttributeError:
        pass
    parameters: set[str] = set()
    result: SubplanFingerprint | None
    try:
        structure = _fp(op, parameters)
    except _Unfingerprintable:
        result = None
    else:
        result = SubplanFingerprint(structure, frozenset(parameters))
    object.__setattr__(op, "_fingerprint", result)
    return result


def generalized_fingerprint(op: ops.Operator) -> GeneralizedFingerprint | None:
    """The parameter-generalised fingerprint of *op*'s subtree, or ``None``.

    ``None`` exactly when :func:`fingerprint` is ``None`` (unshareable) —
    generalisation never changes shareability, only the granularity the
    sharing cache can be probed at.  Memoised on the operator
    (``op._generalized``) like the resolved fingerprint.
    """
    try:
        return op._generalized
    except AttributeError:
        pass
    fp = fingerprint(op)
    result: GeneralizedFingerprint | None
    if fp is None:
        result = None
    else:
        order: list[str] = []
        structure = _generalize(fp.structure, order)
        result = GeneralizedFingerprint(structure, tuple(order))
    object.__setattr__(op, "_generalized", result)
    return result


def _generalize(structure, order: list[str]):
    """Replace ``(PARAM_TAG, name)`` leaves by first-occurrence positions."""
    if not isinstance(structure, tuple):
        return structure
    if len(structure) == 2 and structure[0] is PARAM_TAG:
        name = structure[1]
        try:
            position = order.index(name)
        except ValueError:
            position = len(order)
            order.append(name)
        return (PARAM_TAG, position)
    return tuple(_generalize(item, order) for item in structure)


def _child(op: ops.Operator, parameters: set[str]) -> tuple:
    """Memoised recursion step: a child's cached structure, or raise."""
    fp = fingerprint(op)
    if fp is None:
        raise _Unfingerprintable(type(op).__name__)
    parameters |= fp.parameters
    return fp.structure


# ---------------------------------------------------------------------------
# expression canonicalisation (names → schema positions)
# ---------------------------------------------------------------------------


def _canon_scalar(value) -> tuple:
    """A literal constant; the type tag keeps ``1`` and ``True`` apart."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return (type(value).__name__, value)
    raise _Unfingerprintable(f"literal {value!r}")


def _canon_expr(expr: ast.Expr, schema: Schema, parameters: set[str]) -> tuple:
    if isinstance(expr, ast.Variable):
        try:
            return ("var", schema.index_of(expr.name))
        except CompilerError:
            raise _Unfingerprintable(expr.name) from None
    if isinstance(expr, ast.Parameter):
        parameters.add(expr.name)
        return (PARAM_TAG, expr.name)
    if isinstance(expr, ast.Literal):
        return ("lit",) + _canon_scalar(expr.value)
    # Every other expression node is a frozen dataclass whose fields are
    # sub-expressions, tuples thereof, or plain scalars — canonicalise
    # generically so new AST nodes are covered without touching this file.
    parts = tuple(
        _canon_field(getattr(expr, field.name), schema, parameters)
        for field in dataclass_fields(expr)
    )
    return (type(expr).__name__, parts)


def _canon_field(value, schema: Schema, parameters: set[str]):
    if isinstance(value, ast.Expr):
        return _canon_expr(value, schema, parameters)
    if isinstance(value, tuple):
        return tuple(_canon_field(item, schema, parameters) for item in value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise _Unfingerprintable(f"field {value!r}")


# ---------------------------------------------------------------------------
# operator canonicalisation
# ---------------------------------------------------------------------------


def _fp(op: ops.Operator, parameters: set[str]) -> tuple:
    if isinstance(op, ops.Unit):
        return ("unit",)

    if isinstance(op, ops.GetVertices):
        return (
            "get-v",
            tuple(sorted(op.labels)),
            tuple((p.kind, p.key) for p in op.projections),
        )

    if isinstance(op, ops.GetEdges):
        return (
            "get-e",
            tuple(sorted(op.types)),
            tuple(sorted(op.src_labels)),
            tuple(sorted(op.tgt_labels)),
            op.directed,
            op.projection_roles(),
        )

    if isinstance(op, ops.Select):
        child = op.children[0]
        return (
            "select",
            _child(child, parameters),
            _canon_expr(op.predicate, child.schema, parameters),
        )

    if isinstance(op, ops.Project):
        child = op.children[0]
        return (
            "project",
            _child(child, parameters),
            tuple(
                _canon_expr(expr, child.schema, parameters) for _, expr in op.items
            ),
        )

    if isinstance(op, ops.Dedup):
        return ("dedup", _child(op.children[0], parameters))

    if isinstance(op, ops.Unwind):
        child = op.children[0]
        return (
            "unwind",
            _child(child, parameters),
            _canon_expr(op.expression, child.schema, parameters),
        )

    if isinstance(op, ops.Aggregate):
        child = op.children[0]
        return (
            "aggregate",
            _child(child, parameters),
            tuple(_canon_expr(expr, child.schema, parameters) for _, expr in op.keys),
            tuple(
                (
                    spec.function,
                    spec.distinct,
                    _canon_expr(spec.argument, child.schema, parameters)
                    if spec.argument is not None
                    else None,
                )
                for spec in op.aggregates
            ),
        )

    if isinstance(op, ops.Join):
        left, right = op.children
        return (
            "join",
            _child(left, parameters),
            _child(right, parameters),
            tuple(left.schema.index_of(n) for n in op.common),
            tuple(right.schema.index_of(n) for n in op.common),
            tuple(i for i, a in enumerate(right.schema) if a.name not in op.common),
        )

    if isinstance(op, ops.AntiJoin):
        left, right = op.children
        return (
            "antijoin",
            _child(left, parameters),
            _child(right, parameters),
            tuple(left.schema.index_of(n) for n in op.common),
            tuple(right.schema.index_of(n) for n in op.common),
        )

    if isinstance(op, ops.LeftOuterJoin):
        left, right = op.children
        return (
            "leftouterjoin",
            _child(left, parameters),
            _child(right, parameters),
            tuple(left.schema.index_of(n) for n in op.common),
            tuple(right.schema.index_of(n) for n in op.common),
            tuple(i for i, a in enumerate(right.schema) if a.name not in op.common),
        )

    if isinstance(op, ops.Union):
        return (
            "union",
            _child(op.children[0], parameters),
            _child(op.children[1], parameters),
            op.right_permutation,
        )

    if isinstance(op, ops.TransitiveJoin):
        left = op.children[0]
        return (
            "transitive",
            _child(left, parameters),
            _child(op.edges, parameters),
            left.schema.index_of(op.source),
            op.direction,
            op.min_hops,
            op.max_hops,
            op.path_alias is not None,
        )

    raise _Unfingerprintable(type(op).__name__)
