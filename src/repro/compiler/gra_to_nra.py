"""Compilation step 2 (paper §4): GRA → NRA.

Two transformations happen here, exactly as the paper describes:

1. **Expand elimination** — "as expand operators cannot be maintained
   incrementally, they are replaced with joins": each single-hop ↑ becomes a
   natural join with a ``get-edges`` (⇑) base relation, and each
   variable-length ↑ becomes a transitive join ⋈* with a label-free ⇑
   (final-vertex label constraints become a companion ``get-vertices``
   join, preserving Cypher's last-vertex-only semantics).

2. **Explicit unnesting** — every entity property access inside an
   expression becomes an attribute-directed unnest µ directly below the
   consuming operator (the paper's ``µ_{c.lang→cL}``), and the expression
   is rewritten to reference the unnested attribute (we keep the dotted
   name ``c.lang``).  The graph-dependent functions ``labels()``,
   ``type()``, ``properties()`` and label predicates get the same
   treatment via meta-attribute unnests.
"""

from __future__ import annotations

from ..algebra import ops
from ..algebra.schema import AttrKind, Schema
from ..cypher import ast
from ..errors import CompilerError
from .rewrite import bottom_up
from .treeutil import rebuild


class NraLowering:
    def __init__(self) -> None:
        self._counter = 0

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"_{prefix}{self._counter}n"

    # -- expression rewriting -------------------------------------------------

    def _rewrite_expr(
        self, expr: ast.Expr, schema: Schema
    ) -> tuple[ast.Expr, list[ops.PropertyProjection]]:
        """Replace entity dereferences with unnested-attribute references."""
        needed: dict[str, ops.PropertyProjection] = {}

        def note(projection: ops.PropertyProjection) -> ast.Variable:
            needed.setdefault(projection.output, projection)
            return ast.Variable(projection.output)

        def rewrite(node: ast.Expr) -> ast.Expr:
            if isinstance(node, ast.Property) and isinstance(node.subject, ast.Variable):
                name = node.subject.name
                if name in schema and schema.kind_of(name) in (
                    AttrKind.VERTEX,
                    AttrKind.EDGE,
                ):
                    return note(ops.PropertyProjection(name, "property", node.key))
            elif isinstance(node, ast.FunctionCall) and len(node.args) == 1:
                arg = node.args[0]
                if isinstance(arg, ast.Variable) and arg.name in schema:
                    kind = schema.kind_of(arg.name)
                    if node.name == "labels" and kind is AttrKind.VERTEX:
                        return note(ops.PropertyProjection(arg.name, "labels"))
                    if node.name == "type" and kind is AttrKind.EDGE:
                        return note(ops.PropertyProjection(arg.name, "type"))
                    if node.name == "properties" and kind in (
                        AttrKind.VERTEX,
                        AttrKind.EDGE,
                    ):
                        return note(ops.PropertyProjection(arg.name, "properties"))
            elif isinstance(node, ast.HasLabel):
                subject = node.subject
                if isinstance(subject, ast.Variable) and subject.name in schema:
                    labels_ref = note(ops.PropertyProjection(subject.name, "labels"))
                    return ast.FunctionCall(
                        "_has_labels",
                        (
                            labels_ref,
                            ast.ListLiteral(
                                tuple(ast.Literal(l) for l in node.labels)
                            ),
                        ),
                    )
            return node

        rewritten = bottom_up(expr, rewrite)
        return rewritten, sorted(needed.values(), key=lambda p: p.output)

    def _unnest(
        self, child: ops.Operator, projections: list[ops.PropertyProjection]
    ) -> ops.Operator:
        for projection in projections:
            if projection.output not in child.schema:
                child = ops.PropertyUnnest(child, projection)
        return child

    # -- operator lowering ------------------------------------------------------

    def lower(self, op: ops.Operator) -> ops.Operator:
        children = [self.lower(c) for c in op.children]

        if isinstance(op, ops.ExpandOut):
            return self._lower_expand(op, children[0])

        if isinstance(op, ops.Select):
            predicate, needed = self._rewrite_expr(op.predicate, children[0].schema)
            return ops.Select(self._unnest(children[0], needed), predicate)

        if isinstance(op, ops.Project):
            items = []
            all_needed: list[ops.PropertyProjection] = []
            for name, expr in op.items:
                rewritten, needed = self._rewrite_expr(expr, children[0].schema)
                items.append((name, rewritten))
                all_needed.extend(needed)
            return ops.Project(self._unnest(children[0], all_needed), tuple(items))

        if isinstance(op, ops.Unwind):
            expr, needed = self._rewrite_expr(op.expression, children[0].schema)
            return ops.Unwind(self._unnest(children[0], needed), expr, op.alias)

        if isinstance(op, ops.Aggregate):
            keys = []
            all_needed = []
            for name, expr in op.keys:
                rewritten, needed = self._rewrite_expr(expr, children[0].schema)
                keys.append((name, rewritten))
                all_needed.extend(needed)
            aggregates = []
            for spec in op.aggregates:
                if spec.argument is None:
                    aggregates.append(spec)
                    continue
                rewritten, needed = self._rewrite_expr(
                    spec.argument, children[0].schema
                )
                all_needed.extend(needed)
                aggregates.append(
                    type(spec)(spec.function, rewritten, spec.distinct, spec.output)
                )
            return ops.Aggregate(
                self._unnest(children[0], all_needed), tuple(keys), tuple(aggregates)
            )

        if isinstance(op, ops.Sort):
            items = []
            all_needed = []
            for expr, ascending in op.items:
                rewritten, needed = self._rewrite_expr(expr, children[0].schema)
                items.append((rewritten, ascending))
                all_needed.extend(needed)
            return ops.Sort(self._unnest(children[0], all_needed), tuple(items))

        return rebuild(op, children)

    def _lower_expand(self, op: ops.ExpandOut, child: ops.Operator) -> ops.Operator:
        if not op.var_length:
            if op.direction == "out":
                edges = ops.GetEdges(
                    op.src, op.edge, op.tgt, op.types, tgt_labels=op.tgt_labels
                )
            elif op.direction == "in":
                edges = ops.GetEdges(
                    op.tgt, op.edge, op.src, op.types, src_labels=op.tgt_labels
                )
            else:
                edges = ops.GetEdges(
                    op.src,
                    op.edge,
                    op.tgt,
                    op.types,
                    tgt_labels=op.tgt_labels,
                    directed=False,
                )
            return ops.Join(child, edges)

        edges = ops.GetEdges(
            self._fresh("s"), self._fresh("e"), self._fresh("t"), op.types
        )
        plan: ops.Operator = ops.TransitiveJoin(
            child,
            edges,
            source=op.src,
            target=op.tgt,
            direction=op.direction,
            min_hops=op.min_hops,
            max_hops=op.max_hops,
            path_alias=op.path_alias,
        )
        if op.tgt_labels:
            plan = ops.Join(plan, ops.GetVertices(op.tgt, op.tgt_labels))
        return plan


def lower_to_nra(plan: ops.Operator) -> ops.Operator:
    """Eliminate expands and make property access explicit via µ."""
    return NraLowering().lower(plan)
