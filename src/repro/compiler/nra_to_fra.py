"""Compilation step 3 (paper §4): NRA → FRA via schema inference.

Property graphs are schema-free, so — quoting the paper — "the schema of
the nested relations is not known in advance and has to be inferred based
on the query.  Therefore, this step includes pushing down nested attributes
to the © and ⇑ operators."

The pass walks the tree top-down carrying the set of *required* pushed
attributes (dotted names like ``p.lang`` and meta names like
``labels(n)``).  Each µ disappears, adding its output to the requirement
set; base operators materialise the requirements they own as
:class:`~repro.algebra.ops.PropertyProjection` columns (the paper's
``{lang → pL}`` annotations); projections and aggregations forward
requirements through renames; transitive joins route final-vertex
requirements to a companion ``get-vertices`` join, since the closure's
target vertex is not bound by any base operator.
"""

from __future__ import annotations

import re

from ..algebra import ops
from ..errors import CompilerError
from ..cypher import ast

_META_RE = re.compile(r"^(labels|type|properties)\((\w+)\)$")


def parse_pushed_attribute(name: str) -> ops.PropertyProjection:
    """Parse a pushed-attribute name back into a projection spec."""
    meta = _META_RE.match(name)
    if meta:
        return ops.PropertyProjection(meta.group(2), meta.group(1))
    subject, _, key = name.partition(".")
    if not key:
        raise CompilerError(f"{name!r} is not a pushed attribute")
    return ops.PropertyProjection(subject, "property", key)


def pushed_subject(name: str) -> str:
    return parse_pushed_attribute(name).subject


def _rename_attribute(name: str, new_subject: str) -> str:
    projection = parse_pushed_attribute(name)
    return ops.PropertyProjection(
        new_subject, projection.kind, projection.key
    ).output


def can_provide(op: ops.Operator, subject: str) -> bool:
    """Can this subtree materialise pushed attributes of *subject*?"""
    if isinstance(op, ops.GetVertices):
        return op.var == subject
    if isinstance(op, ops.GetEdges):
        return subject in (op.src, op.edge, op.tgt)
    if isinstance(op, (ops.Select, ops.Dedup, ops.Sort, ops.Skip, ops.Limit)):
        return can_provide(op.children[0], subject)
    if isinstance(op, (ops.Unwind, ops.PropertyUnnest)):
        return can_provide(op.children[0], subject)
    if isinstance(op, ops.Project):
        for name, expr in op.items:
            if name == subject:
                return isinstance(expr, ast.Variable) and can_provide(
                    op.children[0], expr.name
                )
        return False
    if isinstance(op, ops.Aggregate):
        for name, expr in op.keys:
            if name == subject:
                return isinstance(expr, ast.Variable) and can_provide(
                    op.children[0], expr.name
                )
        return False
    if isinstance(op, (ops.Join, ops.LeftOuterJoin)):
        return can_provide(op.children[0], subject) or can_provide(
            op.children[1], subject
        )
    if isinstance(op, ops.AntiJoin):
        return can_provide(op.children[0], subject)
    if isinstance(op, ops.Union):
        return can_provide(op.children[0], subject) and can_provide(
            op.children[1], subject
        )
    if isinstance(op, ops.TransitiveJoin):
        return subject != op.target and can_provide(op.children[0], subject)
    return False


def _flatten(op: ops.Operator, required: frozenset[str]) -> ops.Operator:
    if isinstance(op, ops.PropertyUnnest):
        return _flatten(op.children[0], required | {op.projection.output})

    if isinstance(op, ops.GetVertices):
        extra = []
        for name in sorted(required):
            projection = parse_pushed_attribute(name)
            if projection.subject != op.var:
                raise CompilerError(
                    f"pushdown misrouted: {name!r} reached ©({op.var})"
                )
            extra.append(projection)
        merged = dict((p.output, p) for p in op.projections)
        merged.update((p.output, p) for p in extra)
        return ops.GetVertices(
            op.var, op.labels, tuple(sorted(merged.values(), key=lambda p: p.output))
        )

    if isinstance(op, ops.GetEdges):
        extra = []
        for name in sorted(required):
            projection = parse_pushed_attribute(name)
            if projection.subject not in (op.src, op.edge, op.tgt):
                raise CompilerError(
                    f"pushdown misrouted: {name!r} reached ⇑({op.src},{op.edge},{op.tgt})"
                )
            extra.append(projection)
        merged = dict((p.output, p) for p in op.projections)
        merged.update((p.output, p) for p in extra)
        return ops.GetEdges(
            op.src,
            op.edge,
            op.tgt,
            op.types,
            src_labels=op.src_labels,
            tgt_labels=op.tgt_labels,
            directed=op.directed,
            projections=tuple(sorted(merged.values(), key=lambda p: p.output)),
        )

    if isinstance(op, ops.Unit):
        if required:
            raise CompilerError(f"cannot push {sorted(required)} into unit")
        return op

    if isinstance(op, ops.Select):
        return ops.Select(_flatten(op.children[0], required), op.predicate)

    if isinstance(op, ops.Dedup):
        return ops.Dedup(_flatten(op.children[0], required))

    if isinstance(op, ops.Unwind):
        return ops.Unwind(
            _flatten(op.children[0], required), op.expression, op.alias
        )

    if isinstance(op, ops.Sort):
        return ops.Sort(_flatten(op.children[0], required), op.items)

    if isinstance(op, ops.Skip):
        return ops.Skip(_flatten(op.children[0], required), op.count)

    if isinstance(op, ops.Limit):
        return ops.Limit(_flatten(op.children[0], required), op.count)

    if isinstance(op, ops.Project):
        extra_items, child_required = _through_rename(
            required, op.items, "projection"
        )
        child = _flatten(op.children[0], child_required)
        return ops.Project(child, op.items + extra_items)

    if isinstance(op, ops.Aggregate):
        extra_keys, child_required = _through_rename(
            required, op.keys, "aggregation"
        )
        child = _flatten(op.children[0], child_required)
        return ops.Aggregate(child, op.keys + extra_keys, op.aggregates)

    if isinstance(op, (ops.Join, ops.LeftOuterJoin, ops.AntiJoin)):
        left, right = op.children
        left_required: set[str] = set()
        right_required: set[str] = set()
        for name in required:
            subject = pushed_subject(name)
            if can_provide(left, subject):
                left_required.add(name)
            elif not isinstance(op, ops.AntiJoin) and can_provide(right, subject):
                right_required.add(name)
            else:
                raise CompilerError(
                    f"no operand of {type(op).__name__} can provide {name!r}"
                )
        new_left = _flatten(left, frozenset(left_required))
        new_right = _flatten(right, frozenset(right_required))
        return type(op)(new_left, new_right)

    if isinstance(op, ops.Union):
        left = _flatten(op.children[0], required)
        right = _flatten(op.children[1], required)
        return ops.Union(left, right)

    if isinstance(op, ops.TransitiveJoin):
        left_required: set[str] = set()
        target_projections: list[ops.PropertyProjection] = []
        for name in required:
            subject = pushed_subject(name)
            if subject == op.target:
                target_projections.append(parse_pushed_attribute(name))
            elif can_provide(op.children[0], subject):
                left_required.add(name)
            else:
                raise CompilerError(
                    f"transitive join cannot provide {name!r}"
                )
        left = _flatten(op.children[0], frozenset(left_required))
        edges = op.children[1]
        assert isinstance(edges, ops.GetEdges)
        plan: ops.Operator = ops.TransitiveJoin(
            left,
            edges,
            source=op.source,
            target=op.target,
            direction=op.direction,
            min_hops=op.min_hops,
            max_hops=op.max_hops,
            path_alias=op.path_alias,
        )
        if target_projections:
            companion = ops.GetVertices(
                op.target,
                (),
                tuple(sorted(target_projections, key=lambda p: p.output)),
            )
            plan = ops.Join(plan, companion)
        return plan

    raise CompilerError(f"cannot flatten {type(op).__name__}")


def _through_rename(
    required: frozenset[str],
    items: tuple[tuple[str, ast.Expr], ...],
    what: str,
) -> tuple[tuple[tuple[str, ast.Expr], ...], frozenset[str]]:
    """Translate required pushed attributes through a rename boundary.

    For a required ``q.lang`` and an item ``q ← Variable(p)``, the child
    must provide ``p.lang`` and the boundary republishes it as ``q.lang``.
    Returns the extra pass-through items and the child requirement set.
    """
    by_name = dict(items)
    extra: list[tuple[str, ast.Expr]] = []
    child_required: set[str] = set()
    for name in sorted(required):
        if name in by_name:
            continue  # already produced explicitly
        subject = pushed_subject(name)
        source = by_name.get(subject)
        if source is None:
            raise CompilerError(
                f"{what} drops {subject!r}, cannot provide {name!r}"
            )
        if not isinstance(source, ast.Variable):
            raise CompilerError(
                f"{what} computes {subject!r}; pushed attribute {name!r} "
                "cannot flow through a computed column"
            )
        child_name = _rename_attribute(name, source.name)
        child_required.add(child_name)
        extra.append((name, ast.Variable(child_name)))
    return tuple(extra), frozenset(child_required)


def flatten_to_fra(plan: ops.Operator) -> ops.Operator:
    """Flatten an NRA plan to FRA with inferred minimal base schemas."""
    return _flatten(plan, frozenset())
