"""FRA plan optimiser.

Implements the optimisations studied in the companion work the paper cites
for incremental engines ([31], "Evaluation of Optimization Strategies for
Incremental Graph Query Evaluation"): the dominant one for Rete-style
networks is *selection pushdown* — filtering tuples before they reach
stateful join memories shrinks both state and delta traffic.

The pass splits conjunctive predicates and sinks each conjunct as deep as
its variable footprint allows (never through outer-join null-extension,
aggregation, or ordering boundaries, where it would change semantics).
"""

from __future__ import annotations

from ..algebra import ops
from ..cypher import ast
from .treeutil import rebuild


def split_conjuncts(predicate: ast.Expr) -> list[ast.Expr]:
    if isinstance(predicate, ast.BooleanOp) and predicate.op == "AND":
        out: list[ast.Expr] = []
        for operand in predicate.operands:
            out.extend(split_conjuncts(operand))
        return out
    return [predicate]


def conjoin(predicates: list[ast.Expr]) -> ast.Expr:
    if len(predicates) == 1:
        return predicates[0]
    return ast.BooleanOp("AND", tuple(predicates))


def _select(child: ops.Operator, predicates: list[ast.Expr]) -> ops.Operator:
    if not predicates:
        return child
    return ops.Select(child, conjoin(predicates))


def _push_into(op: ops.Operator, predicates: list[ast.Expr]) -> ops.Operator:
    """Push *predicates* as far down into *op* as legal; returns new tree.

    Any conjunct that cannot sink below *op* is applied directly above it.
    """
    if not predicates:
        return _optimize(op)

    if isinstance(op, ops.Select):
        return _push_into(op.children[0], predicates + split_conjuncts(op.predicate))

    if isinstance(op, ops.Join):
        left, right = op.children
        left_preds, right_preds, here = [], [], []
        for predicate in predicates:
            free = ast.free_variables(predicate)
            if free <= set(left.schema.names):
                left_preds.append(predicate)
            elif free <= set(right.schema.names):
                right_preds.append(predicate)
            else:
                here.append(predicate)
        new = ops.Join(_push_into(left, left_preds), _push_into(right, right_preds))
        return _select(new, here)

    if isinstance(op, (ops.LeftOuterJoin, ops.AntiJoin)):
        # Only left-side pushdown is semantics-preserving: the right side of
        # ⟕ null-extends and the right side of ▷ is negated.
        left, right = op.children
        left_preds, here = [], []
        for predicate in predicates:
            if ast.free_variables(predicate) <= set(left.schema.names):
                left_preds.append(predicate)
            else:
                here.append(predicate)
        new = rebuild(op, [_push_into(left, left_preds), _optimize(right)])
        return _select(new, here)

    if isinstance(op, ops.TransitiveJoin):
        left, edges = op.children
        left_preds, here = [], []
        for predicate in predicates:
            if ast.free_variables(predicate) <= set(left.schema.names):
                left_preds.append(predicate)
            else:
                here.append(predicate)
        new = rebuild(op, [_push_into(left, left_preds), edges])
        return _select(new, here)

    if isinstance(op, ops.Dedup):
        # σ δ ≡ δ σ
        return ops.Dedup(_push_into(op.children[0], predicates))

    if isinstance(op, ops.Unwind):
        below, here = [], []
        for predicate in predicates:
            if op.alias not in ast.free_variables(predicate):
                below.append(predicate)
            else:
                here.append(predicate)
        new = ops.Unwind(_push_into(op.children[0], below), op.expression, op.alias)
        return _select(new, here)

    if isinstance(op, ops.Union):
        left = _push_into(op.children[0], list(predicates))
        # Align names: Union guarantees both sides share the name set.
        right = _push_into(op.children[1], list(predicates))
        return ops.Union(left, right)

    # Barrier operators (Project, Aggregate, Sort/Skip/Limit, base ops, …):
    # optimise below, keep the selection here.
    return _select(_optimize(op), predicates)


def _optimize(op: ops.Operator) -> ops.Operator:
    if isinstance(op, ops.Select):
        return _push_into(op.children[0], split_conjuncts(op.predicate))
    return rebuild(op, [_optimize(c) for c in op.children])


def optimize(plan: ops.Operator) -> ops.Operator:
    """Apply selection pushdown; input and output are valid FRA."""
    return _optimize(plan)


# ---------------------------------------------------------------------------
# parameter-selection lifting (the inverse pass, for cross-binding sharing)
# ---------------------------------------------------------------------------


def _mentions_parameter(expr: ast.Expr) -> bool:
    return any(isinstance(node, ast.Parameter) for node in ast.walk(expr))


def lifted_plan(compiled) -> ops.Operator:
    """Memoised :func:`lift_parameter_selections` over a compiled query.

    Registered once per distinct query object (the per-user workload
    registers the *same* compiled query thousands of times, once per
    binding), the lifted plan — and with it every operator's memoised
    fingerprint — is computed once and cached on the object itself.
    """
    try:
        return compiled._lifted_plan
    except AttributeError:
        pass
    plan = lift_parameter_selections(compiled.plan)
    object.__setattr__(compiled, "_lifted_plan", plan)
    return plan


def lift_parameter_selections(plan: ops.Operator) -> ops.Operator:
    """Hoist parameter-dependent σ conjuncts as high as legality allows.

    Selection pushdown is the right default for a single view, but it is
    what makes the canonical "same query, one view per user" workload
    share nothing: once ``σ[a.uid = $uid]`` sits at the bottom, every
    interior subtree mentions the parameter and every view rebuilds the
    whole chain privately.  This pass applies the *same* commutation rules
    as :func:`optimize` in reverse, but only to conjuncts that mention a
    ``$parameter``: they rise through joins (from the left side of ⟕ / ▷ /
    ⋈* only — the same boundaries pushdown respects), dedup and unwind,
    and stop below π / γ / ∪ and at the root, leaving a maximal
    *binding-free core* underneath a single parameterised σ — exactly the
    shape the binding-indexed sharing tier cuts over at.

    Binding-free conjuncts stay pushed down (they shrink the shared core
    for every binding alike).  The output plan is equivalent: both
    directions of each commutation are semantics-preserving, which the
    cross-binding differential suite exercises end to end.
    """
    if not any(
        isinstance(op, ops.Select) and _mentions_parameter(op.predicate)
        for op in plan.walk()
    ):
        return plan  # identity keeps memoised fingerprints and is-checks
    lifted, rising = _lift(plan)
    return _select(lifted, rising)


def _lift(op: ops.Operator) -> tuple[ops.Operator, list[ast.Expr]]:
    """Returns *op* rebuilt plus the parameter conjuncts still rising."""
    if isinstance(op, ops.Select):
        child, rising = _lift(op.children[0])
        staying = []
        for conjunct in split_conjuncts(op.predicate):
            if _mentions_parameter(conjunct):
                rising.append(conjunct)
            else:
                staying.append(conjunct)
        return _select(child, staying), rising

    if isinstance(op, ops.Join):
        left, left_rising = _lift(op.children[0])
        right, right_rising = _lift(op.children[1])
        # every lifted column survives a natural join, so both sides rise
        return ops.Join(left, right), left_rising + right_rising

    if isinstance(op, (ops.LeftOuterJoin, ops.AntiJoin, ops.TransitiveJoin)):
        # only the left side commutes (null-extension / negation / closure
        # boundaries — the mirror of pushdown's left-only rule); right-side
        # conjuncts re-apply where they were
        left, left_rising = _lift(op.children[0])
        if isinstance(op, ops.TransitiveJoin):
            right = op.children[1]  # the edges child is structural
        else:
            right_child, right_rising = _lift(op.children[1])
            right = _select(right_child, right_rising)
        return rebuild(op, [left, right]), left_rising

    if isinstance(op, (ops.Dedup, ops.Unwind)):
        # σ δ ≡ δ σ; ω only appends a column, so conjuncts from below
        # (which cannot mention the alias) commute
        child, rising = _lift(op.children[0])
        return rebuild(op, [child]), rising

    # Barrier operators (Project, Aggregate, Union, ordering, base ops):
    # children keep their lifted conjuncts directly below this operator.
    children = []
    for child in op.children:
        lifted, rising = _lift(child)
        children.append(_select(lifted, rising))
    return rebuild(op, children), []


def prune_unused_path_aliases(plan: ops.Operator) -> ops.Operator:
    """Drop path attributes no expression ever observes (GRA stage).

    The pattern compiler materialises a path for every variable-length
    segment (named paths, relationship-list variables and edge-uniqueness
    predicates need them).  When nothing references the path, dropping it
    lets the transitive-closure stage run in the cheaper pair/reachability
    mode (ablation D2) and keeps tuples narrower.
    """
    from ..algebra.fra import _expressions_of

    used: set[str] = set()
    for op in plan.walk():
        for expr in _expressions_of(op):
            used |= ast.free_variables(expr)

    def prune(op: ops.Operator) -> ops.Operator:
        children = [prune(c) for c in op.children]
        if (
            isinstance(op, ops.ExpandOut)
            and op.path_alias is not None
            and op.path_alias not in used
        ):
            return ops.ExpandOut(
                children[0],
                src=op.src,
                edge=op.edge,
                tgt=op.tgt,
                types=op.types,
                tgt_labels=op.tgt_labels,
                direction=op.direction,
                min_hops=op.min_hops,
                max_hops=op.max_hops,
                path_alias=None,
            )
        return rebuild(op, children)

    return prune(plan)
