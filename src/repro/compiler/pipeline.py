"""End-to-end query compilation: the paper's four-step workflow (§4).

``compile_query`` runs text → AST → GRA → NRA → FRA → optimised FRA and
returns a :class:`CompiledQuery` that keeps every intermediate stage for
introspection (EXPLAIN, the compilation-pipeline tests, and the paper's
worked example E2).  Step (4) — building the incremental view — is done by
:mod:`repro.rete` from ``CompiledQuery.plan``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra import ops
from ..algebra.fra import check_incremental_fragment, validate_fra
from ..algebra.gra import validate_gra
from ..algebra.nra import validate_nra
from ..algebra.printer import format_plan
from ..cypher import ast
from ..cypher.parser import UnionQuery, parse
from ..errors import CypherSemanticError, UnsupportedForIncrementalError
from .costopt import reorder_joins
from .cypher_to_gra import compile_to_gra
from .gra_to_nra import lower_to_nra
from .nra_to_fra import flatten_to_fra
from .optimizer import optimize, prune_unused_path_aliases
from .stats import GraphStatistics


@dataclass(frozen=True)
class CompiledQuery:
    """A query lowered through every stage of the paper's pipeline."""

    text: str
    syntax: ast.Query | UnionQuery
    gra: ops.Operator
    nra: ops.Operator
    fra: ops.Operator
    plan: ops.Operator  # optimised FRA — what engines execute
    incremental_reason: str | None = field(default=None)

    @property
    def columns(self) -> tuple[str, ...]:
        return self.plan.schema.names

    @property
    def is_incremental(self) -> bool:
        """Whether the query falls in the maintainable fragment."""
        return self.incremental_reason is None

    def require_incremental(self) -> None:
        if self.incremental_reason is not None:
            raise UnsupportedForIncrementalError(self.incremental_reason)

    def explain(self) -> str:
        """Multi-stage plan rendering (the paper's compilation steps)."""
        sections = [
            ("GRA (step 1: openCypher → graph relational algebra)", self.gra),
            ("NRA (step 2: expands → joins, explicit unnest)", self.nra),
            ("FRA (step 3: schema inference / property pushdown)", self.fra),
            ("Physical plan (optimised FRA)", self.plan),
        ]
        parts = [f"Query: {self.text.strip()}"]
        for title, plan in sections:
            parts.append(f"\n== {title} ==\n{format_plan(plan)}")
        if self.incremental_reason is not None:
            parts.append(
                f"\nIncremental registration: UNSUPPORTED ({self.incremental_reason})"
            )
        else:
            parts.append("\nIncremental registration: supported")
        return "\n".join(parts)


def compile_query(
    text: str, statistics: "GraphStatistics | None" = None
) -> CompiledQuery:
    """Compile *text* through GRA → NRA → FRA, validating each stage.

    With *statistics* (a :class:`~repro.compiler.stats.GraphStatistics`
    snapshot) the physical plan additionally gets cost-based join ordering
    (ablation E13); without, join order follows the query's syntactic
    pattern order.
    """
    syntax = parse(text)
    if isinstance(syntax, ast.UpdatingQuery):
        raise CypherSemanticError(
            "updating queries (CREATE/DELETE/SET/REMOVE/MERGE) are executed "
            "directly, not compiled to algebra; use QueryEngine.execute()"
        )
    gra = prune_unused_path_aliases(compile_to_gra(syntax))
    validate_gra(gra)
    nra = lower_to_nra(gra)
    validate_nra(nra)
    fra = flatten_to_fra(nra)
    validate_fra(fra)
    plan = optimize(fra)
    if statistics is not None:
        # re-run selection pushdown: the new join shape may admit deeper σ
        plan = optimize(reorder_joins(plan, statistics))
    validate_fra(plan)
    reason: str | None = None
    try:
        check_incremental_fragment(plan)
    except UnsupportedForIncrementalError as exc:
        reason = str(exc)
    return CompiledQuery(
        text=text,
        syntax=syntax,
        gra=gra,
        nra=nra,
        fra=fra,
        plan=plan,
        incremental_reason=reason,
    )
