"""Generic AST expression rewriting utilities used by the compiler passes."""

from __future__ import annotations

from dataclasses import fields
from typing import Callable

from ..cypher import ast


def _map_value(value, fn: Callable[[ast.Expr], ast.Expr]):
    if isinstance(value, ast.Expr):
        return fn(value)
    if isinstance(value, tuple):
        return tuple(_map_value(item, fn) for item in value)
    return value


def map_child_exprs(node: ast.AstNode, fn: Callable[[ast.Expr], ast.Expr]) -> ast.AstNode:
    """Rebuild *node* with *fn* applied to each direct child expression."""
    kwargs = {}
    changed = False
    for field in fields(node):  # type: ignore[arg-type]
        value = getattr(node, field.name)
        new_value = _map_value(value, fn)
        kwargs[field.name] = new_value
        if new_value is not value:
            changed = True
    return type(node)(**kwargs) if changed else node


def bottom_up(expr: ast.Expr, fn: Callable[[ast.Expr], ast.Expr]) -> ast.Expr:
    """Apply *fn* to every node of *expr*, children before parents."""
    rebuilt = map_child_exprs(expr, lambda child: bottom_up(child, fn))
    return fn(rebuilt)  # type: ignore[arg-type]


def substitute_variables(expr: ast.Expr, mapping: dict[str, ast.Expr]) -> ast.Expr:
    """Replace each ``Variable(name)`` with ``mapping[name]`` where present."""
    if not mapping:
        return expr

    def replace(node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.Variable) and node.name in mapping:
            return mapping[node.name]
        return node

    return bottom_up(expr, replace)


def substitute_subexpression(
    expr: ast.Expr, target: ast.Expr, replacement: ast.Expr
) -> ast.Expr:
    """Replace every subexpression structurally equal to *target*."""

    def replace(node: ast.Expr) -> ast.Expr:
        if node == target:
            return replacement
        return node

    return bottom_up(expr, replace)
