"""Graph statistics and FRA cardinality estimation.

Property graphs are schema-free, so the only reliable planning signals are
*counts*: vertices per label, edges per type, and global totals.
:class:`GraphStatistics` snapshots them in O(|labels| + |types|) (the store
already maintains the indices); :func:`estimate_cardinality` propagates
them bottom-up through an FRA plan with textbook selectivity rules.

The estimates feed the greedy join-ordering pass in
:mod:`~repro.compiler.costopt` (ablation E13); they are deliberately crude
— order-of-magnitude accuracy is enough to rank join orders.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra import ops
from ..cypher import ast
from ..graph.graph import PropertyGraph

#: Default selectivity of one opaque predicate conjunct (σ).
PREDICATE_SELECTIVITY = 0.25
#: Selectivity of an equality conjunct (``x.p = const``).
EQUALITY_SELECTIVITY = 0.1


@dataclass(frozen=True)
class GraphStatistics:
    """Count-based planning statistics for one graph snapshot."""

    vertex_count: int
    edge_count: int
    label_counts: dict[str, int] = field(default_factory=dict)
    type_counts: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_graph(cls, graph: PropertyGraph) -> "GraphStatistics":
        return cls(
            vertex_count=graph.vertex_count,
            edge_count=graph.edge_count,
            label_counts={
                label: sum(1 for _ in graph.vertices(label))
                for label in graph.labels()
            },
            type_counts={
                edge_type: sum(1 for _ in graph.edges(edge_type))
                for edge_type in graph.edge_types()
            },
        )

    # -- base-relation estimates -------------------------------------------------

    def label_selectivity(self, labels: tuple[str, ...]) -> float:
        """Fraction of vertices carrying all of *labels*."""
        if not labels or not self.vertex_count:
            return 1.0
        fraction = 1.0
        for label in labels:
            fraction *= self.label_counts.get(label, 0) / self.vertex_count
        return fraction

    def vertices_with(self, labels: tuple[str, ...]) -> float:
        """Estimated vertices carrying all of *labels*: the rarest label's
        count, scaled by the independent selectivity of the others."""
        if not labels:
            return float(self.vertex_count)
        counts = sorted(self.label_counts.get(label, 0) for label in labels)
        estimate = float(counts[0])
        for count in counts[1:]:
            estimate *= count / max(self.vertex_count, 1)
        return estimate

    def edges_with(self, types: tuple[str, ...]) -> float:
        if not types:
            return float(self.edge_count)
        return float(sum(self.type_counts.get(t, 0) for t in types))

    @property
    def average_degree(self) -> float:
        if not self.vertex_count:
            return 0.0
        return self.edge_count / self.vertex_count


def _predicate_selectivity(predicate: ast.Expr) -> float:
    """Multiplicative selectivity of a σ predicate, conjunct by conjunct."""
    if isinstance(predicate, ast.BooleanOp) and predicate.op == "AND":
        fraction = 1.0
        for operand in predicate.operands:
            fraction *= _predicate_selectivity(operand)
        return fraction
    if isinstance(predicate, ast.Comparison) and "=" in predicate.ops:
        return EQUALITY_SELECTIVITY
    return PREDICATE_SELECTIVITY


def estimate_cardinality(op: ops.Operator, stats: GraphStatistics) -> float:
    """Estimated output cardinality of *op* (rows, fractional allowed)."""
    if isinstance(op, ops.Unit):
        return 1.0

    if isinstance(op, ops.GetVertices):
        return max(stats.vertices_with(op.labels), 0.001)

    if isinstance(op, ops.GetEdges):
        base = stats.edges_with(op.types)
        base *= stats.label_selectivity(op.src_labels)
        base *= stats.label_selectivity(op.tgt_labels)
        if not op.directed:
            base *= 2
        return max(base, 0.001)

    if isinstance(op, ops.Select):
        return estimate_cardinality(op.children[0], stats) * _predicate_selectivity(
            op.predicate
        )

    if isinstance(op, (ops.Project,)):
        return estimate_cardinality(op.children[0], stats)

    if isinstance(op, ops.Dedup):
        return estimate_cardinality(op.children[0], stats) * 0.9

    if isinstance(op, ops.Unwind):
        return estimate_cardinality(op.children[0], stats) * 3.0

    if isinstance(op, ops.Aggregate):
        child = estimate_cardinality(op.children[0], stats)
        if not op.keys:
            return 1.0
        return max(child**0.5, 1.0)

    if isinstance(op, ops.Join):
        return _join_estimate(op.children[0], op.children[1], stats)

    if isinstance(op, ops.AntiJoin):
        return estimate_cardinality(op.children[0], stats) * 0.5

    if isinstance(op, ops.LeftOuterJoin):
        left = estimate_cardinality(op.children[0], stats)
        return max(left, _join_estimate(op.children[0], op.children[1], stats))

    if isinstance(op, ops.Union):
        return estimate_cardinality(op.children[0], stats) + estimate_cardinality(
            op.children[1], stats
        )

    if isinstance(op, ops.TransitiveJoin):
        left = estimate_cardinality(op.children[0], stats)
        # Average trail fan-out ≈ a short geometric series of the mean degree.
        degree = max(stats.average_degree, 0.1)
        fanout = degree + degree * degree
        return left * min(fanout, float(max(stats.vertex_count, 1)))

    if isinstance(op, (ops.Sort, ops.Skip, ops.Limit)):
        return estimate_cardinality(op.children[0], stats)

    # Unknown operators: pass the child estimate through (or 1 for leaves).
    if op.children:
        return estimate_cardinality(op.children[0], stats)
    return 1.0


def _join_estimate(
    left: ops.Operator, right: ops.Operator, stats: GraphStatistics
) -> float:
    """|L ⋈ R| ≈ |L|·|R| / Π domain(common attr) — the classic rule with
    vertex/edge id domains standing in for distinct-value counts."""
    left_cardinality = estimate_cardinality(left, stats)
    right_cardinality = estimate_cardinality(right, stats)
    _, common = left.schema.join_with(right.schema)
    result = left_cardinality * right_cardinality
    for name in common:
        kind = left.schema.kind_of(name)
        if kind.value == "vertex":
            domain = max(stats.vertex_count, 1)
        elif kind.value == "edge":
            domain = max(stats.edge_count, 1)
        else:
            domain = max(
                min(left_cardinality, right_cardinality), 1.0
            )  # value columns: assume near-key
        result /= domain
    return max(result, 0.001)
