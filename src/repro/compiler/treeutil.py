"""Operator-tree rebuilding helpers shared by the compiler passes."""

from __future__ import annotations

from ..algebra import ops
from ..errors import CompilerError


def rebuild(op: ops.Operator, children: list[ops.Operator]) -> ops.Operator:
    """Reconstruct *op* with new *children*, keeping its parameters.

    Returns *op* itself when nothing changed (cheap identity fast-path).
    """
    if len(children) == len(op.children) and all(
        new is old for new, old in zip(children, op.children)
    ):
        return op
    if isinstance(op, (ops.GetVertices, ops.GetEdges, ops.Unit)):
        return op
    if isinstance(op, ops.ExpandOut):
        return ops.ExpandOut(
            children[0],
            src=op.src,
            edge=op.edge,
            tgt=op.tgt,
            types=op.types,
            tgt_labels=op.tgt_labels,
            direction=op.direction,
            min_hops=op.min_hops,
            max_hops=op.max_hops,
            path_alias=op.path_alias,
        )
    if isinstance(op, ops.Select):
        return ops.Select(children[0], op.predicate)
    if isinstance(op, ops.Project):
        return ops.Project(children[0], op.items)
    if isinstance(op, ops.Dedup):
        return ops.Dedup(children[0])
    if isinstance(op, ops.Unwind):
        return ops.Unwind(children[0], op.expression, op.alias)
    if isinstance(op, ops.PropertyUnnest):
        return ops.PropertyUnnest(children[0], op.projection)
    if isinstance(op, ops.Aggregate):
        return ops.Aggregate(children[0], op.keys, op.aggregates)
    if isinstance(op, ops.Sort):
        return ops.Sort(children[0], op.items)
    if isinstance(op, ops.Skip):
        return ops.Skip(children[0], op.count)
    if isinstance(op, ops.Limit):
        return ops.Limit(children[0], op.count)
    if isinstance(op, ops.Join):
        return ops.Join(children[0], children[1])
    if isinstance(op, ops.AntiJoin):
        return ops.AntiJoin(children[0], children[1])
    if isinstance(op, ops.LeftOuterJoin):
        return ops.LeftOuterJoin(children[0], children[1])
    if isinstance(op, ops.Union):
        return ops.Union(children[0], children[1])
    if isinstance(op, ops.TransitiveJoin):
        edges = children[1]
        if not isinstance(edges, ops.GetEdges):
            raise CompilerError("transitive join edges child must stay a get-edges")
        return ops.TransitiveJoin(
            children[0],
            edges,
            source=op.source,
            target=op.target,
            direction=op.direction,
            min_hops=op.min_hops,
            max_hops=op.max_hops,
            path_alias=op.path_alias,
        )
    raise CompilerError(f"cannot rebuild {type(op).__name__}")
