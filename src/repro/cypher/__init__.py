"""openCypher front end: lexer, AST, parser, unparser."""

from . import ast
from .lexer import Lexer, tokenize
from .parser import Parser, UnionQuery, parse, parse_expression
from .tokens import Token, TokenType
from .unparser import unparse, unparse_expr

__all__ = [
    "ast",
    "tokenize",
    "Lexer",
    "Token",
    "TokenType",
    "parse",
    "parse_expression",
    "Parser",
    "UnionQuery",
    "unparse",
    "unparse_expr",
]
