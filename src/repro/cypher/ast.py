"""Abstract syntax tree for the openCypher fragment.

All nodes are immutable dataclasses.  Child expressions can be enumerated
generically with :func:`children`, which analysis passes (variable binding,
aggregate detection, property-access collection) use to walk trees without
per-node-type code.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Iterator


class AstNode:
    """Marker base class for all AST nodes."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class Expr(AstNode):
    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Literal(Expr):
    """A constant: int, float, str, bool or None."""

    value: Any


@dataclass(frozen=True, slots=True)
class Parameter(Expr):
    """A ``$name`` query parameter."""

    name: str


@dataclass(frozen=True, slots=True)
class Variable(Expr):
    name: str


@dataclass(frozen=True, slots=True)
class Property(Expr):
    """Property access ``subject.key`` (subject is usually a Variable)."""

    subject: Expr
    key: str


@dataclass(frozen=True, slots=True)
class ListLiteral(Expr):
    items: tuple[Expr, ...]


@dataclass(frozen=True, slots=True)
class MapLiteral(Expr):
    items: tuple[tuple[str, Expr], ...]


@dataclass(frozen=True, slots=True)
class Subscript(Expr):
    """List indexing ``list[index]`` (negative indices supported)."""

    subject: Expr
    index: Expr


@dataclass(frozen=True, slots=True)
class Slice(Expr):
    """List slicing ``list[lo..hi]``; either bound may be absent."""

    subject: Expr
    low: Expr | None
    high: Expr | None


@dataclass(frozen=True, slots=True)
class FunctionCall(Expr):
    """A function or aggregate invocation.

    ``name`` is stored lower-cased; whether it is an aggregate is decided
    by the expression layer (see ``repro.algebra.expressions.AGGREGATES``).
    """

    name: str
    args: tuple[Expr, ...]
    distinct: bool = False


@dataclass(frozen=True, slots=True)
class CountStar(Expr):
    """``count(*)``."""


@dataclass(frozen=True, slots=True)
class Not(Expr):
    operand: Expr


@dataclass(frozen=True, slots=True)
class BooleanOp(Expr):
    """N-ary AND / OR / XOR with at least two operands."""

    op: str  # "AND" | "OR" | "XOR"
    operands: tuple[Expr, ...]


@dataclass(frozen=True, slots=True)
class Comparison(Expr):
    """A (possibly chained) comparison ``a < b <= c``.

    ``operands`` has one more element than ``ops``; the chain is the AND of
    each adjacent comparison, evaluated under three-valued logic.
    """

    operands: tuple[Expr, ...]
    ops: tuple[str, ...]  # each of "=", "<>", "<", ">", "<=", ">="


@dataclass(frozen=True, slots=True)
class Arithmetic(Expr):
    op: str  # "+", "-", "*", "/", "%", "^"
    left: Expr
    right: Expr


@dataclass(frozen=True, slots=True)
class UnaryMinus(Expr):
    operand: Expr


@dataclass(frozen=True, slots=True)
class In(Expr):
    item: Expr
    container: Expr


@dataclass(frozen=True, slots=True)
class StringPredicate(Expr):
    kind: str  # "STARTS WITH" | "ENDS WITH" | "CONTAINS"
    subject: Expr
    pattern: Expr


@dataclass(frozen=True, slots=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass(frozen=True, slots=True)
class CaseExpr(Expr):
    """Generic ``CASE WHEN p THEN v ... ELSE d END``.

    The *simple* form ``CASE subject WHEN v THEN ...`` is normalised by the
    parser into the generic form with equality comparisons.
    """

    whens: tuple[tuple[Expr, Expr], ...]
    default: Expr | None


@dataclass(frozen=True, slots=True)
class HasLabel(Expr):
    """Label predicate ``n:Label1:Label2`` used in WHERE position."""

    subject: Expr
    labels: tuple[str, ...]


# ---------------------------------------------------------------------------
# patterns
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class NodePattern(AstNode):
    variable: str | None
    labels: tuple[str, ...]
    properties: tuple[tuple[str, Expr], ...] = ()


#: Unbounded upper hop count for variable-length relationships.
UNBOUNDED = None


@dataclass(frozen=True, slots=True)
class RelationshipPattern(AstNode):
    variable: str | None
    types: tuple[str, ...]
    direction: str  # "out" (->), "in" (<-), "both" (undirected)
    var_length: bool = False
    min_hops: int = 1
    max_hops: int | None = 1  # None = unbounded
    properties: tuple[tuple[str, Expr], ...] = ()


@dataclass(frozen=True, slots=True)
class PatternPart(AstNode):
    """One comma-separated pattern: optionally named, alternating nodes/rels.

    ``elements`` is ``(node, rel, node, rel, ..., node)``.
    """

    variable: str | None  # the named-path variable, e.g. t = (...)
    elements: tuple[AstNode, ...]

    @property
    def nodes(self) -> tuple[NodePattern, ...]:
        return tuple(e for e in self.elements if isinstance(e, NodePattern))

    @property
    def relationships(self) -> tuple[RelationshipPattern, ...]:
        return tuple(e for e in self.elements if isinstance(e, RelationshipPattern))


@dataclass(frozen=True, slots=True)
class Pattern(AstNode):
    parts: tuple[PatternPart, ...]


# ---------------------------------------------------------------------------
# clauses
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MatchClause(AstNode):
    pattern: Pattern
    optional: bool = False
    where: Expr | None = None


@dataclass(frozen=True, slots=True)
class UnwindClause(AstNode):
    expression: Expr
    alias: str


@dataclass(frozen=True, slots=True)
class ReturnItem(AstNode):
    expression: Expr
    alias: str | None = None


@dataclass(frozen=True, slots=True)
class OrderItem(AstNode):
    expression: Expr
    ascending: bool = True


@dataclass(frozen=True, slots=True)
class ProjectionBody(AstNode):
    """The shared shape of WITH and RETURN.

    ``star`` records a leading ``*`` item (``RETURN *`` / ``WITH *, x``);
    it expands to the in-scope variables at compile time, ahead of any
    explicit items."""

    items: tuple[ReturnItem, ...]
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    skip: Expr | None = None
    limit: Expr | None = None
    star: bool = False


@dataclass(frozen=True, slots=True)
class WithClause(AstNode):
    body: ProjectionBody
    where: Expr | None = None


@dataclass(frozen=True, slots=True)
class ReturnClause(AstNode):
    body: ProjectionBody


@dataclass(frozen=True, slots=True)
class Query(AstNode):
    """A single (non-UNION) query: reading clauses followed by RETURN."""

    clauses: tuple[AstNode, ...]  # MatchClause | UnwindClause | WithClause
    return_clause: ReturnClause


# ---------------------------------------------------------------------------
# updating clauses
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CreateClause(AstNode):
    """``CREATE pattern`` — instantiate the pattern once per binding row."""

    pattern: Pattern


@dataclass(frozen=True, slots=True)
class DeleteClause(AstNode):
    """``[DETACH] DELETE expr, ...`` — each expression must yield a vertex,
    an edge, a path, or null."""

    expressions: tuple[Expr, ...]
    detach: bool = False


@dataclass(frozen=True, slots=True)
class SetProperty(AstNode):
    """``SET subject.key = value``."""

    target: Property
    value: Expr


@dataclass(frozen=True, slots=True)
class SetLabels(AstNode):
    """``SET variable:Label1:Label2``."""

    variable: str
    labels: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class SetProperties(AstNode):
    """``SET variable = map`` (replace) or ``SET variable += map`` (merge)."""

    variable: str
    value: Expr
    merge: bool = False


@dataclass(frozen=True, slots=True)
class SetClause(AstNode):
    items: tuple[AstNode, ...]  # SetProperty | SetLabels | SetProperties


@dataclass(frozen=True, slots=True)
class RemoveProperty(AstNode):
    """``REMOVE subject.key``."""

    target: Property


@dataclass(frozen=True, slots=True)
class RemoveLabels(AstNode):
    """``REMOVE variable:Label1:Label2``."""

    variable: str
    labels: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class RemoveClause(AstNode):
    items: tuple[AstNode, ...]  # RemoveProperty | RemoveLabels


@dataclass(frozen=True, slots=True)
class MergeClause(AstNode):
    """``MERGE part [ON CREATE SET ...] [ON MATCH SET ...]``.

    The pattern part is matched as a whole; if no match exists for the
    current bindings, the whole part is created (openCypher semantics).
    """

    part: PatternPart
    on_create: tuple[AstNode, ...] = ()  # SetClause items
    on_match: tuple[AstNode, ...] = ()


#: Clause types that mutate the graph.
UPDATING_CLAUSES = (CreateClause, DeleteClause, SetClause, RemoveClause, MergeClause)


@dataclass(frozen=True, slots=True)
class UpdatingQuery(AstNode):
    """A query containing at least one updating clause.

    ``clauses`` interleaves reading clauses (MATCH / UNWIND / WITH) with
    updating clauses in source order; ``return_clause`` is optional.
    """

    clauses: tuple[AstNode, ...]
    return_clause: ReturnClause | None = None


# ---------------------------------------------------------------------------
# generic traversal
# ---------------------------------------------------------------------------


def children(node: AstNode) -> Iterator[AstNode]:
    """Yield the direct AST-node children of *node* (depth 1)."""
    for field in fields(node):  # type: ignore[arg-type]
        value = getattr(node, field.name)
        if isinstance(value, AstNode):
            yield value
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, AstNode):
                    yield item
                elif isinstance(item, tuple):  # (key, expr) / (when, then) pairs
                    for sub in item:
                        if isinstance(sub, AstNode):
                            yield sub


def walk(node: AstNode) -> Iterator[AstNode]:
    """Yield *node* and all descendants, pre-order."""
    yield node
    for child in children(node):
        yield from walk(child)


def free_variables(expr: Expr) -> set[str]:
    """Names of all :class:`Variable` nodes within *expr*."""
    return {n.name for n in walk(expr) if isinstance(n, Variable)}


def property_accesses(expr: Expr) -> set[tuple[str, str]]:
    """All ``(variable, key)`` pairs accessed as ``variable.key`` in *expr*."""
    out: set[tuple[str, str]] = set()
    for node in walk(expr):
        if isinstance(node, Property) and isinstance(node.subject, Variable):
            out.add((node.subject.name, node.key))
    return out
