"""Hand-written lexer for the openCypher fragment.

Follows the openCypher grammar's lexical rules for the constructs in our
fragment: case-insensitive keywords, single- and double-quoted strings with
backslash escapes, backtick-quoted identifiers, ``//`` line comments and
``/* */`` block comments, integer/float literals, and ``$param`` parameters.
"""

from __future__ import annotations

from ..errors import CypherSyntaxError
from .tokens import KEYWORDS, Token, TokenType

_SIMPLE_TOKENS = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ",": TokenType.COMMA,
    ":": TokenType.COLON,
    ";": TokenType.SEMICOLON,
    "|": TokenType.PIPE,
    "+": TokenType.PLUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "^": TokenType.CARET,
    "=": TokenType.EQ,
}

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "`": "`",
}


class Lexer:
    """Tokenises a query string; use :func:`tokenize` for the common case."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text):
                if self.text[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _error(self, message: str) -> CypherSyntaxError:
        return CypherSyntaxError(message, self.line, self.column)

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.text) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.text):
                    raise self._error("unterminated block comment")
                self._advance(2)
            else:
                return

    # -- token scanners -------------------------------------------------

    def _scan_string(self) -> Token:
        line, column = self.line, self.column
        quote = self._peek()
        self._advance()
        chars: list[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise CypherSyntaxError("unterminated string literal", line, column)
            if ch == quote:
                self._advance()
                break
            if ch == "\\":
                self._advance()
                escaped = self._peek()
                if escaped == "u":
                    self._advance()
                    hex_digits = self.text[self.pos : self.pos + 4]
                    if len(hex_digits) != 4:
                        raise self._error("invalid unicode escape")
                    try:
                        chars.append(chr(int(hex_digits, 16)))
                    except ValueError:
                        raise self._error("invalid unicode escape") from None
                    self._advance(4)
                    continue
                if escaped not in _ESCAPES:
                    raise self._error(f"invalid escape sequence \\{escaped}")
                chars.append(_ESCAPES[escaped])
                self._advance()
            else:
                chars.append(ch)
                self._advance()
        value = "".join(chars)
        return Token(TokenType.STRING, value, line, column, value)

    def _scan_number(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        # Disambiguate "1..3" (range) from "1.5" (float): only consume the dot
        # when it is followed by a digit.
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.text[start : self.pos]
        if is_float:
            return Token(TokenType.FLOAT, text, line, column, float(text))
        return Token(TokenType.INTEGER, text, line, column, int(text))

    def _scan_identifier(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.text[start : self.pos]
        upper = text.upper()
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, line, column)
        return Token(TokenType.IDENT, text, line, column)

    def _scan_backtick_identifier(self) -> Token:
        line, column = self.line, self.column
        self._advance()
        chars: list[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise CypherSyntaxError("unterminated quoted identifier", line, column)
            if ch == "`":
                self._advance()
                if self._peek() == "`":  # doubled backtick escapes a backtick
                    chars.append("`")
                    self._advance()
                    continue
                break
            chars.append(ch)
            self._advance()
        return Token(TokenType.IDENT, "".join(chars), line, column)

    def _scan_parameter(self) -> Token:
        line, column = self.line, self.column
        self._advance()  # $
        if not (self._peek().isalpha() or self._peek() == "_"):
            raise self._error("expected parameter name after '$'")
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        return Token(TokenType.PARAMETER, self.text[start : self.pos], line, column)

    # -- main loop -------------------------------------------------------

    def next_token(self) -> Token:
        self._skip_trivia()
        line, column = self.line, self.column
        ch = self._peek()
        if ch == "":
            return Token(TokenType.EOF, "", line, column)
        if ch in "'\"":
            return self._scan_string()
        if ch.isdigit():
            return self._scan_number()
        if ch.isalpha() or ch == "_":
            return self._scan_identifier()
        if ch == "`":
            return self._scan_backtick_identifier()
        if ch == "$":
            return self._scan_parameter()
        if ch == ".":
            if self._peek(1) == ".":
                self._advance(2)
                return Token(TokenType.DOTDOT, "..", line, column)
            self._advance()
            return Token(TokenType.DOT, ".", line, column)
        if ch == "<":
            if self._peek(1) == ">":
                self._advance(2)
                return Token(TokenType.NEQ, "<>", line, column)
            if self._peek(1) == "=":
                self._advance(2)
                return Token(TokenType.LE, "<=", line, column)
            if self._peek(1) == "-":
                self._advance(2)
                return Token(TokenType.ARROW_LEFT, "<-", line, column)
            self._advance()
            return Token(TokenType.LT, "<", line, column)
        if ch == ">":
            if self._peek(1) == "=":
                self._advance(2)
                return Token(TokenType.GE, ">=", line, column)
            self._advance()
            return Token(TokenType.GT, ">", line, column)
        if ch == "-":
            if self._peek(1) == ">":
                self._advance(2)
                return Token(TokenType.ARROW_RIGHT, "->", line, column)
            self._advance()
            return Token(TokenType.MINUS, "-", line, column)
        if ch in _SIMPLE_TOKENS:
            self._advance()
            return Token(_SIMPLE_TOKENS[ch], ch, line, column)
        raise self._error(f"unexpected character {ch!r}")

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while True:
            token = self.next_token()
            out.append(token)
            if token.type is TokenType.EOF:
                return out


def tokenize(text: str) -> list[Token]:
    """Tokenise *text*, returning a list ending with an EOF token."""
    return Lexer(text).tokens()
