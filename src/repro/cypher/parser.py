"""Recursive-descent parser for the openCypher fragment.

Grammar coverage (the paper's fragment plus the extensions it lists as
future work, which our compiler supports non-incrementally or
incrementally where possible)::

    query        := single ( UNION (ALL)? single )*
    single       := clause* RETURN projection
    clause       := (OPTIONAL)? MATCH pattern (WHERE expr)?
                  | UNWIND expr AS var
                  | WITH projection (WHERE expr)?
    pattern      := part ("," part)*
    part         := (var "=")? node (rel node)*
    node         := "(" var? (":" label)* map? ")"
    rel          := dash "[" var? types? varlen? map? "]" dash
    projection   := (DISTINCT)? item ("," item)*
                    (ORDER BY order ("," order)*)? (SKIP expr)? (LIMIT expr)?

Expression precedence follows the openCypher specification:
OR < XOR < AND < NOT < comparison < +/- < * / % < ^ < unary minus <
string/list/null operators (IN, STARTS WITH, IS NULL, subscripts) <
property access / label predicate < atoms.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CypherSyntaxError, UnsupportedFeatureError
from . import ast
from .lexer import tokenize
from .tokens import Token, TokenType

_COMPARISON_OPS = {
    TokenType.EQ: "=",
    TokenType.NEQ: "<>",
    TokenType.LT: "<",
    TokenType.GT: ">",
    TokenType.LE: "<=",
    TokenType.GE: ">=",
}


@dataclass(frozen=True, slots=True)
class UnionQuery(ast.AstNode):
    """``q1 UNION [ALL] q2 ...``; ``all=False`` deduplicates the result."""

    queries: tuple[ast.Query, ...]
    all: bool


class Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token helpers ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _error(self, message: str) -> CypherSyntaxError:
        token = self.current
        return CypherSyntaxError(
            f"{message} (found {token.text!r})" if token.text else message,
            token.line,
            token.column,
        )

    def _expect(self, token_type: TokenType, what: str) -> Token:
        if self.current.type is not token_type:
            raise self._error(f"expected {what}")
        return self._advance()

    def _at_keyword(self, *words: str) -> bool:
        return self.current.type is TokenType.KEYWORD and self.current.text in words

    def _accept_keyword(self, *words: str) -> bool:
        if self._at_keyword(*words):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise self._error(f"expected {word}")

    def _name(self, what: str = "identifier") -> str:
        """Accept an identifier; keywords are allowed as names where openCypher
        allows (e.g. property keys), but only a safe subset here."""
        if self.current.type is TokenType.IDENT:
            return self._advance().text
        raise self._error(f"expected {what}")

    # -- entry point ------------------------------------------------------

    def parse(self) -> ast.Query | ast.UpdatingQuery | UnionQuery:
        statement = self._parse_statement()
        if self.current.type is TokenType.SEMICOLON:
            self._advance()
        if self.current.type is not TokenType.EOF:
            raise self._error("unexpected trailing input")
        return statement

    def _parse_statement(self) -> ast.Query | ast.UpdatingQuery | UnionQuery:
        first = self._parse_single_query()
        queries = [first]
        all_flags: list[bool] = []
        while self._accept_keyword("UNION"):
            all_flags.append(self._accept_keyword("ALL"))
            queries.append(self._parse_single_query())
        if len(queries) == 1:
            return first
        if any(isinstance(q, ast.UpdatingQuery) for q in queries):
            raise UnsupportedFeatureError(
                "UNION of updating queries is not supported"
            )
        if len(set(all_flags)) > 1:
            raise UnsupportedFeatureError(
                "mixing UNION and UNION ALL in one query is not supported"
            )
        return UnionQuery(tuple(queries), all=all_flags[0])

    def _parse_single_query(self) -> ast.Query | ast.UpdatingQuery:
        clauses: list[ast.AstNode] = []
        has_update = False
        while True:
            if self._at_keyword("MATCH", "OPTIONAL"):
                clauses.append(self._parse_match())
            elif self._at_keyword("UNWIND"):
                clauses.append(self._parse_unwind())
            elif self._at_keyword("WITH"):
                clauses.append(self._parse_with())
            elif self._at_keyword("CREATE"):
                clauses.append(self._parse_create())
                has_update = True
            elif self._at_keyword("MERGE"):
                clauses.append(self._parse_merge())
                has_update = True
            elif self._at_keyword("DELETE", "DETACH"):
                clauses.append(self._parse_delete())
                has_update = True
            elif self._at_keyword("SET"):
                clauses.append(self._parse_set())
                has_update = True
            elif self._at_keyword("REMOVE"):
                clauses.append(self._parse_remove())
                has_update = True
            elif self._at_keyword("RETURN"):
                return_clause = self._parse_return()
                if has_update:
                    return ast.UpdatingQuery(tuple(clauses), return_clause)
                return ast.Query(tuple(clauses), return_clause)
            elif (
                has_update
                and clauses
                and (
                    self.current.type in (TokenType.EOF, TokenType.SEMICOLON)
                    or self._at_keyword("UNION")
                )
            ):
                if not isinstance(clauses[-1], ast.UPDATING_CLAUSES):
                    raise self._error(
                        "query must end with RETURN or an updating clause"
                    )
                return ast.UpdatingQuery(tuple(clauses), None)
            else:
                raise self._error(
                    "expected MATCH, UNWIND, WITH, CREATE, MERGE, DELETE, "
                    "SET, REMOVE or RETURN"
                )

    # -- clauses ----------------------------------------------------------

    def _parse_match(self) -> ast.MatchClause:
        optional = self._accept_keyword("OPTIONAL")
        self._expect_keyword("MATCH")
        pattern = self._parse_pattern()
        where = self._parse_expression() if self._accept_keyword("WHERE") else None
        return ast.MatchClause(pattern, optional=optional, where=where)

    def _parse_unwind(self) -> ast.UnwindClause:
        self._expect_keyword("UNWIND")
        expression = self._parse_expression()
        self._expect_keyword("AS")
        alias = self._name("alias after AS")
        return ast.UnwindClause(expression, alias)

    def _parse_with(self) -> ast.WithClause:
        self._expect_keyword("WITH")
        body = self._parse_projection_body()
        where = self._parse_expression() if self._accept_keyword("WHERE") else None
        return ast.WithClause(body, where=where)

    def _parse_return(self) -> ast.ReturnClause:
        self._expect_keyword("RETURN")
        return ast.ReturnClause(self._parse_projection_body())

    # -- updating clauses ---------------------------------------------------

    def _parse_create(self) -> ast.CreateClause:
        self._expect_keyword("CREATE")
        return ast.CreateClause(self._parse_pattern())

    def _parse_merge(self) -> ast.MergeClause:
        self._expect_keyword("MERGE")
        part = self._parse_pattern_part()
        on_create: list[ast.AstNode] = []
        on_match: list[ast.AstNode] = []
        while self._at_keyword("ON"):
            self._advance()
            if self._accept_keyword("CREATE"):
                bucket = on_create
            elif self._accept_keyword("MATCH"):
                bucket = on_match
            else:
                raise self._error("expected CREATE or MATCH after ON")
            self._expect_keyword("SET")
            bucket.extend(self._parse_set_items())
        return ast.MergeClause(part, tuple(on_create), tuple(on_match))

    def _parse_delete(self) -> ast.DeleteClause:
        detach = self._accept_keyword("DETACH")
        self._expect_keyword("DELETE")
        expressions = [self._parse_expression()]
        while self.current.type is TokenType.COMMA:
            self._advance()
            expressions.append(self._parse_expression())
        return ast.DeleteClause(tuple(expressions), detach=detach)

    def _parse_set(self) -> ast.SetClause:
        self._expect_keyword("SET")
        return ast.SetClause(tuple(self._parse_set_items()))

    def _parse_set_items(self) -> list[ast.AstNode]:
        items = [self._parse_set_item()]
        while self.current.type is TokenType.COMMA:
            self._advance()
            items.append(self._parse_set_item())
        return items

    def _parse_set_item(self) -> ast.AstNode:
        target = self._parse_property_or_labels()
        if isinstance(target, ast.HasLabel):
            if not isinstance(target.subject, ast.Variable):
                raise self._error("SET label target must be a variable")
            return ast.SetLabels(target.subject.name, target.labels)
        if isinstance(target, ast.Property):
            self._expect(TokenType.EQ, "'=' in SET item")
            return ast.SetProperty(target, self._parse_expression())
        if isinstance(target, ast.Variable):
            if self.current.type is TokenType.PLUS:
                self._advance()
                self._expect(TokenType.EQ, "'=' after '+' in SET item")
                return ast.SetProperties(
                    target.name, self._parse_expression(), merge=True
                )
            self._expect(TokenType.EQ, "'=' or '+=' in SET item")
            return ast.SetProperties(target.name, self._parse_expression(), merge=False)
        raise self._error("invalid SET target")

    def _parse_remove(self) -> ast.RemoveClause:
        self._expect_keyword("REMOVE")
        items = [self._parse_remove_item()]
        while self.current.type is TokenType.COMMA:
            self._advance()
            items.append(self._parse_remove_item())
        return ast.RemoveClause(tuple(items))

    def _parse_remove_item(self) -> ast.AstNode:
        target = self._parse_property_or_labels()
        if isinstance(target, ast.HasLabel):
            if not isinstance(target.subject, ast.Variable):
                raise self._error("REMOVE label target must be a variable")
            return ast.RemoveLabels(target.subject.name, target.labels)
        if isinstance(target, ast.Property):
            return ast.RemoveProperty(target)
        raise self._error("REMOVE expects n.prop or n:Label")

    def _parse_projection_body(self) -> ast.ProjectionBody:
        distinct = self._accept_keyword("DISTINCT")
        star = False
        items: list[ast.ReturnItem] = []
        if self.current.type is TokenType.STAR:
            self._advance()
            star = True
        else:
            items.append(self._parse_return_item())
        while self.current.type is TokenType.COMMA:
            self._advance()
            items.append(self._parse_return_item())
        order_by: tuple[ast.OrderItem, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_items = [self._parse_order_item()]
            while self.current.type is TokenType.COMMA:
                self._advance()
                order_items.append(self._parse_order_item())
            order_by = tuple(order_items)
        skip = self._parse_expression() if self._accept_keyword("SKIP") else None
        limit = self._parse_expression() if self._accept_keyword("LIMIT") else None
        return ast.ProjectionBody(
            tuple(items), distinct, order_by, skip, limit, star
        )

    def _parse_return_item(self) -> ast.ReturnItem:
        if self.current.type is TokenType.STAR:
            raise self._error("* must be the first projection item")
        expression = self._parse_expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._name("alias after AS")
        return ast.ReturnItem(expression, alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self._parse_expression()
        ascending = True
        if self._accept_keyword("DESC", "DESCENDING"):
            ascending = False
        else:
            self._accept_keyword("ASC", "ASCENDING")
        return ast.OrderItem(expression, ascending)

    # -- patterns -----------------------------------------------------------

    def _parse_pattern(self) -> ast.Pattern:
        parts = [self._parse_pattern_part()]
        while self.current.type is TokenType.COMMA:
            self._advance()
            parts.append(self._parse_pattern_part())
        return ast.Pattern(tuple(parts))

    def _parse_pattern_part(self) -> ast.PatternPart:
        variable = None
        if (
            self.current.type is TokenType.IDENT
            and self._peek().type is TokenType.EQ
        ):
            variable = self._advance().text
            self._advance()  # =
        elements: list[ast.AstNode] = [self._parse_node_pattern()]
        while self.current.type in (TokenType.MINUS, TokenType.ARROW_LEFT):
            elements.append(self._parse_relationship_pattern())
            elements.append(self._parse_node_pattern())
        return ast.PatternPart(variable, tuple(elements))

    def _parse_node_pattern(self) -> ast.NodePattern:
        self._expect(TokenType.LPAREN, "'(' to start a node pattern")
        variable = None
        if self.current.type is TokenType.IDENT:
            variable = self._advance().text
        labels: list[str] = []
        while self.current.type is TokenType.COLON:
            self._advance()
            labels.append(self._name("label name"))
        properties: tuple[tuple[str, ast.Expr], ...] = ()
        if self.current.type is TokenType.LBRACE:
            properties = self._parse_map_entries()
        self._expect(TokenType.RPAREN, "')' to close the node pattern")
        return ast.NodePattern(variable, tuple(labels), properties)

    def _parse_relationship_pattern(self) -> ast.RelationshipPattern:
        left_arrow = False
        if self.current.type is TokenType.ARROW_LEFT:
            left_arrow = True
            self._advance()
        else:
            self._expect(TokenType.MINUS, "'-' to start a relationship")

        variable = None
        types: list[str] = []
        var_length = False
        min_hops, max_hops = 1, 1
        properties: tuple[tuple[str, ast.Expr], ...] = ()

        if self.current.type is TokenType.LBRACKET:
            self._advance()
            if self.current.type is TokenType.IDENT:
                variable = self._advance().text
            if self.current.type is TokenType.COLON:
                self._advance()
                types.append(self._name("relationship type"))
                while self.current.type is TokenType.PIPE:
                    self._advance()
                    if self.current.type is TokenType.COLON:
                        self._advance()
                    types.append(self._name("relationship type"))
            if self.current.type is TokenType.STAR:
                self._advance()
                var_length = True
                min_hops, max_hops = self._parse_range_literal()
            if self.current.type is TokenType.LBRACE:
                properties = self._parse_map_entries()
            self._expect(TokenType.RBRACKET, "']' to close the relationship")

        right_arrow = False
        if self.current.type is TokenType.ARROW_RIGHT:
            right_arrow = True
            self._advance()
        else:
            self._expect(TokenType.MINUS, "'-' or '->' after the relationship")

        if left_arrow and right_arrow:
            direction = "both"
        elif left_arrow:
            direction = "in"
        elif right_arrow:
            direction = "out"
        else:
            direction = "both"
        return ast.RelationshipPattern(
            variable,
            tuple(types),
            direction,
            var_length=var_length,
            min_hops=min_hops,
            max_hops=max_hops,
            properties=properties,
        )

    def _parse_range_literal(self) -> tuple[int, int | None]:
        """After ``*``: ``''`` → 1..∞, ``n`` → n..n, ``a..b``/``..b``/``a..``."""
        low: int | None = None
        high: int | None = None
        if self.current.type is TokenType.INTEGER:
            low = int(self.current.value)  # type: ignore[arg-type]
            self._advance()
            if self.current.type is TokenType.DOTDOT:
                self._advance()
                if self.current.type is TokenType.INTEGER:
                    high = int(self._advance().value)  # type: ignore[arg-type]
            else:
                high = low
        elif self.current.type is TokenType.DOTDOT:
            self._advance()
            low = 1
            if self.current.type is TokenType.INTEGER:
                high = int(self._advance().value)  # type: ignore[arg-type]
        else:
            low, high = 1, None
        if low is None:
            low = 1
        if high is not None and high < low:
            raise self._error(f"invalid hop range *{low}..{high}")
        return low, high

    def _parse_map_entries(self) -> tuple[tuple[str, ast.Expr], ...]:
        self._expect(TokenType.LBRACE, "'{'")
        entries: list[tuple[str, ast.Expr]] = []
        if self.current.type is not TokenType.RBRACE:
            while True:
                key = self._map_key()
                self._expect(TokenType.COLON, "':' after map key")
                entries.append((key, self._parse_expression()))
                if self.current.type is TokenType.COMMA:
                    self._advance()
                else:
                    break
        self._expect(TokenType.RBRACE, "'}'")
        return tuple(entries)

    def _map_key(self) -> str:
        if self.current.type is TokenType.IDENT:
            return self._advance().text
        if self.current.type is TokenType.KEYWORD:
            return self._advance().text.lower()
        if self.current.type is TokenType.STRING:
            return str(self._advance().value)
        raise self._error("expected map key")

    # -- expressions --------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        operands = [self._parse_xor()]
        while self._accept_keyword("OR"):
            operands.append(self._parse_xor())
        if len(operands) == 1:
            return operands[0]
        return ast.BooleanOp("OR", tuple(operands))

    def _parse_xor(self) -> ast.Expr:
        operands = [self._parse_and()]
        while self._accept_keyword("XOR"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return ast.BooleanOp("XOR", tuple(operands))

    def _parse_and(self) -> ast.Expr:
        operands = [self._parse_not()]
        while self._accept_keyword("AND"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return ast.BooleanOp("AND", tuple(operands))

    def _parse_not(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.Not(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        first = self._parse_add_sub()
        operands = [first]
        ops: list[str] = []
        while self.current.type in _COMPARISON_OPS:
            ops.append(_COMPARISON_OPS[self._advance().type])
            operands.append(self._parse_add_sub())
        if not ops:
            return first
        return ast.Comparison(tuple(operands), tuple(ops))

    def _parse_add_sub(self) -> ast.Expr:
        left = self._parse_mul_div()
        while self.current.type in (TokenType.PLUS, TokenType.MINUS):
            op = "+" if self._advance().type is TokenType.PLUS else "-"
            left = ast.Arithmetic(op, left, self._parse_mul_div())
        return left

    def _parse_mul_div(self) -> ast.Expr:
        left = self._parse_power()
        ops = {TokenType.STAR: "*", TokenType.SLASH: "/", TokenType.PERCENT: "%"}
        while self.current.type in ops:
            op = ops[self._advance().type]
            left = ast.Arithmetic(op, left, self._parse_power())
        return left

    def _parse_power(self) -> ast.Expr:
        base = self._parse_unary()
        if self.current.type is TokenType.CARET:
            self._advance()
            # right-associative
            return ast.Arithmetic("^", base, self._parse_power())
        return base

    def _parse_unary(self) -> ast.Expr:
        if self.current.type is TokenType.MINUS:
            self._advance()
            operand = self._parse_unary()
            if isinstance(operand, ast.Literal) and isinstance(
                operand.value, (int, float)
            ):
                return ast.Literal(-operand.value)
            return ast.UnaryMinus(operand)
        if self.current.type is TokenType.PLUS:
            self._advance()
            return self._parse_unary()
        return self._parse_string_list_null()

    def _parse_string_list_null(self) -> ast.Expr:
        expr = self._parse_property_or_labels()
        while True:
            if self._at_keyword("IN"):
                self._advance()
                expr = ast.In(expr, self._parse_property_or_labels())
            elif self._at_keyword("STARTS"):
                self._advance()
                self._expect_keyword("WITH")
                expr = ast.StringPredicate(
                    "STARTS WITH", expr, self._parse_property_or_labels()
                )
            elif self._at_keyword("ENDS"):
                self._advance()
                self._expect_keyword("WITH")
                expr = ast.StringPredicate(
                    "ENDS WITH", expr, self._parse_property_or_labels()
                )
            elif self._at_keyword("CONTAINS"):
                self._advance()
                expr = ast.StringPredicate(
                    "CONTAINS", expr, self._parse_property_or_labels()
                )
            elif self._at_keyword("IS"):
                self._advance()
                negated = self._accept_keyword("NOT")
                self._expect_keyword("NULL")
                expr = ast.IsNull(expr, negated=negated)
            else:
                return expr

    def _parse_property_or_labels(self) -> ast.Expr:
        expr = self._parse_atom()
        while True:
            if self.current.type is TokenType.DOT:
                self._advance()
                expr = ast.Property(expr, self._property_key())
            elif self.current.type is TokenType.LBRACKET:
                self._advance()
                expr = self._parse_subscript_or_slice(expr)
            elif self.current.type is TokenType.COLON:
                labels = []
                while self.current.type is TokenType.COLON:
                    self._advance()
                    labels.append(self._name("label name"))
                expr = ast.HasLabel(expr, tuple(labels))
            else:
                return expr

    def _property_key(self) -> str:
        if self.current.type is TokenType.IDENT:
            return self._advance().text
        if self.current.type is TokenType.KEYWORD:
            return self._advance().text.lower()
        raise self._error("expected property key after '.'")

    def _parse_subscript_or_slice(self, subject: ast.Expr) -> ast.Expr:
        low: ast.Expr | None = None
        if self.current.type is TokenType.DOTDOT:
            self._advance()
            high = (
                None
                if self.current.type is TokenType.RBRACKET
                else self._parse_expression()
            )
            self._expect(TokenType.RBRACKET, "']'")
            return ast.Slice(subject, None, high)
        low = self._parse_expression()
        if self.current.type is TokenType.DOTDOT:
            self._advance()
            high = (
                None
                if self.current.type is TokenType.RBRACKET
                else self._parse_expression()
            )
            self._expect(TokenType.RBRACKET, "']'")
            return ast.Slice(subject, low, high)
        self._expect(TokenType.RBRACKET, "']'")
        return ast.Subscript(subject, low)

    def _parse_atom(self) -> ast.Expr:
        token = self.current
        if token.type is TokenType.INTEGER or token.type is TokenType.FLOAT:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.PARAMETER:
            self._advance()
            return ast.Parameter(token.text)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect(TokenType.LPAREN, "'(' after exists")
            arg = self._parse_expression()
            self._expect(TokenType.RPAREN, "')'")
            return ast.FunctionCall("exists", (arg,))
        if token.type is TokenType.IDENT:
            if self._peek().type is TokenType.LPAREN:
                return self._parse_function_call()
            self._advance()
            return ast.Variable(token.text)
        if token.type is TokenType.LBRACKET:
            self._advance()
            items: list[ast.Expr] = []
            if self.current.type is not TokenType.RBRACKET:
                while True:
                    items.append(self._parse_expression())
                    if self.current.type is TokenType.COMMA:
                        self._advance()
                    else:
                        break
            self._expect(TokenType.RBRACKET, "']'")
            return ast.ListLiteral(tuple(items))
        if token.type is TokenType.LBRACE:
            return ast.MapLiteral(self._parse_map_entries())
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self._parse_expression()
            self._expect(TokenType.RPAREN, "')'")
            return expr
        raise self._error("expected an expression")

    def _parse_function_call(self) -> ast.Expr:
        name = self._advance().text
        self._expect(TokenType.LPAREN, "'('")
        if name.lower() == "count" and self.current.type is TokenType.STAR:
            self._advance()
            self._expect(TokenType.RPAREN, "')'")
            return ast.CountStar()
        distinct = self._accept_keyword("DISTINCT")
        args: list[ast.Expr] = []
        if self.current.type is not TokenType.RPAREN:
            while True:
                args.append(self._parse_expression())
                if self.current.type is TokenType.COMMA:
                    self._advance()
                else:
                    break
        self._expect(TokenType.RPAREN, "')'")
        return ast.FunctionCall(name.lower(), tuple(args), distinct=distinct)

    def _parse_case(self) -> ast.Expr:
        self._expect_keyword("CASE")
        subject: ast.Expr | None = None
        if not self._at_keyword("WHEN"):
            subject = self._parse_expression()
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self._accept_keyword("WHEN"):
            condition = self._parse_expression()
            if subject is not None:
                condition = ast.Comparison((subject, condition), ("=",))
            self._expect_keyword("THEN")
            whens.append((condition, self._parse_expression()))
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        default = self._parse_expression() if self._accept_keyword("ELSE") else None
        self._expect_keyword("END")
        return ast.CaseExpr(tuple(whens), default)


def parse(text: str) -> ast.Query | ast.UpdatingQuery | UnionQuery:
    """Parse *text* into an AST; raises :class:`CypherSyntaxError` on error."""
    return Parser(text).parse()


def parse_script(
    text: str,
) -> list[ast.Query | ast.UpdatingQuery | UnionQuery]:
    """Parse a ``;``-separated sequence of statements.

    Empty statements (stray semicolons, trailing whitespace) are skipped;
    at least one statement is required.
    """
    parser = Parser(text)
    statements: list[ast.Query | ast.UpdatingQuery | UnionQuery] = []
    while True:
        while parser.current.type is TokenType.SEMICOLON:
            parser._advance()
        if parser.current.type is TokenType.EOF:
            break
        statements.append(parser._parse_statement())
    if not statements:
        raise CypherSyntaxError("empty script", 1, 1)
    return statements


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone expression (testing convenience)."""
    parser = Parser(text)
    expr = parser._parse_expression()
    if parser.current.type is not TokenType.EOF:
        raise parser._error("unexpected trailing input after expression")
    return expr
