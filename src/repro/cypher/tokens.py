"""Token kinds for the openCypher lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenType(Enum):
    # literals / names
    IDENT = auto()
    INTEGER = auto()
    FLOAT = auto()
    STRING = auto()
    PARAMETER = auto()

    # punctuation
    LPAREN = auto()
    RPAREN = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    LBRACE = auto()
    RBRACE = auto()
    COMMA = auto()
    COLON = auto()
    SEMICOLON = auto()
    DOT = auto()
    DOTDOT = auto()
    PIPE = auto()

    # operators
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    CARET = auto()
    EQ = auto()
    NEQ = auto()
    LT = auto()
    GT = auto()
    LE = auto()
    GE = auto()
    ARROW_RIGHT = auto()  # ->
    ARROW_LEFT = auto()  # <-

    # keywords (matched case-insensitively from IDENT spelling)
    KEYWORD = auto()

    EOF = auto()


#: Reserved words recognised by the parser.  openCypher keywords are case
#: insensitive; the lexer upper-cases them into ``Token.text``.
KEYWORDS = frozenset(
    {
        "MATCH",
        "OPTIONAL",
        "WHERE",
        "RETURN",
        "WITH",
        "UNWIND",
        "AS",
        "DISTINCT",
        "ORDER",
        "BY",
        "ASC",
        "ASCENDING",
        "DESC",
        "DESCENDING",
        "SKIP",
        "LIMIT",
        "AND",
        "OR",
        "XOR",
        "NOT",
        "IN",
        "STARTS",
        "ENDS",
        "CONTAINS",
        "IS",
        "NULL",
        "TRUE",
        "FALSE",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "UNION",
        "ALL",
        "EXISTS",
        # updating clauses
        "CREATE",
        "DELETE",
        "DETACH",
        "SET",
        "REMOVE",
        "MERGE",
        "ON",
    }
)


@dataclass(frozen=True, slots=True)
class Token:
    type: TokenType
    text: str
    line: int
    column: int
    value: object = None  # decoded value for literals

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text == word

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"Token({self.type.name}, {self.text!r}, {self.line}:{self.column})"
