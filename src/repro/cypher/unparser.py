"""Render an AST back to openCypher text.

The output is canonical (keywords upper-case, single spaces) and reparses to
an equal AST — the round-trip property checked by the parser test suite.
"""

from __future__ import annotations

from ..errors import CompilerError
from . import ast
from .parser import UnionQuery


def unparse(node: ast.AstNode | UnionQuery) -> str:
    if isinstance(node, UnionQuery):
        joiner = " UNION ALL " if node.all else " UNION "
        return joiner.join(unparse(q) for q in node.queries)
    if isinstance(node, ast.Query):
        parts = [unparse(c) for c in node.clauses]
        parts.append(unparse(node.return_clause))
        return " ".join(parts)
    if isinstance(node, ast.MatchClause):
        text = ("OPTIONAL " if node.optional else "") + "MATCH " + unparse(node.pattern)
        if node.where is not None:
            text += " WHERE " + unparse_expr(node.where)
        return text
    if isinstance(node, ast.UnwindClause):
        return f"UNWIND {unparse_expr(node.expression)} AS {node.alias}"
    if isinstance(node, ast.WithClause):
        text = "WITH " + _projection(node.body)
        if node.where is not None:
            text += " WHERE " + unparse_expr(node.where)
        return text
    if isinstance(node, ast.ReturnClause):
        return "RETURN " + _projection(node.body)
    if isinstance(node, ast.UpdatingQuery):
        parts = [unparse(c) for c in node.clauses]
        if node.return_clause is not None:
            parts.append(unparse(node.return_clause))
        return " ".join(parts)
    if isinstance(node, ast.CreateClause):
        return "CREATE " + unparse(node.pattern)
    if isinstance(node, ast.MergeClause):
        text = "MERGE " + unparse(node.part)
        if node.on_create:
            text += " ON CREATE SET " + ", ".join(
                _set_item(i) for i in node.on_create
            )
        if node.on_match:
            text += " ON MATCH SET " + ", ".join(_set_item(i) for i in node.on_match)
        return text
    if isinstance(node, ast.DeleteClause):
        keyword = "DETACH DELETE" if node.detach else "DELETE"
        return f"{keyword} " + ", ".join(unparse_expr(e) for e in node.expressions)
    if isinstance(node, ast.SetClause):
        return "SET " + ", ".join(_set_item(i) for i in node.items)
    if isinstance(node, ast.RemoveClause):
        return "REMOVE " + ", ".join(_remove_item(i) for i in node.items)
    if isinstance(node, ast.Pattern):
        return ", ".join(unparse(p) for p in node.parts)
    if isinstance(node, ast.PatternPart):
        prefix = f"{node.variable} = " if node.variable else ""
        return prefix + "".join(unparse(e) for e in node.elements)
    if isinstance(node, ast.NodePattern):
        inner = node.variable or ""
        inner += "".join(f":{l}" for l in node.labels)
        if node.properties:
            inner += (" " if inner else "") + _map_text(node.properties)
        return f"({inner})"
    if isinstance(node, ast.RelationshipPattern):
        return _relationship(node)
    if isinstance(node, ast.Expr):
        return unparse_expr(node)
    raise CompilerError(f"cannot unparse {type(node).__name__}")


def _projection(body: ast.ProjectionBody) -> str:
    text = "DISTINCT " if body.distinct else ""
    text += ", ".join(
        (["*"] if body.star else [])
        + [
            unparse_expr(item.expression)
            + (f" AS {item.alias}" if item.alias else "")
            for item in body.items
        ]
    )
    if body.order_by:
        text += " ORDER BY " + ", ".join(
            unparse_expr(o.expression) + ("" if o.ascending else " DESC")
            for o in body.order_by
        )
    if body.skip is not None:
        text += " SKIP " + unparse_expr(body.skip)
    if body.limit is not None:
        text += " LIMIT " + unparse_expr(body.limit)
    return text


def _relationship(rel: ast.RelationshipPattern) -> str:
    inner = rel.variable or ""
    if rel.types:
        inner += ":" + "|".join(rel.types)
    if rel.var_length:
        if rel.min_hops == 1 and rel.max_hops is None:
            inner += "*"
        elif rel.min_hops == rel.max_hops:
            inner += f"*{rel.min_hops}"
        elif rel.max_hops is None:
            inner += f"*{rel.min_hops}.."
        else:
            inner += f"*{rel.min_hops}..{rel.max_hops}"
    if rel.properties:
        inner += (" " if inner else "") + _map_text(rel.properties)
    detail = f"[{inner}]" if inner else ""
    left = "<-" if rel.direction in ("in", "both") and rel.direction == "in" else "-"
    right = "->" if rel.direction == "out" else "-"
    if rel.direction == "in":
        left, right = "<-", "-"
    elif rel.direction == "out":
        left, right = "-", "->"
    else:
        left, right = "-", "-"
    return f"{left}{detail}{right}"


def _set_item(item: ast.AstNode) -> str:
    if isinstance(item, ast.SetProperty):
        return f"{unparse_expr(item.target)} = {unparse_expr(item.value)}"
    if isinstance(item, ast.SetLabels):
        return item.variable + "".join(f":{l}" for l in item.labels)
    if isinstance(item, ast.SetProperties):
        op = "+=" if item.merge else "="
        return f"{item.variable} {op} {unparse_expr(item.value)}"
    raise CompilerError(f"cannot unparse SET item {type(item).__name__}")


def _remove_item(item: ast.AstNode) -> str:
    if isinstance(item, ast.RemoveProperty):
        return unparse_expr(item.target)
    if isinstance(item, ast.RemoveLabels):
        return item.variable + "".join(f":{l}" for l in item.labels)
    raise CompilerError(f"cannot unparse REMOVE item {type(item).__name__}")


def _map_text(entries: tuple[tuple[str, ast.Expr], ...]) -> str:
    inner = ", ".join(f"{k}: {unparse_expr(v)}" for k, v in entries)
    return "{" + inner + "}"


def _literal_text(value: object) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    return repr(value)


def unparse_expr(expr: ast.Expr) -> str:
    """Render an expression with explicit parentheses where needed."""
    if isinstance(expr, ast.Literal):
        return _literal_text(expr.value)
    if isinstance(expr, ast.Parameter):
        return f"${expr.name}"
    if isinstance(expr, ast.Variable):
        return expr.name
    if isinstance(expr, ast.Property):
        return f"{_maybe_paren(expr.subject)}.{expr.key}"
    if isinstance(expr, ast.ListLiteral):
        return "[" + ", ".join(unparse_expr(i) for i in expr.items) + "]"
    if isinstance(expr, ast.MapLiteral):
        return _map_text(expr.items)
    if isinstance(expr, ast.Subscript):
        return f"{_maybe_paren(expr.subject)}[{unparse_expr(expr.index)}]"
    if isinstance(expr, ast.Slice):
        low = unparse_expr(expr.low) if expr.low is not None else ""
        high = unparse_expr(expr.high) if expr.high is not None else ""
        return f"{_maybe_paren(expr.subject)}[{low}..{high}]"
    if isinstance(expr, ast.FunctionCall):
        inner = ", ".join(unparse_expr(a) for a in expr.args)
        if expr.distinct:
            inner = "DISTINCT " + inner
        return f"{expr.name}({inner})"
    if isinstance(expr, ast.CountStar):
        return "count(*)"
    if isinstance(expr, ast.Not):
        return f"(NOT ({unparse_expr(expr.operand)}))"
    if isinstance(expr, ast.BooleanOp):
        joiner = f" {expr.op} "
        return "(" + joiner.join(unparse_expr(o) for o in expr.operands) + ")"
    if isinstance(expr, ast.Comparison):
        parts = [unparse_expr(expr.operands[0])]
        for op, operand in zip(expr.ops, expr.operands[1:]):
            parts.append(op)
            parts.append(unparse_expr(operand))
        return "(" + " ".join(parts) + ")"
    if isinstance(expr, ast.Arithmetic):
        return f"({unparse_expr(expr.left)} {expr.op} {unparse_expr(expr.right)})"
    if isinstance(expr, ast.UnaryMinus):
        return f"(-{unparse_expr(expr.operand)})"
    if isinstance(expr, ast.In):
        return f"({_tight(expr.item)} IN {_tight(expr.container)})"
    if isinstance(expr, ast.StringPredicate):
        return f"({_tight(expr.subject)} {expr.kind} {_tight(expr.pattern)})"
    if isinstance(expr, ast.IsNull):
        keyword = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({_tight(expr.operand)} {keyword})"
    if isinstance(expr, ast.CaseExpr):
        parts = ["CASE"]
        for condition, value in expr.whens:
            parts.append(f"WHEN {unparse_expr(condition)} THEN {unparse_expr(value)}")
        if expr.default is not None:
            parts.append(f"ELSE {unparse_expr(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, ast.HasLabel):
        return _maybe_paren(expr.subject) + "".join(f":{l}" for l in expr.labels)
    raise CompilerError(f"cannot unparse expression {type(expr).__name__}")


def _maybe_paren(expr: ast.Expr) -> str:
    if isinstance(expr, (ast.Variable, ast.Parameter, ast.Property, ast.FunctionCall)):
        return unparse_expr(expr)
    return f"({unparse_expr(expr)})"


def _tight(expr: ast.Expr) -> str:
    """Operand rendering for IN / STARTS WITH / IS NULL, whose grammar slots
    accept only property-or-labels-level terms: anything looser — including
    a negative literal, which reparses through unary minus — gets parens."""
    atomic = (
        ast.Variable,
        ast.Parameter,
        ast.Property,
        ast.FunctionCall,
        ast.ListLiteral,
        ast.MapLiteral,
        ast.Subscript,
        ast.CountStar,
    )
    if isinstance(expr, atomic):
        return unparse_expr(expr)
    if isinstance(expr, ast.Literal) and not (
        isinstance(expr.value, (int, float))
        and not isinstance(expr.value, bool)
        and expr.value < 0
    ):
        return unparse_expr(expr)
    return f"({unparse_expr(expr)})"
