"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch a single base class.  The hierarchy mirrors the major subsystems:
graph store, Cypher front end, algebra/compiler, and the incremental engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphError(ReproError):
    """Base class for property graph store errors."""


class EntityNotFoundError(GraphError):
    """A vertex or edge id does not exist in the graph."""

    def __init__(self, kind: str, entity_id: int) -> None:
        super().__init__(f"{kind} with id {entity_id} does not exist")
        self.kind = kind
        self.entity_id = entity_id


class DanglingEdgeError(GraphError):
    """An operation would leave an edge without a valid endpoint."""


class InvalidValueError(GraphError):
    """A property value is outside the supported value domain."""


class TransactionError(GraphError):
    """Misuse of the transaction/batching API."""


class CypherError(ReproError):
    """Base class for Cypher front-end errors."""


class CypherSyntaxError(CypherError):
    """The query text could not be tokenised or parsed.

    Carries the 1-based ``line`` and ``column`` of the offending position so
    callers can point at the error in the original query text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class CypherSemanticError(CypherError):
    """The query parsed but is not well formed (e.g. unbound variable)."""


class UnsupportedFeatureError(CypherError):
    """The query uses openCypher syntax outside the implemented fragment."""


class CompilerError(ReproError):
    """Internal error while lowering a query through GRA/NRA/FRA."""


class EvaluationError(ReproError):
    """Runtime error while evaluating an expression or a plan."""


class ShardError(ReproError):
    """A sharded maintenance tier worker failed or was misused.

    Raised by :class:`~repro.rete.shard.ShardCoordinator` when a worker
    process dies, reports an exception, or a migration's replayed state
    fails the parity check against the source worker.
    """


class UnsupportedForIncrementalError(ReproError):
    """The query is valid but outside the incrementally maintainable fragment.

    The paper's maintainable fragment excludes ordering constructs
    (``ORDER BY``, ``SKIP``, ``LIMIT``, top-k); registering such a query as an
    incremental view raises this error, while one-shot evaluation still
    supports it.
    """
