"""Non-incremental evaluation: pull-based interpreter, results, oracle."""

from .interpreter import GraphResolver, Interpreter, enumerate_trails, evaluate_plan
from .projections import edge_projection_value, labels_value, vertex_projection_value
from .results import ResultTable, bag_equal, canonical_order

__all__ = [
    "Interpreter",
    "GraphResolver",
    "evaluate_plan",
    "enumerate_trails",
    "ResultTable",
    "bag_equal",
    "canonical_order",
    "vertex_projection_value",
    "edge_projection_value",
    "labels_value",
]
