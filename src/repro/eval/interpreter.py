"""Pull-based plan interpreter: the non-incremental baseline and oracle.

Evaluates GRA, NRA or FRA plans directly against a
:class:`~repro.graph.graph.PropertyGraph` by full recomputation.  Three
roles in the reproduction:

* the **baseline** every benchmark compares the Rete engine against
  (re-evaluate after every update, as a system without IVM must),
* the **correctness oracle** for differential tests (incremental view
  contents must equal full recomputation after arbitrary update streams),
* the executor for queries *outside* the incrementally maintainable
  fragment (ORDER BY / SKIP / LIMIT), which the paper excludes from IVM
  but which one-shot evaluation supports.

Unlike the Rete network, this interpreter may also evaluate the nested
stages (µ unnests, GRA expands) — used by the stage-equivalence tests that
check the paper's claim that each lowering step preserves semantics.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from ..algebra import ops
from ..algebra.expressions import EntityResolver, EvalContext, compile_expr
from ..algebra.schema import Schema
from ..cypher import ast
from ..errors import EvaluationError
from ..graph.graph import PropertyGraph
from ..graph.values import ListValue, PathValue, order_key
from .projections import edge_projection_value, vertex_projection_value
from .results import ResultTable

Bag = dict[tuple, int]


def _add(bag: Bag, row: tuple, multiplicity: int) -> None:
    count = bag.get(row, 0) + multiplicity
    if count:
        bag[row] = count
    else:
        bag.pop(row, None)


def enumerate_trails(
    graph: PropertyGraph,
    start: int,
    types: tuple[str, ...],
    direction: str,
    min_hops: int,
    max_hops: int | None,
) -> Iterator[tuple[int, PathValue]]:
    """All trails (edge-distinct walks) from *start*, DFS order.

    Yields ``(end_vertex, path)`` for every trail with
    ``min_hops <= length <= max_hops``.  This is the reference semantics the
    incremental transitive-closure node must agree with.
    """
    if not graph.has_vertex(start):
        return
    if min_hops == 0:
        yield start, PathValue((start,), ())

    def arcs(vertex: int) -> Iterator[tuple[int, int]]:
        type_list: tuple[str | None, ...] = types if types else (None,)
        for edge_type in type_list:
            if direction in ("out", "both"):
                for edge in graph.out_edges(vertex, edge_type):
                    yield edge, graph.target_of(edge)
            if direction in ("in", "both"):
                for edge in graph.in_edges(vertex, edge_type):
                    source = graph.source_of(edge)
                    # An undirected pattern binds a relationship once: a
                    # self-loop already appeared in the out-edge iteration.
                    if direction == "both" and source == vertex:
                        continue
                    yield edge, source

    stack: list[tuple[int, tuple[int, ...], tuple[int, ...]]] = [(start, (start,), ())]
    while stack:
        vertex, vertices, edges = stack.pop()
        if max_hops is not None and len(edges) >= max_hops:
            continue
        for edge, nxt in arcs(vertex):
            if edge in edges:
                continue
            new_vertices = vertices + (nxt,)
            new_edges = edges + (edge,)
            if len(new_edges) >= min_hops:
                yield nxt, PathValue(new_vertices, new_edges)
            stack.append((nxt, new_vertices, new_edges))



class GraphResolver(EntityResolver):
    """Adapter giving expressions live graph access (property lookups,
    labels, types) when their rows carry bare entity ids."""

    def __init__(self, graph: PropertyGraph):
        self.graph = graph

    def vertex_property(self, vertex_id, key):
        return self.graph.vertex_property(vertex_id, key)

    def edge_property(self, edge_id, key):
        return self.graph.edge_property(edge_id, key)

    def vertex_labels(self, vertex_id):
        from .projections import labels_value

        return labels_value(self.graph.labels_of(vertex_id))

    def edge_type(self, edge_id):
        return self.graph.type_of(edge_id)

    def vertex_properties(self, vertex_id):
        from ..graph.values import MapValue

        return MapValue(self.graph.vertex_properties(vertex_id))

    def edge_properties(self, edge_id):
        from ..graph.values import MapValue

        return MapValue(self.graph.edge_properties(edge_id))


class Interpreter:
    """Evaluates a plan tree against a graph snapshot."""

    def __init__(
        self, graph: PropertyGraph, parameters: Mapping[str, Any] | None = None
    ):
        self.graph = graph
        self.ctx = EvalContext(dict(parameters or {}))
        self.resolver = GraphResolver(graph)

    def _compile(self, expr, schema):
        return compile_expr(expr, schema, self.resolver)

    # -- public entry ---------------------------------------------------------

    def run(self, plan: ops.Operator) -> ResultTable:
        """Evaluate *plan*; ordering operators at the top yield an ordered
        result, anything else a bag."""
        modifiers: list[ops.Operator] = []
        inner = plan
        while isinstance(inner, (ops.Sort, ops.Skip, ops.Limit)):
            modifiers.append(inner)
            inner = inner.children[0]
        if not modifiers:
            bag = self.evaluate(plan)
            rows = [row for row, m in bag.items() for _ in range(m)]
            return ResultTable(plan.schema, rows, ordered=False, graph=self.graph)
        rows = self._expand(self.evaluate(inner))
        rows = self._canonical(rows)
        for modifier in reversed(modifiers):
            if isinstance(modifier, ops.Sort):
                rows = self._sorted(rows, modifier, inner.schema)
            elif isinstance(modifier, ops.Skip):
                rows = rows[self._count_of(modifier.count) :]
            else:
                assert isinstance(modifier, ops.Limit)
                count = self._count_of(modifier.count)
                rows = rows[:count]
        return ResultTable(plan.schema, rows, ordered=True, graph=self.graph)

    def _count_of(self, expr: ast.Expr) -> int:
        value = self._compile(expr, Schema(()))((), self.ctx)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise EvaluationError(f"SKIP/LIMIT must be a non-negative integer, got {value!r}")
        return value

    def _expand(self, bag: Bag) -> list[tuple]:
        return [row for row, m in bag.items() for _ in range(m)]

    def _canonical(self, rows: list[tuple]) -> list[tuple]:
        return sorted(rows, key=lambda r: tuple(order_key(v) for v in r))

    def _sorted(
        self, rows: list[tuple], sort: ops.Sort, schema: Schema
    ) -> list[tuple]:
        compiled = [(self._compile(e, schema), asc) for e, asc in sort.items]
        for fn, ascending in reversed(compiled):  # stable multi-key sort
            rows = sorted(
                rows, key=lambda r: order_key(fn(r, self.ctx)), reverse=not ascending
            )
        return rows

    # -- bag evaluation ---------------------------------------------------------

    def evaluate(self, op: ops.Operator) -> Bag:
        method = getattr(self, f"_eval_{type(op).__name__}", None)
        if method is None:
            raise EvaluationError(f"cannot interpret {type(op).__name__}")
        return method(op)

    def _eval_Unit(self, op: ops.Unit) -> Bag:
        return {(): 1}

    def _eval_ViewScan(self, op: ops.ViewScan) -> Bag:
        # The view-answering rewriter spliced this leaf in: read the live
        # materialisation instead of recomputing the subtree from the
        # graph.  ``source`` returns a fresh bag, safe to hand upstream.
        return op.source()

    def _eval_GetVertices(self, op: ops.GetVertices) -> Bag:
        graph = self.graph
        bag: Bag = {}
        seed = op.labels[0] if op.labels else None
        rest = op.labels[1:]
        for vertex in graph.vertices(seed):
            if rest and not all(graph.has_label(vertex, l) for l in rest):
                continue
            row = [vertex]
            for projection in op.projections:
                row.append(vertex_projection_value(graph, vertex, projection))
            _add(bag, tuple(row), 1)
        return bag

    def _edge_rows(self, op: ops.GetEdges) -> Iterator[tuple[int, int, int]]:
        graph = self.graph
        type_list: tuple[str | None, ...] = op.types if op.types else (None,)
        for edge_type in type_list:
            for s, e, t in graph.edge_triples(edge_type):
                yield s, e, t
                if not op.directed and s != t:
                    yield t, e, s

    def _eval_GetEdges(self, op: ops.GetEdges) -> Bag:
        graph = self.graph
        bag: Bag = {}
        for s, e, t in self._edge_rows(op):
            if op.src_labels and not all(graph.has_label(s, l) for l in op.src_labels):
                continue
            if op.tgt_labels and not all(graph.has_label(t, l) for l in op.tgt_labels):
                continue
            row = [s, e, t]
            for projection in op.projections:
                if projection.subject == op.edge:
                    row.append(edge_projection_value(graph, e, projection))
                elif projection.subject == op.src:
                    row.append(vertex_projection_value(graph, s, projection))
                else:
                    row.append(vertex_projection_value(graph, t, projection))
            _add(bag, tuple(row), 1)
        return bag

    def _eval_Select(self, op: ops.Select) -> Bag:
        child = self.evaluate(op.children[0])
        predicate = self._compile(op.predicate, op.children[0].schema)
        return {
            row: m for row, m in child.items() if predicate(row, self.ctx) is True
        }

    def _eval_Project(self, op: ops.Project) -> Bag:
        child = self.evaluate(op.children[0])
        fns = [self._compile(e, op.children[0].schema) for _, e in op.items]
        bag: Bag = {}
        for row, m in child.items():
            _add(bag, tuple(fn(row, self.ctx) for fn in fns), m)
        return bag

    def _eval_Dedup(self, op: ops.Dedup) -> Bag:
        return {row: 1 for row in self.evaluate(op.children[0])}

    def _eval_Unwind(self, op: ops.Unwind) -> Bag:
        child = self.evaluate(op.children[0])
        fn = self._compile(op.expression, op.children[0].schema)
        bag: Bag = {}
        for row, m in child.items():
            value = fn(row, self.ctx)
            if value is None:
                continue
            elements = list(value) if isinstance(value, ListValue) else [value]
            for element in elements:
                _add(bag, row + (element,), m)
        return bag

    def _eval_PropertyUnnest(self, op: ops.PropertyUnnest) -> Bag:
        child = self.evaluate(op.children[0])
        projection = op.projection
        subject_index = op.children[0].schema.index_of(projection.subject)
        subject_kind = op.children[0].schema.kind_of(projection.subject)
        graph = self.graph
        bag: Bag = {}
        from ..algebra.schema import AttrKind

        for row, m in child.items():
            entity = row[subject_index]
            if entity is None:
                value = None
            elif subject_kind is AttrKind.VERTEX:
                value = vertex_projection_value(graph, entity, projection)
            else:
                value = edge_projection_value(graph, entity, projection)
            _add(bag, row + (value,), m)
        return bag

    def _eval_Aggregate(self, op: ops.Aggregate) -> Bag:
        child_schema = op.children[0].schema
        child = self.evaluate(op.children[0])
        key_fns = [self._compile(e, child_schema) for _, e in op.keys]
        arg_fns = [
            self._compile(a.argument, child_schema) if a.argument is not None else None
            for a in op.aggregates
        ]
        groups: dict[tuple, list] = {}
        for row, m in child.items():
            key = tuple(fn(row, self.ctx) for fn in key_fns)
            state = groups.get(key)
            if state is None:
                state = [spec.make_aggregator() for spec in op.aggregates]
                groups[key] = state
            for aggregator, fn in zip(state, arg_fns):
                value = fn(row, self.ctx) if fn is not None else True
                aggregator.insert(value, m)
        if not op.keys and not groups:
            groups[()] = [spec.make_aggregator() for spec in op.aggregates]
        bag: Bag = {}
        for key, state in groups.items():
            _add(bag, key + tuple(a.result() for a in state), 1)
        return bag

    def _eval_Join(self, op: ops.Join) -> Bag:
        left_op, right_op = op.children
        left = self.evaluate(left_op)
        right = self.evaluate(right_op)
        left_key = [left_op.schema.index_of(n) for n in op.common]
        right_key = [right_op.schema.index_of(n) for n in op.common]
        extra = [
            i for i, a in enumerate(right_op.schema) if a.name not in op.common
        ]
        index: dict[tuple, list[tuple[tuple, int]]] = {}
        for row, m in right.items():
            index.setdefault(tuple(row[i] for i in right_key), []).append((row, m))
        bag: Bag = {}
        for row, m in left.items():
            for other, m2 in index.get(tuple(row[i] for i in left_key), ()):  # type: ignore[arg-type]
                _add(bag, row + tuple(other[i] for i in extra), m * m2)
        return bag

    def _eval_AntiJoin(self, op: ops.AntiJoin) -> Bag:
        left_op, right_op = op.children
        left = self.evaluate(left_op)
        right = self.evaluate(right_op)
        left_key = [left_op.schema.index_of(n) for n in op.common]
        right_key = [right_op.schema.index_of(n) for n in op.common]
        present = {tuple(row[i] for i in right_key) for row in right}
        return {
            row: m
            for row, m in left.items()
            if tuple(row[i] for i in left_key) not in present
        }

    def _eval_LeftOuterJoin(self, op: ops.LeftOuterJoin) -> Bag:
        left_op, right_op = op.children
        left = self.evaluate(left_op)
        right = self.evaluate(right_op)
        left_key = [left_op.schema.index_of(n) for n in op.common]
        right_key = [right_op.schema.index_of(n) for n in op.common]
        extra = [
            i for i, a in enumerate(right_op.schema) if a.name not in op.common
        ]
        index: dict[tuple, list[tuple[tuple, int]]] = {}
        for row, m in right.items():
            index.setdefault(tuple(row[i] for i in right_key), []).append((row, m))
        nulls = (None,) * len(extra)
        bag: Bag = {}
        for row, m in left.items():
            matches = index.get(tuple(row[i] for i in left_key))
            if matches:
                for other, m2 in matches:
                    _add(bag, row + tuple(other[i] for i in extra), m * m2)
            else:
                _add(bag, row + nulls, m)
        return bag

    def _eval_Union(self, op: ops.Union) -> Bag:
        left = self.evaluate(op.children[0])
        right = self.evaluate(op.children[1])
        bag = dict(left)
        for row, m in right.items():
            _add(bag, tuple(row[i] for i in op.right_permutation), m)
        return bag

    def _eval_TransitiveJoin(self, op: ops.TransitiveJoin) -> Bag:
        left_op = op.children[0]
        edges = op.edges
        left = self.evaluate(left_op)
        source_index = left_op.schema.index_of(op.source)
        emit_path = op.path_alias is not None
        bag: Bag = {}
        trail_cache: dict[int, list[tuple[int, PathValue]]] = {}
        for row, m in left.items():
            start = row[source_index]
            if start is None or not isinstance(start, int):
                continue
            if start not in trail_cache:
                trail_cache[start] = list(
                    enumerate_trails(
                        self.graph,
                        start,
                        edges.types,
                        op.direction,
                        op.min_hops,
                        op.max_hops,
                    )
                )
            for end, path in trail_cache[start]:
                out = row + ((end, path) if emit_path else (end,))
                _add(bag, out, m)
        return bag

    def _eval_ExpandOut(self, op: ops.ExpandOut) -> Bag:
        child_op = op.children[0]
        child = self.evaluate(child_op)
        graph = self.graph
        source_index = child_op.schema.index_of(op.src)
        bag: Bag = {}
        if op.var_length:
            for row, m in child.items():
                start = row[source_index]
                if start is None:
                    continue
                for end, path in enumerate_trails(
                    graph, start, op.types, op.direction, op.min_hops, op.max_hops
                ):
                    if op.tgt_labels and not all(
                        graph.has_label(end, l) for l in op.tgt_labels
                    ):
                        continue
                    out = row + (end,)
                    if op.path_alias is not None:
                        out += (path,)
                    _add(bag, out, m)
            return bag
        for row, m in child.items():
            start = row[source_index]
            if start is None:
                continue
            for end, path in enumerate_trails(
                graph, start, op.types, op.direction, 1, 1
            ):
                if op.tgt_labels and not all(
                    graph.has_label(end, l) for l in op.tgt_labels
                ):
                    continue
                _add(bag, row + (path.edges[0], end), m)
        return bag

    def _eval_Sort(self, op: ops.Sort) -> Bag:
        # Mid-plan Sort has no effect on bag semantics; ordering is applied
        # by run() (top level) or by Skip/Limit below.
        return self.evaluate(op.children[0])

    def _eval_Skip(self, op: ops.Skip) -> Bag:
        rows = self._ordered_rows(op.children[0])
        kept = rows[self._count_of(op.count) :]
        bag: Bag = {}
        for row in kept:
            _add(bag, row, 1)
        return bag

    def _eval_Limit(self, op: ops.Limit) -> Bag:
        rows = self._ordered_rows(op.children[0])
        kept = rows[: self._count_of(op.count)]
        bag: Bag = {}
        for row in kept:
            _add(bag, row, 1)
        return bag

    def _ordered_rows(self, op: ops.Operator) -> list[tuple]:
        """Rows of *op* in deterministic order for SKIP/LIMIT.

        An explicit Sort below SKIP/LIMIT defines the order; otherwise the
        canonical value order is used (openCypher leaves it unspecified;
        determinism keeps tests and benchmarks reproducible).
        """
        if isinstance(op, ops.Sort):
            rows = self._canonical(self._expand(self.evaluate(op.children[0])))
            return self._sorted(rows, op, op.children[0].schema)
        return self._canonical(self._expand(self.evaluate(op)))


def evaluate_plan(
    graph: PropertyGraph,
    plan: ops.Operator,
    parameters: Mapping[str, Any] | None = None,
) -> ResultTable:
    """One-shot evaluation of *plan* against *graph*."""
    return Interpreter(graph, parameters).run(plan)
