"""Materialisation of pushed-down base-relation columns from the graph.

Shared by the pull-based interpreter (scans) and the Rete input nodes
(initial population and delta construction): both must build *exactly* the
same column values for a given entity, or differential tests would fail on
representation rather than semantics.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..algebra.ops import PropertyProjection
from ..graph.graph import PropertyGraph
from ..graph.values import ListValue, MapValue


def labels_value(labels: Iterable[str]) -> ListValue:
    """Canonical (sorted) representation of a label set."""
    return ListValue(sorted(labels))


def vertex_projection_value(
    graph: PropertyGraph,
    vertex_id: int,
    projection: PropertyProjection,
    *,
    labels: Iterable[str] | None = None,
    properties: dict[str, Any] | None = None,
) -> Any:
    """Value of one pushed-down column for a vertex.

    ``labels``/``properties`` override the live graph state — the input
    nodes use this to build *pre-event* tuples from event payloads.
    """
    if projection.kind == "property":
        if properties is not None:
            return properties.get(projection.key)
        return graph.vertex_property(vertex_id, projection.key)  # type: ignore[arg-type]
    if projection.kind == "labels":
        return labels_value(
            labels if labels is not None else graph.labels_of(vertex_id)
        )
    if projection.kind == "properties":
        return MapValue(
            properties
            if properties is not None
            else graph.vertex_properties(vertex_id)
        )
    raise ValueError(f"projection kind {projection.kind!r} not valid for vertices")


def edge_projection_value(
    graph: PropertyGraph,
    edge_id: int,
    projection: PropertyProjection,
    *,
    edge_type: str | None = None,
    properties: dict[str, Any] | None = None,
) -> Any:
    """Value of one pushed-down column for an edge."""
    if projection.kind == "property":
        if properties is not None:
            return properties.get(projection.key)
        return graph.edge_property(edge_id, projection.key)  # type: ignore[arg-type]
    if projection.kind == "type":
        return edge_type if edge_type is not None else graph.type_of(edge_id)
    if projection.kind == "properties":
        return MapValue(
            properties if properties is not None else graph.edge_properties(edge_id)
        )
    raise ValueError(f"projection kind {projection.kind!r} not valid for edges")
