"""Query result containers.

A :class:`ResultTable` is a bag (or, for ordered one-shot queries, a
sequence) of rows aligned with a schema.  Entity attributes hold bare ids;
rendering helpers resolve them against the originating graph on demand.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from ..algebra.schema import AttrKind, Schema
from ..graph.graph import PropertyGraph
from ..graph.values import order_key


def canonical_order(rows: Iterator[tuple]) -> list[tuple]:
    """Deterministic ordering of rows for comparison and display."""
    return sorted(rows, key=lambda row: tuple(order_key(v) for v in row))


class ResultTable:
    """An immutable query result.

    ``ordered`` is True only for one-shot queries with ORDER BY/SKIP/LIMIT,
    where row order is semantically meaningful (the incrementally
    maintainable fragment never produces ordered results, per the paper).
    """

    def __init__(
        self,
        schema: Schema,
        rows: list[tuple],
        *,
        ordered: bool = False,
        graph: PropertyGraph | None = None,
    ):
        self._schema = schema
        self._rows = rows
        self._ordered = ordered
        self._graph = graph

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def columns(self) -> tuple[str, ...]:
        return self._schema.names

    @property
    def ordered(self) -> bool:
        return self._ordered

    def rows(self) -> list[tuple]:
        """Rows with multiplicity (a bag expanded to a list).

        Unordered results are returned in canonical order so the same bag
        always lists identically.
        """
        if self._ordered:
            return list(self._rows)
        return canonical_order(iter(self._rows))

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows())

    def multiset(self) -> dict[tuple, int]:
        """The result as a multiplicity map (basis for bag comparison)."""
        out: dict[tuple, int] = {}
        for row in self._rows:
            out[row] = out.get(row, 0) + 1
        return out

    def records(self) -> list[dict[str, Any]]:
        """Rows as dicts keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows()]

    def single(self) -> tuple:
        """The only row; raises if the result does not have exactly one."""
        rows = self.rows()
        if len(rows) != 1:
            raise ValueError(f"expected exactly one row, got {len(rows)}")
        return rows[0]

    def scalar(self) -> Any:
        """The only value of the only row."""
        row = self.single()
        if len(row) != 1:
            raise ValueError(f"expected exactly one column, got {len(row)}")
        return row[0]

    # -- rendering ---------------------------------------------------------

    def _render_value(self, value: Any, kind: AttrKind) -> str:
        if value is None:
            return "null"
        if kind is AttrKind.VERTEX and self._graph is not None and isinstance(value, int):
            if self._graph.has_vertex(value):
                labels = "".join(f":{l}" for l in sorted(self._graph.labels_of(value)))
                return f"({value}{labels})"
        if kind is AttrKind.EDGE and self._graph is not None and isinstance(value, int):
            if self._graph.has_edge(value):
                return f"[{value}:{self._graph.type_of(value)}]"
        return repr(value)

    def to_text(self, limit: int | None = 20) -> str:
        """A fixed-width table rendering (paper-style result tables)."""
        kinds = [a.kind for a in self._schema]
        rows = self.rows()
        shown = rows if limit is None else rows[:limit]
        cells = [
            [self._render_value(v, k) for v, k in zip(row, kinds)] for row in shown
        ]
        headers = list(self.columns)
        widths = [
            max(len(h), *(len(c[i]) for c in cells)) if cells else len(h)
            for i, h in enumerate(headers)
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row_cells in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row_cells, widths)))
        if limit is not None and len(rows) > limit:
            lines.append(f"... ({len(rows) - limit} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"ResultTable({len(self._rows)} rows, columns={self.columns})"


def bag_equal(a: Mapping[tuple, int], b: Mapping[tuple, int]) -> bool:
    """Multiset equality ignoring zero-count entries."""
    a_clean = {k: v for k, v in a.items() if v}
    b_clean = {k: v for k, v in b.items() if v}
    return a_clean == b_clean
