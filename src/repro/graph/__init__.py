"""Property graph substrate: store, value domain, and change events."""

from .events import (
    EdgeAdded,
    EdgePropertySet,
    EdgeRemoved,
    GraphEvent,
    VertexAdded,
    VertexLabelAdded,
    VertexLabelRemoved,
    VertexPropertySet,
    VertexRemoved,
)
from .graph import PropertyGraph, graph_from_dicts
from .persistence import DurableGraph, WriteAheadLog, replay_wal
from .transactions import Transaction
from .values import (
    ListValue,
    MapValue,
    PathValue,
    cypher_compare,
    cypher_eq,
    freeze_value,
    order_key,
    thaw_value,
)

__all__ = [
    "PropertyGraph",
    "graph_from_dicts",
    "Transaction",
    "DurableGraph",
    "WriteAheadLog",
    "replay_wal",
    "ListValue",
    "MapValue",
    "PathValue",
    "freeze_value",
    "thaw_value",
    "cypher_eq",
    "cypher_compare",
    "order_key",
    "GraphEvent",
    "VertexAdded",
    "VertexRemoved",
    "EdgeAdded",
    "EdgeRemoved",
    "VertexLabelAdded",
    "VertexLabelRemoved",
    "VertexPropertySet",
    "EdgePropertySet",
]
