"""Change events emitted by :class:`~repro.graph.graph.PropertyGraph`.

The incremental engine consumes these events as its *delta stream*: every
elementary mutation of the store produces exactly one event, emitted
synchronously after the store state has been updated.  Events carry enough
*before* state (old labels, old property values) that a consumer can retract
previously derived tuples without keeping its own shadow copy of the graph.

Setting a property to ``None`` is identical to removing it (Cypher
semantics), so property changes are a single event type with ``old_value``
and ``new_value`` where ``None`` means *absent*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping


@dataclass(frozen=True, slots=True)
class GraphEvent:
    """Base class for all change events."""


@dataclass(frozen=True, slots=True)
class VertexAdded(GraphEvent):
    vertex_id: int
    labels: frozenset[str]
    properties: Mapping[str, Any]


@dataclass(frozen=True, slots=True)
class VertexRemoved(GraphEvent):
    """Emitted after a vertex is removed; carries its final state."""

    vertex_id: int
    labels: frozenset[str]
    properties: Mapping[str, Any]


@dataclass(frozen=True, slots=True)
class EdgeAdded(GraphEvent):
    edge_id: int
    source: int
    target: int
    edge_type: str
    properties: Mapping[str, Any]


@dataclass(frozen=True, slots=True)
class EdgeRemoved(GraphEvent):
    """Emitted after an edge is removed; carries its final state."""

    edge_id: int
    source: int
    target: int
    edge_type: str
    properties: Mapping[str, Any]


@dataclass(frozen=True, slots=True)
class VertexLabelAdded(GraphEvent):
    vertex_id: int
    label: str


@dataclass(frozen=True, slots=True)
class VertexLabelRemoved(GraphEvent):
    vertex_id: int
    label: str


@dataclass(frozen=True, slots=True)
class VertexPropertySet(GraphEvent):
    """A vertex property changed; ``None`` means the key is/was absent."""

    vertex_id: int
    key: str
    old_value: Any
    new_value: Any


@dataclass(frozen=True, slots=True)
class EdgePropertySet(GraphEvent):
    """An edge property changed; ``None`` means the key is/was absent."""

    edge_id: int
    key: str
    old_value: Any
    new_value: Any


# ---------------------------------------------------------------------------
# Consolidated events (batching)
# ---------------------------------------------------------------------------
#
# The store never emits the two events below.  They are produced by the
# batching layer (:mod:`repro.rete.batch`), which coalesces a window of
# elementary events into at most one *net* change per entity: an entity
# created and destroyed inside the window vanishes entirely, and any number
# of label/property events on a surviving entity collapse into a single
# before → after transition.


@dataclass(frozen=True, slots=True)
class VertexChanged(GraphEvent):
    """Net label/property transition of a vertex that survives a batch."""

    vertex_id: int
    before_labels: frozenset[str]
    before_properties: Mapping[str, Any]
    after_labels: frozenset[str]
    after_properties: Mapping[str, Any]


@dataclass(frozen=True, slots=True)
class EdgeChanged(GraphEvent):
    """Net property transition of an edge that survives a batch."""

    edge_id: int
    source: int
    target: int
    edge_type: str
    before_properties: Mapping[str, Any]
    after_properties: Mapping[str, Any]


def changed_property_keys(
    before: Mapping[str, Any], after: Mapping[str, Any]
) -> set[str]:
    """Keys whose value differs between two property maps.

    ``None`` and *absent* compare equal (the Cypher convention this event
    model uses throughout).  Both the event router's candidate filters and
    the input nodes' relevance checks must use this one definition — they
    have to agree exactly for routed dispatch to match broadcast.
    """
    return {
        key
        for key in set(before) | set(after)
        if before.get(key) != after.get(key)
    }


def unwind_property_set(
    properties: Mapping[str, Any],
    event: "VertexPropertySet | EdgePropertySet",
) -> dict[str, Any]:
    """The property map as it stood *before* a property-set event.

    Inverts one :class:`VertexPropertySet`/:class:`EdgePropertySet` against
    the post-event map, honouring the ``None``-means-absent convention.
    """
    before = dict(properties)
    if event.old_value is None:
        before.pop(event.key, None)
    else:
        before[event.key] = event.old_value
    return before
