"""The property graph store.

Implements the paper's data model (§2): a property graph
``G = (V, E, st, L, T, L, T, Pv, Pe)`` with

* vertices ``V`` carrying a *set* of labels from ``L``,
* edges ``E`` carrying exactly one type from ``T`` and endpoint function
  ``st : E → V × V``,
* partial property functions ``Pv``/``Pe`` into the (nested) value domain.

The store is optimised for the access paths the query engine needs:

* label index (``get-vertices`` ©),
* type index (``get-edges`` ⇑),
* out/in adjacency (expansion and the non-incremental evaluator).

Every elementary mutation emits one :mod:`~repro.graph.events` event to all
subscribed listeners, synchronously, *after* the store has been updated —
this event stream is the input delta stream of the Rete network.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping

from ..errors import (
    DanglingEdgeError,
    EntityNotFoundError,
    GraphError,
    TransactionError,
)
from . import events as ev
from .values import freeze_value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .transactions import Transaction

Listener = Callable[[ev.GraphEvent], None]


class _VertexRecord:
    __slots__ = ("labels", "properties")

    def __init__(self, labels: set[str], properties: dict[str, Any]):
        self.labels = labels
        self.properties = properties


class _EdgeRecord:
    __slots__ = ("source", "target", "edge_type", "properties")

    def __init__(self, source: int, target: int, edge_type: str, properties: dict[str, Any]):
        self.source = source
        self.target = target
        self.edge_type = edge_type
        self.properties = properties


class PropertyGraph:
    """An in-memory property graph with change notification.

    Vertex and edge ids are small integers from two independent counters
    (``V`` and ``E`` are disjoint sets in the model; the id spaces may
    overlap numerically but are always interpreted relative to their kind).

    Example
    -------
    >>> g = PropertyGraph()
    >>> p = g.add_vertex(labels=["Post"], properties={"lang": "en"})
    >>> c = g.add_vertex(labels=["Comm"], properties={"lang": "en"})
    >>> e = g.add_edge(p, c, "REPLY")
    >>> sorted(g.vertices("Post"))
    [1]
    """

    def __init__(self) -> None:
        self._vertices: dict[int, _VertexRecord] = {}
        self._edges: dict[int, _EdgeRecord] = {}
        self._label_index: dict[str, set[int]] = {}
        self._type_index: dict[str, set[int]] = {}
        self._out: dict[int, set[int]] = {}
        self._in: dict[int, set[int]] = {}
        # per-type adjacency: vertex → edge type → edge ids.  Kept exactly
        # in sync with _out/_in so type-filtered neighbourhood reads are
        # direct lookups instead of filtered scans over the full star.
        self._out_by_type: dict[int, dict[str, set[int]]] = {}
        self._in_by_type: dict[int, dict[str, set[int]]] = {}
        self._next_vertex_id = 1
        self._next_edge_id = 1
        self._listeners: list[Listener] = []
        self._tx_listeners: list[Callable[[str], None]] = []
        self._transaction: "Transaction | None" = None
        # user-created (label, key) → value → vertex ids
        self._property_indexes: dict[tuple[str, str], dict[Any, set[int]]] = {}

    # ------------------------------------------------------------------
    # subscription
    # ------------------------------------------------------------------

    def subscribe(self, listener: Listener) -> None:
        """Register *listener* to receive every subsequent change event."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Listener) -> None:
        self._listeners.remove(listener)

    def _emit(self, event: ev.GraphEvent) -> None:
        if self._transaction is not None:
            self._transaction._record(event)
        for listener in self._listeners:
            listener(event)

    def subscribe_transactions(self, listener: Callable[[str], None]) -> None:
        """Register *listener* for transaction phases.

        The listener is called with ``"begin"`` when a transaction scope
        opens, ``"commit"`` after a clean close, and ``"rollback"`` after a
        rollback's compensation events have all been applied.  The batching
        engine uses this to propagate one consolidated delta per committed
        transaction (and a guaranteed-empty one per rollback).
        """
        self._tx_listeners.append(listener)

    def unsubscribe_transactions(self, listener: Callable[[str], None]) -> None:
        self._tx_listeners.remove(listener)

    def _notify_transaction(self, phase: str) -> None:
        for listener in list(self._tx_listeners):
            listener(phase)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def transaction(self) -> "Transaction":
        """An undo scope: changes inside it are compensated on failure.

        See :class:`~repro.graph.transactions.Transaction`.  Nested
        transactions are rejected with :class:`TransactionError`.
        """
        from .transactions import Transaction

        return Transaction(self)

    @property
    def in_transaction(self) -> bool:
        return self._transaction is not None

    def _begin_transaction(self, transaction: "Transaction") -> None:
        if self._transaction is not None:
            raise TransactionError("transactions cannot be nested")
        self._transaction = transaction

    def _end_transaction(self, transaction: "Transaction") -> None:
        if self._transaction is not transaction:  # pragma: no cover - misuse guard
            raise TransactionError("ending a transaction that is not active")
        self._transaction = None

    # ------------------------------------------------------------------
    # property indexes
    # ------------------------------------------------------------------

    def create_index(self, label: str, key: str) -> None:
        """Create (and backfill) a ``(label, property)`` vertex index.

        Pattern matching and MERGE consult it for ``(n:Label {key: v})``
        shapes; creating an existing index is a no-op.
        """
        index_key = (label, key)
        if index_key in self._property_indexes:
            return
        bucket: dict[Any, set[int]] = {}
        for vertex_id in self._label_index.get(label, ()):
            value = self._vertices[vertex_id].properties.get(key)
            if value is not None:
                bucket.setdefault(value, set()).add(vertex_id)
        self._property_indexes[index_key] = bucket

    def drop_index(self, label: str, key: str) -> None:
        self._property_indexes.pop((label, key), None)

    def has_index(self, label: str, key: str) -> bool:
        return (label, key) in self._property_indexes

    def indexes(self) -> tuple[tuple[str, str], ...]:
        """All ``(label, key)`` pairs with an index."""
        return tuple(self._property_indexes)

    def lookup_index(self, label: str, key: str, value: Any) -> frozenset[int]:
        """Vertices with *label* whose *key* equals *value* (indexed)."""
        try:
            bucket = self._property_indexes[(label, key)]
        except KeyError:
            raise GraphError(f"no index on (:{label} {{{key}}})") from None
        return frozenset(bucket.get(freeze_value(value), ()))

    def _index_add(self, vertex_id: int, labels, properties) -> None:
        for (label, key), bucket in self._property_indexes.items():
            if label in labels:
                value = properties.get(key)
                if value is not None:
                    bucket.setdefault(value, set()).add(vertex_id)

    def _index_remove(self, vertex_id: int, labels, properties) -> None:
        for (label, key), bucket in self._property_indexes.items():
            if label in labels:
                value = properties.get(key)
                if value is not None:
                    entries = bucket.get(value)
                    if entries is not None:
                        entries.discard(vertex_id)
                        if not entries:
                            del bucket[value]

    # ------------------------------------------------------------------
    # mutations: vertices
    # ------------------------------------------------------------------

    def add_vertex(
        self,
        labels: Iterable[str] = (),
        properties: Mapping[str, Any] | None = None,
    ) -> int:
        """Create a vertex; returns its id."""
        vertex_id = self._next_vertex_id
        self._next_vertex_id += 1
        label_set = set(labels)
        props = {
            k: freeze_value(v) for k, v in (properties or {}).items() if v is not None
        }
        self._vertices[vertex_id] = _VertexRecord(label_set, props)
        self._out[vertex_id] = set()
        self._in[vertex_id] = set()
        self._out_by_type[vertex_id] = {}
        self._in_by_type[vertex_id] = {}
        for label in label_set:
            self._label_index.setdefault(label, set()).add(vertex_id)
        self._index_add(vertex_id, label_set, props)
        self._emit(
            ev.VertexAdded(vertex_id, frozenset(label_set), dict(props))
        )
        return vertex_id

    def remove_vertex(self, vertex_id: int, detach: bool = False) -> None:
        """Remove a vertex.

        Without ``detach``, removing a vertex with incident edges raises
        :class:`DanglingEdgeError` (plain Cypher ``DELETE`` semantics); with
        ``detach=True`` incident edges are removed first (``DETACH DELETE``),
        each emitting its own :class:`~repro.graph.events.EdgeRemoved`.
        """
        record = self._vertex(vertex_id)
        incident = self._out[vertex_id] | self._in[vertex_id]
        if incident:
            if not detach:
                raise DanglingEdgeError(
                    f"vertex {vertex_id} has {len(incident)} incident edge(s); "
                    "use detach=True to remove them"
                )
            for edge_id in sorted(incident):
                self.remove_edge(edge_id)
        for label in record.labels:
            self._label_index[label].discard(vertex_id)
        self._index_remove(vertex_id, record.labels, record.properties)
        del self._vertices[vertex_id]
        del self._out[vertex_id]
        del self._in[vertex_id]
        del self._out_by_type[vertex_id]
        del self._in_by_type[vertex_id]
        self._emit(
            ev.VertexRemoved(
                vertex_id, frozenset(record.labels), dict(record.properties)
            )
        )

    def add_label(self, vertex_id: int, label: str) -> None:
        record = self._vertex(vertex_id)
        if label in record.labels:
            return
        record.labels.add(label)
        self._label_index.setdefault(label, set()).add(vertex_id)
        self._index_add(vertex_id, {label}, record.properties)
        self._emit(ev.VertexLabelAdded(vertex_id, label))

    def remove_label(self, vertex_id: int, label: str) -> None:
        record = self._vertex(vertex_id)
        if label not in record.labels:
            return
        record.labels.discard(label)
        self._label_index[label].discard(vertex_id)
        self._index_remove(vertex_id, {label}, record.properties)
        self._emit(ev.VertexLabelRemoved(vertex_id, label))

    def set_vertex_property(self, vertex_id: int, key: str, value: Any) -> None:
        """Set (or, with ``value=None``, remove) a vertex property."""
        record = self._vertex(vertex_id)
        old = record.properties.get(key)
        new = freeze_value(value)
        if old == new and type(old) is type(new):
            return
        if old is not None:
            self._index_remove(vertex_id, record.labels, {key: old})
        if new is None:
            record.properties.pop(key, None)
        else:
            record.properties[key] = new
            self._index_add(vertex_id, record.labels, {key: new})
        self._emit(ev.VertexPropertySet(vertex_id, key, old, new))

    def _restore_vertex(
        self,
        vertex_id: int,
        labels: Iterable[str],
        properties: Mapping[str, Any],
    ) -> None:
        """Re-create a previously removed vertex under its original id.

        Used by transaction rollback and WAL replay; emits a normal
        :class:`~repro.graph.events.VertexAdded` event.
        """
        if vertex_id in self._vertices:
            raise GraphError(f"vertex id {vertex_id} already exists")
        label_set = set(labels)
        props = {k: freeze_value(v) for k, v in properties.items() if v is not None}
        self._vertices[vertex_id] = _VertexRecord(label_set, props)
        self._out[vertex_id] = set()
        self._in[vertex_id] = set()
        self._out_by_type[vertex_id] = {}
        self._in_by_type[vertex_id] = {}
        for label in label_set:
            self._label_index.setdefault(label, set()).add(vertex_id)
        self._index_add(vertex_id, label_set, props)
        self._next_vertex_id = max(self._next_vertex_id, vertex_id + 1)
        self._emit(ev.VertexAdded(vertex_id, frozenset(label_set), dict(props)))

    # ------------------------------------------------------------------
    # mutations: edges
    # ------------------------------------------------------------------

    def add_edge(
        self,
        source: int,
        target: int,
        edge_type: str,
        properties: Mapping[str, Any] | None = None,
    ) -> int:
        """Create a directed edge of *edge_type*; returns its id."""
        self._vertex(source)
        self._vertex(target)
        edge_id = self._next_edge_id
        self._next_edge_id += 1
        props = {
            k: freeze_value(v) for k, v in (properties or {}).items() if v is not None
        }
        self._edges[edge_id] = _EdgeRecord(source, target, edge_type, props)
        self._type_index.setdefault(edge_type, set()).add(edge_id)
        self._out[source].add(edge_id)
        self._in[target].add(edge_id)
        self._out_by_type[source].setdefault(edge_type, set()).add(edge_id)
        self._in_by_type[target].setdefault(edge_type, set()).add(edge_id)
        self._emit(ev.EdgeAdded(edge_id, source, target, edge_type, dict(props)))
        return edge_id

    def remove_edge(self, edge_id: int) -> None:
        record = self._edge(edge_id)
        self._type_index[record.edge_type].discard(edge_id)
        self._out[record.source].discard(edge_id)
        self._in[record.target].discard(edge_id)
        self._typed_discard(self._out_by_type[record.source], record.edge_type, edge_id)
        self._typed_discard(self._in_by_type[record.target], record.edge_type, edge_id)
        del self._edges[edge_id]
        self._emit(
            ev.EdgeRemoved(
                edge_id,
                record.source,
                record.target,
                record.edge_type,
                dict(record.properties),
            )
        )

    def _restore_edge(
        self,
        edge_id: int,
        source: int,
        target: int,
        edge_type: str,
        properties: Mapping[str, Any],
    ) -> None:
        """Re-create a previously removed edge under its original id."""
        if edge_id in self._edges:
            raise GraphError(f"edge id {edge_id} already exists")
        self._vertex(source)
        self._vertex(target)
        props = {k: freeze_value(v) for k, v in properties.items() if v is not None}
        self._edges[edge_id] = _EdgeRecord(source, target, edge_type, props)
        self._type_index.setdefault(edge_type, set()).add(edge_id)
        self._out[source].add(edge_id)
        self._in[target].add(edge_id)
        self._out_by_type[source].setdefault(edge_type, set()).add(edge_id)
        self._in_by_type[target].setdefault(edge_type, set()).add(edge_id)
        self._next_edge_id = max(self._next_edge_id, edge_id + 1)
        self._emit(ev.EdgeAdded(edge_id, source, target, edge_type, dict(props)))

    def set_edge_property(self, edge_id: int, key: str, value: Any) -> None:
        """Set (or, with ``value=None``, remove) an edge property."""
        record = self._edge(edge_id)
        old = record.properties.get(key)
        new = freeze_value(value)
        if old == new and type(old) is type(new):
            return
        if new is None:
            record.properties.pop(key, None)
        else:
            record.properties[key] = new
        self._emit(ev.EdgePropertySet(edge_id, key, old, new))

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def _vertex(self, vertex_id: int) -> _VertexRecord:
        try:
            return self._vertices[vertex_id]
        except KeyError:
            raise EntityNotFoundError("vertex", vertex_id) from None

    def _edge(self, edge_id: int) -> _EdgeRecord:
        try:
            return self._edges[edge_id]
        except KeyError:
            raise EntityNotFoundError("edge", edge_id) from None

    def has_vertex(self, vertex_id: int) -> bool:
        return vertex_id in self._vertices

    def has_edge(self, edge_id: int) -> bool:
        return edge_id in self._edges

    @property
    def vertex_count(self) -> int:
        return len(self._vertices)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def vertices(self, label: str | None = None) -> Iterator[int]:
        """Iterate vertex ids, optionally restricted to a label."""
        if label is None:
            return iter(self._vertices)
        return iter(self._label_index.get(label, ()))

    def edges(self, edge_type: str | None = None) -> Iterator[int]:
        """Iterate edge ids, optionally restricted to a type."""
        if edge_type is None:
            return iter(self._edges)
        return iter(self._type_index.get(edge_type, ()))

    def edge_triples(self, edge_type: str | None = None) -> Iterator[tuple[int, int, int]]:
        """Iterate ``(source, edge, target)`` triples — the ⇑ base relation."""
        for edge_id in self.edges(edge_type):
            record = self._edges[edge_id]
            yield record.source, edge_id, record.target

    def labels_of(self, vertex_id: int) -> frozenset[str]:
        return frozenset(self._vertex(vertex_id).labels)

    def labels_view(self, vertex_id: int) -> set[str]:
        """The vertex's label set *uncopied* — read-only by contract.

        Hot paths (the event router narrows candidates per routed property
        event) read labels without keeping them; handing out the internal
        set skips the frozenset copy :meth:`labels_of` pays.  Callers must
        neither mutate nor retain the result across graph mutations.
        """
        return self._vertex(vertex_id).labels

    def has_label(self, vertex_id: int, label: str) -> bool:
        return label in self._vertex(vertex_id).labels

    def type_of(self, edge_id: int) -> str:
        return self._edge(edge_id).edge_type

    def endpoints(self, edge_id: int) -> tuple[int, int]:
        record = self._edge(edge_id)
        return record.source, record.target

    def source_of(self, edge_id: int) -> int:
        return self._edge(edge_id).source

    def target_of(self, edge_id: int) -> int:
        return self._edge(edge_id).target

    def vertex_properties(self, vertex_id: int) -> dict[str, Any]:
        """A copy of the vertex's property map (values are immutable)."""
        return dict(self._vertex(vertex_id).properties)

    def vertex_property(self, vertex_id: int, key: str, default: Any = None) -> Any:
        return self._vertex(vertex_id).properties.get(key, default)

    def edge_properties(self, edge_id: int) -> dict[str, Any]:
        return dict(self._edge(edge_id).properties)

    def edge_property(self, edge_id: int, key: str, default: Any = None) -> Any:
        return self._edge(edge_id).properties.get(key, default)

    def out_edges(self, vertex_id: int, edge_type: str | None = None) -> Iterator[int]:
        """Edges whose source is *vertex_id* (optionally type-filtered)."""
        if edge_type is None:
            return iter(self._out[self._require(vertex_id)])
        return iter(self._out_by_type[self._require(vertex_id)].get(edge_type, ()))

    def in_edges(self, vertex_id: int, edge_type: str | None = None) -> Iterator[int]:
        """Edges whose target is *vertex_id* (optionally type-filtered)."""
        if edge_type is None:
            return iter(self._in[self._require(vertex_id)])
        return iter(self._in_by_type[self._require(vertex_id)].get(edge_type, ()))

    def incident_edges(
        self, vertex_id: int, edge_type: str | None = None
    ) -> Iterator[int]:
        """Edges incident on *vertex_id*, each yielded once (loops included).

        Snapshots eagerly (safe to mutate the graph while consuming, and a
        missing vertex raises at the call site) without building the
        ``out | in`` union set the seed paid for — one list and O(1)
        membership probes instead of rehashing both sets.  With
        *edge_type* only that type's (indexed) buckets are walked.
        """
        vid = self._require(vertex_id)
        if edge_type is None:
            out, inc = self._out[vid], self._in[vid]
        else:
            out = self._out_by_type[vid].get(edge_type, ())
            inc = self._in_by_type[vid].get(edge_type, ())
        edges = list(out)
        edges.extend(edge_id for edge_id in inc if edge_id not in out)
        return iter(edges)

    def degree(self, vertex_id: int) -> int:
        vid = self._require(vertex_id)
        return len(self._out[vid]) + len(self._in[vid])

    def _require(self, vertex_id: int) -> int:
        if vertex_id not in self._vertices:
            raise EntityNotFoundError("vertex", vertex_id)
        return vertex_id

    @staticmethod
    def _typed_discard(buckets: dict[str, set[int]], edge_type: str, edge_id: int) -> None:
        entries = buckets.get(edge_type)
        if entries is not None:
            entries.discard(edge_id)
            if not entries:
                del buckets[edge_type]

    def labels(self) -> frozenset[str]:
        """All labels with at least one vertex."""
        return frozenset(l for l, vs in self._label_index.items() if vs)

    def edge_types(self) -> frozenset[str]:
        """All edge types with at least one edge."""
        return frozenset(t for t, es in self._type_index.items() if es)

    # ------------------------------------------------------------------
    # bulk helpers
    # ------------------------------------------------------------------

    def copy(self) -> "PropertyGraph":
        """A deep copy of the store (listeners are *not* copied).

        Ids are preserved, which makes copies suitable as before/after
        snapshots in differential tests.
        """
        clone = PropertyGraph()
        for vertex_id, record in self._vertices.items():
            clone._vertices[vertex_id] = _VertexRecord(
                set(record.labels), dict(record.properties)
            )
            clone._out[vertex_id] = set()
            clone._in[vertex_id] = set()
            clone._out_by_type[vertex_id] = {}
            clone._in_by_type[vertex_id] = {}
            for label in record.labels:
                clone._label_index.setdefault(label, set()).add(vertex_id)
        for edge_id, record in self._edges.items():
            clone._edges[edge_id] = _EdgeRecord(
                record.source, record.target, record.edge_type, dict(record.properties)
            )
            clone._type_index.setdefault(record.edge_type, set()).add(edge_id)
            clone._out[record.source].add(edge_id)
            clone._in[record.target].add(edge_id)
            clone._out_by_type[record.source].setdefault(
                record.edge_type, set()
            ).add(edge_id)
            clone._in_by_type[record.target].setdefault(
                record.edge_type, set()
            ).add(edge_id)
        clone._property_indexes = {
            index_key: {value: set(ids) for value, ids in bucket.items()}
            for index_key, bucket in self._property_indexes.items()
        }
        clone._next_vertex_id = self._next_vertex_id
        clone._next_edge_id = self._next_edge_id
        return clone

    def stats(self) -> dict[str, int]:
        """Cheap summary statistics, used by benchmark reporting."""
        return {
            "vertices": self.vertex_count,
            "edges": self.edge_count,
            "labels": len(self.labels()),
            "edge_types": len(self.edge_types()),
        }

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"PropertyGraph(vertices={self.vertex_count}, edges={self.edge_count})"
        )


def graph_from_dicts(
    vertices: Iterable[Mapping[str, Any]],
    edges: Iterable[Mapping[str, Any]],
) -> tuple[PropertyGraph, dict[Any, int]]:
    """Build a graph from plain-dict descriptions; test/fixture convenience.

    Each vertex dict: ``{"key": <external id>, "labels": [...], **props}``.
    Each edge dict: ``{"src": key, "tgt": key, "type": str, **props}``.
    Returns the graph and the external-key → vertex-id mapping.
    """
    graph = PropertyGraph()
    key_to_id: dict[Any, int] = {}
    for spec in vertices:
        spec = dict(spec)
        key = spec.pop("key")
        labels = spec.pop("labels", ())
        if key in key_to_id:
            raise GraphError(f"duplicate vertex key {key!r}")
        key_to_id[key] = graph.add_vertex(labels=labels, properties=spec)
    for spec in edges:
        spec = dict(spec)
        src = key_to_id[spec.pop("src")]
        tgt = key_to_id[spec.pop("tgt")]
        edge_type = spec.pop("type")
        graph.add_edge(src, tgt, edge_type, properties=spec)
    return graph, key_to_id
