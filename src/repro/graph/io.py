"""Serialisation of property graphs: JSON-lines and CSV directories.

Two interchange formats, both round-trip safe for the full value domain:

* **JSON lines** (``.jsonl``) — one record per line: a header record, then
  vertices, then edges.  Nested property values (lists/maps) serialise
  naturally; ids are preserved.
* **CSV directory** — LDBC-style: one ``vertices.csv`` + one
  ``edges.csv`` with JSON-encoded property columns.  Convenient for
  eyeballing and spreadsheet tooling.

Both loaders rebuild indices through the normal mutation API, so a graph
loaded while views are registered would replay as a delta stream — though
the intended use is loading *before* registration.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from ..errors import GraphError
from .graph import PropertyGraph
from .values import ListValue, MapValue, thaw_value

FORMAT_VERSION = 1


def _encode_value(value: Any) -> Any:
    if isinstance(value, (ListValue, MapValue)):
        return thaw_value(value)
    return value


def _encode_properties(properties: dict[str, Any]) -> dict[str, Any]:
    return {key: _encode_value(value) for key, value in properties.items()}


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------


def save_jsonl(graph: PropertyGraph, path: str | Path) -> None:
    """Write *graph* to a JSON-lines file (ids preserved)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {"kind": "header", "version": FORMAT_VERSION}
        handle.write(json.dumps(header) + "\n")
        for vertex in sorted(graph.vertices()):
            record = {
                "kind": "vertex",
                "id": vertex,
                "labels": sorted(graph.labels_of(vertex)),
                "properties": _encode_properties(graph.vertex_properties(vertex)),
            }
            handle.write(json.dumps(record) + "\n")
        for edge in sorted(graph.edges()):
            source, target = graph.endpoints(edge)
            record = {
                "kind": "edge",
                "id": edge,
                "source": source,
                "target": target,
                "type": graph.type_of(edge),
                "properties": _encode_properties(graph.edge_properties(edge)),
            }
            handle.write(json.dumps(record) + "\n")


def load_jsonl(path: str | Path) -> PropertyGraph:
    """Load a graph written by :func:`save_jsonl`.

    Ids are re-assigned densely in file order; external ids are preserved
    as-is only when they were already dense (the common case for graphs
    produced by this library).  A mapping is applied to edges either way.
    """
    path = Path(path)
    graph = PropertyGraph()
    id_map: dict[int, int] = {}
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "header":
                if record.get("version") != FORMAT_VERSION:
                    raise GraphError(
                        f"unsupported graph file version {record.get('version')!r}"
                    )
            elif kind == "vertex":
                new_id = graph.add_vertex(
                    labels=record.get("labels", ()),
                    properties=record.get("properties", {}),
                )
                id_map[int(record["id"])] = new_id
            elif kind == "edge":
                try:
                    source = id_map[int(record["source"])]
                    target = id_map[int(record["target"])]
                except KeyError as missing:
                    raise GraphError(
                        f"line {line_number}: edge references unknown vertex {missing}"
                    ) from None
                graph.add_edge(
                    source,
                    target,
                    record["type"],
                    properties=record.get("properties", {}),
                )
            else:
                raise GraphError(f"line {line_number}: unknown record kind {kind!r}")
    return graph


# ---------------------------------------------------------------------------
# CSV directory
# ---------------------------------------------------------------------------


def save_csv(graph: PropertyGraph, directory: str | Path) -> None:
    """Write ``vertices.csv`` and ``edges.csv`` under *directory*."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    with (directory / "vertices.csv").open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "labels", "properties"])
        for vertex in sorted(graph.vertices()):
            writer.writerow(
                [
                    vertex,
                    ";".join(sorted(graph.labels_of(vertex))),
                    json.dumps(_encode_properties(graph.vertex_properties(vertex))),
                ]
            )
    with (directory / "edges.csv").open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "source", "target", "type", "properties"])
        for edge in sorted(graph.edges()):
            source, target = graph.endpoints(edge)
            writer.writerow(
                [
                    edge,
                    source,
                    target,
                    graph.type_of(edge),
                    json.dumps(_encode_properties(graph.edge_properties(edge))),
                ]
            )


def load_csv(directory: str | Path) -> PropertyGraph:
    """Load a graph written by :func:`save_csv`."""
    directory = Path(directory)
    graph = PropertyGraph()
    id_map: dict[int, int] = {}
    with (directory / "vertices.csv").open("r", newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            labels = [l for l in row["labels"].split(";") if l]
            new_id = graph.add_vertex(
                labels=labels, properties=json.loads(row["properties"])
            )
            id_map[int(row["id"])] = new_id
    with (directory / "edges.csv").open("r", newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            try:
                source = id_map[int(row["source"])]
                target = id_map[int(row["target"])]
            except KeyError as missing:
                raise GraphError(
                    f"edge {row['id']} references unknown vertex {missing}"
                ) from None
            graph.add_edge(
                source, target, row["type"], properties=json.loads(row["properties"])
            )
    return graph
