"""Durability: write-ahead log, snapshots, and crash recovery.

The graph store already exposes every elementary mutation as a change
event (the same stream that feeds the Rete network), so durability is an
event-sourcing exercise:

* :class:`WriteAheadLog` subscribes to a live graph and appends one JSON
  line per event, flushed eagerly.
* :func:`replay_wal` applies a log to a graph, **preserving entity ids**
  exactly (via the store's restore hooks) — later records reference ids
  minted by earlier ones.
* :class:`DurableGraph` packages the recovery protocol: load the snapshot
  (if any), replay the WAL tail (if any), then resume appending.
  ``checkpoint()`` atomically writes a new snapshot (tmp + rename) and
  truncates the log.

A torn tail — the last line cut short by a crash mid-write — is tolerated
and discarded; corruption anywhere *before* the tail raises
:class:`~repro.errors.GraphError`, since silently skipping interior
records would desynchronise ids.

Recovered graphs feed incremental views like any other: register views
after :func:`recover`/:class:`DurableGraph` construction and they start
from the recovered state.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator

from ..errors import GraphError
from . import events as ev
from .graph import PropertyGraph
from .values import ListValue, MapValue, thaw_value

WAL_VERSION = 1

_EVENT_KINDS = {
    ev.VertexAdded: "v+",
    ev.VertexRemoved: "v-",
    ev.EdgeAdded: "e+",
    ev.EdgeRemoved: "e-",
    ev.VertexLabelAdded: "l+",
    ev.VertexLabelRemoved: "l-",
    ev.VertexPropertySet: "vp",
    ev.EdgePropertySet: "ep",
}


def _plain(value: Any) -> Any:
    """JSON-encodable form of a property value."""
    if isinstance(value, (ListValue, MapValue)):
        return thaw_value(value)
    return value


def _plain_map(properties: Any) -> dict[str, Any]:
    return {key: _plain(value) for key, value in dict(properties).items()}


def encode_event(event: ev.GraphEvent) -> dict[str, Any]:
    """One JSON-encodable record per change event."""
    kind = _EVENT_KINDS.get(type(event))
    if kind == "v+":
        return {
            "k": kind,
            "id": event.vertex_id,
            "labels": sorted(event.labels),
            "props": _plain_map(event.properties),
        }
    if kind == "v-":
        return {"k": kind, "id": event.vertex_id}
    if kind == "e+":
        return {
            "k": kind,
            "id": event.edge_id,
            "src": event.source,
            "tgt": event.target,
            "type": event.edge_type,
            "props": _plain_map(event.properties),
        }
    if kind == "e-":
        return {"k": kind, "id": event.edge_id}
    if kind in ("l+", "l-"):
        return {"k": kind, "id": event.vertex_id, "label": event.label}
    if kind == "vp":
        return {
            "k": kind,
            "id": event.vertex_id,
            "key": event.key,
            "value": _plain(event.new_value),
        }
    if kind == "ep":
        return {
            "k": kind,
            "id": event.edge_id,
            "key": event.key,
            "value": _plain(event.new_value),
        }
    raise GraphError(f"cannot encode event {type(event).__name__}")


def apply_record(graph: PropertyGraph, record: dict[str, Any]) -> None:
    """Apply one WAL record to *graph*, preserving ids."""
    kind = record.get("k")
    if kind == "v+":
        graph._restore_vertex(record["id"], record["labels"], record["props"])
    elif kind == "v-":
        graph.remove_vertex(record["id"])
    elif kind == "e+":
        graph._restore_edge(
            record["id"],
            record["src"],
            record["tgt"],
            record["type"],
            record["props"],
        )
    elif kind == "e-":
        graph.remove_edge(record["id"])
    elif kind == "l+":
        graph.add_label(record["id"], record["label"])
    elif kind == "l-":
        graph.remove_label(record["id"], record["label"])
    elif kind == "vp":
        graph.set_vertex_property(record["id"], record["key"], record["value"])
    elif kind == "ep":
        graph.set_edge_property(record["id"], record["key"], record["value"])
    else:
        raise GraphError(f"unknown WAL record kind {kind!r}")


class WriteAheadLog:
    """Appends every change event of a graph to a JSON-lines file."""

    def __init__(self, graph: PropertyGraph, path: str | Path, fsync: bool = False):
        self.graph = graph
        self.path = Path(path)
        self.fsync = fsync
        self._handle = self.path.open("a", encoding="utf-8")
        self._records = 0
        self._closed = False
        graph.subscribe(self._on_event)

    def _on_event(self, event: ev.GraphEvent) -> None:
        self._handle.write(json.dumps(encode_event(event)) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._records += 1

    @property
    def records_written(self) -> int:
        return self._records

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.graph.unsubscribe(self._on_event)
        self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_wal(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield WAL records; a torn final line is discarded silently."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                return  # torn tail from a crash mid-append
            raise GraphError(
                f"corrupt WAL record at line {index + 1} of {path}"
            ) from None
        yield record


def replay_wal(path: str | Path, graph: PropertyGraph | None = None) -> PropertyGraph:
    """Rebuild (or extend) a graph from a WAL."""
    graph = graph if graph is not None else PropertyGraph()
    for record in read_wal(path):
        apply_record(graph, record)
    return graph


# ---------------------------------------------------------------------------
# snapshots (id-preserving, unlike the interchange formats in io.py)
# ---------------------------------------------------------------------------


def save_snapshot(graph: PropertyGraph, path: str | Path) -> None:
    """Write an id-preserving snapshot (atomic: tmp file + rename)."""
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        header = {
            "k": "header",
            "version": WAL_VERSION,
            "next_vertex_id": graph._next_vertex_id,
            "next_edge_id": graph._next_edge_id,
        }
        handle.write(json.dumps(header) + "\n")
        for vertex in sorted(graph.vertices()):
            record = {
                "k": "v",
                "id": vertex,
                "labels": sorted(graph.labels_of(vertex)),
                "props": _plain_map(graph.vertex_properties(vertex)),
            }
            handle.write(json.dumps(record) + "\n")
        for edge in sorted(graph.edges()):
            source, target = graph.endpoints(edge)
            record = {
                "k": "e",
                "id": edge,
                "src": source,
                "tgt": target,
                "type": graph.type_of(edge),
                "props": _plain_map(graph.edge_properties(edge)),
            }
            handle.write(json.dumps(record) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_snapshot(path: str | Path, graph: PropertyGraph | None = None) -> PropertyGraph:
    """Load an id-preserving snapshot written by :func:`save_snapshot`."""
    path = Path(path)
    graph = graph if graph is not None else PropertyGraph()
    next_ids: tuple[int, int] | None = None
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            stripped = line.strip()
            if not stripped:
                continue
            record = json.loads(stripped)
            kind = record.get("k")
            if kind == "header":
                if record.get("version") != WAL_VERSION:
                    raise GraphError(
                        f"unsupported snapshot version {record.get('version')!r}"
                    )
                next_ids = (record["next_vertex_id"], record["next_edge_id"])
            elif kind == "v":
                graph._restore_vertex(record["id"], record["labels"], record["props"])
            elif kind == "e":
                graph._restore_edge(
                    record["id"],
                    record["src"],
                    record["tgt"],
                    record["type"],
                    record["props"],
                )
            else:
                raise GraphError(
                    f"line {line_number}: unknown snapshot record {kind!r}"
                )
    if next_ids is not None:
        # Counters may exceed max(id)+1 when the highest-id entity was
        # deleted before the snapshot; restore them exactly.
        graph._next_vertex_id = max(graph._next_vertex_id, next_ids[0])
        graph._next_edge_id = max(graph._next_edge_id, next_ids[1])
    return graph


class DurableGraph:
    """A property graph persisted under a directory.

    Layout: ``snapshot.jsonl`` (optional) + ``wal.jsonl``.  Construction
    runs recovery (snapshot, then WAL tail), then resumes logging.  Call
    :meth:`checkpoint` periodically to bound recovery time.

    Example
    -------
    >>> import tempfile
    >>> directory = tempfile.mkdtemp()
    >>> durable = DurableGraph(directory)
    >>> vertex = durable.graph.add_vertex(labels=["Post"])
    >>> durable.close()
    >>> reopened = DurableGraph(directory)
    >>> reopened.graph.vertex_count
    1
    """

    SNAPSHOT = "snapshot.jsonl"
    WAL = "wal.jsonl"

    def __init__(self, directory: str | Path, fsync: bool = False):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.graph = PropertyGraph()
        self._fsync = fsync
        snapshot = self.directory / self.SNAPSHOT
        wal_path = self.directory / self.WAL
        self.recovered_from_snapshot = snapshot.exists()
        if self.recovered_from_snapshot:
            load_snapshot(snapshot, self.graph)
        self.recovered_wal_records = 0
        if wal_path.exists():
            for record in read_wal(wal_path):
                apply_record(self.graph, record)
                self.recovered_wal_records += 1
        self._wal = WriteAheadLog(self.graph, wal_path, fsync=fsync)

    def checkpoint(self) -> None:
        """Snapshot the current state and truncate the WAL."""
        save_snapshot(self.graph, self.directory / self.SNAPSHOT)
        self._wal.close()
        (self.directory / self.WAL).write_text("")
        self._wal = WriteAheadLog(
            self.graph, self.directory / self.WAL, fsync=self._fsync
        )

    @property
    def wal_records(self) -> int:
        return self._wal.records_written

    def close(self) -> None:
        self._wal.close()

    def __enter__(self) -> "DurableGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
