"""Compensating transactions over the property graph.

The store applies every mutation immediately and synchronously notifies
listeners (including Rete networks), so a transaction here is *not* a
deferred write buffer — it is an **undo scope**: all events raised inside
the scope are recorded, and on failure (or explicit :meth:`Transaction.
rollback`) the inverse mutations are applied in reverse order, again
through the normal event flow, so incremental views stay consistent
through both the doomed changes and their compensation.

This is exactly what the update-query executor needs: a failed ``SET``
halfway through a binding table must not leave earlier rows mutated.

Trigger caveat: compensation happens *after* the scope ends, so view
change-callbacks observe the compensation deltas (they must, to stay
consistent) with ``graph.in_transaction`` already ``False``.  A callback
that issues follow-up writes should therefore react only to insertions
(positive multiplicities) unless it really means to act on rollbacks.

Example
-------
>>> from repro.graph import PropertyGraph
>>> graph = PropertyGraph()
>>> try:
...     with graph.transaction():
...         vertex = graph.add_vertex(labels=["Post"])
...         raise RuntimeError("boom")
... except RuntimeError:
...     pass
>>> graph.vertex_count
0
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import TransactionError
from . import events as ev

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .graph import PropertyGraph


class Transaction:
    """An undo scope over a :class:`~repro.graph.graph.PropertyGraph`.

    Use via :meth:`PropertyGraph.transaction`; nesting is rejected.  On
    clean ``with``-exit the transaction commits (a no-op — changes are
    already applied); on exception it rolls back and re-raises.
    """

    def __init__(self, graph: "PropertyGraph"):
        self._graph = graph
        self._log: list[ev.GraphEvent] = []
        self._active = False
        self._closed = False

    # -- recording -----------------------------------------------------------

    def _record(self, event: ev.GraphEvent) -> None:
        self._log.append(event)

    @property
    def events(self) -> tuple[ev.GraphEvent, ...]:
        """Events applied so far within this transaction."""
        return tuple(self._log)

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "Transaction":
        if self._closed:
            raise TransactionError("transaction cannot be reused")
        self._graph._begin_transaction(self)
        self._active = True
        self._graph._notify_transaction("begin")
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._active:
            if exc_type is None:
                self.commit()
            else:
                self.rollback()
        return False  # propagate exceptions

    def commit(self) -> None:
        """End the scope, keeping all changes."""
        self._end()
        self._graph._notify_transaction("commit")

    def rollback(self) -> None:
        """Undo every recorded change, newest first.

        Transaction listeners are notified only *after* all compensation
        events have been applied, so a batching listener sees the doomed
        changes and their inverses in one window — netting to nothing.
        """
        self._end()
        graph = self._graph
        for event in reversed(self._log):
            _apply_inverse(graph, event)
        self._log.clear()
        graph._notify_transaction("rollback")

    def _end(self) -> None:
        if not self._active:
            raise TransactionError("transaction is not active")
        self._active = False
        self._closed = True
        self._graph._end_transaction(self)


def _apply_inverse(graph: "PropertyGraph", event: ev.GraphEvent) -> None:
    """Apply the mutation that undoes *event* (emitting normal events)."""
    if isinstance(event, ev.VertexAdded):
        graph.remove_vertex(event.vertex_id)
    elif isinstance(event, ev.VertexRemoved):
        graph._restore_vertex(event.vertex_id, event.labels, event.properties)
    elif isinstance(event, ev.EdgeAdded):
        graph.remove_edge(event.edge_id)
    elif isinstance(event, ev.EdgeRemoved):
        graph._restore_edge(
            event.edge_id,
            event.source,
            event.target,
            event.edge_type,
            event.properties,
        )
    elif isinstance(event, ev.VertexLabelAdded):
        graph.remove_label(event.vertex_id, event.label)
    elif isinstance(event, ev.VertexLabelRemoved):
        graph.add_label(event.vertex_id, event.label)
    elif isinstance(event, ev.VertexPropertySet):
        graph.set_vertex_property(event.vertex_id, event.key, event.old_value)
    elif isinstance(event, ev.EdgePropertySet):
        graph.set_edge_property(event.edge_id, event.key, event.old_value)
    else:  # pragma: no cover - exhaustive over the event vocabulary
        raise TransactionError(f"cannot invert event {type(event).__name__}")
