"""Property value domain for the property graph data model.

The paper's data model (§2) defines ``D`` as the union of atomic domains and
allows nested *collection* values (lists and maps) as first-class property
values.  The engine internally requires every value to be hashable so that
tuples can live in counting multisets, so mutable Python containers are
*frozen* on the way in:

* ``list``  → :class:`ListValue` (an immutable sequence)
* ``dict``  → :class:`MapValue` (an immutable string-keyed mapping)

Paths are represented by :class:`PathValue` — an alternating, ordered
sequence of vertex and edge ids.  Per the paper's core design decision,
paths are *atomic*: they are created and deleted as units and are never
patched in place.

The module also implements openCypher's three-valued comparison semantics
(:func:`cypher_eq`, :func:`cypher_compare`) and the total ordering used by
``ORDER BY`` in the one-shot evaluator (:func:`order_key`).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..errors import InvalidValueError

#: Sentinel distinct from ``None`` for "unknown" in three-valued logic
#: results.  Cypher's ``null`` is mapped to Python ``None`` at the value
#: level; three-valued predicate results use ``None`` for *unknown* as well.
NULL = None

_ATOMIC_TYPES = (bool, int, float, str)


class ListValue(tuple):
    """An immutable Cypher list value.

    Subclassing ``tuple`` keeps hashing and equality structural while giving
    lists a distinct type from engine tuples and from :class:`PathValue`.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"[{', '.join(repr(v) for v in self)}]"


class MapValue:
    """An immutable, hashable string-keyed map value."""

    __slots__ = ("_items", "_hash")

    def __init__(self, mapping: Mapping[str, Any] | Iterable[tuple[str, Any]]):
        items = dict(mapping)
        for key in items:
            if not isinstance(key, str):
                raise InvalidValueError(f"map keys must be strings, got {key!r}")
        frozen = tuple(sorted((k, freeze_value(v)) for k, v in items.items()))
        object.__setattr__(self, "_items", frozen)
        object.__setattr__(self, "_hash", hash(frozen))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("MapValue is immutable")

    def __reduce__(self):
        # The default slot-state protocol restores attributes through
        # __setattr__, which immutability forbids; rebuild through the
        # constructor instead (items are already frozen, so this is cheap).
        # Needed because deltas cross process boundaries in the sharded tier.
        return (MapValue, (self._items,))

    def __getitem__(self, key: str) -> Any:
        for k, v in self._items:
            if k == key:
                return v
        raise KeyError(key)

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self._items:
            if k == key:
                return v
        return default

    def keys(self) -> tuple[str, ...]:
        return tuple(k for k, _ in self._items)

    def values(self) -> tuple[Any, ...]:
        return tuple(v for _, v in self._items)

    def items(self) -> tuple[tuple[str, Any], ...]:
        return self._items

    def __contains__(self, key: str) -> bool:
        return any(k == key for k, _ in self._items)

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MapValue):
            return self._items == other._items
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        inner = ", ".join(f"{k}: {v!r}" for k, v in self._items)
        return "{" + inner + "}"

    def to_dict(self) -> dict[str, Any]:
        """Return a plain mutable ``dict`` copy (values stay frozen)."""
        return dict(self._items)


class PathValue:
    """An atomic path: alternating vertex and edge ids.

    ``vertices`` has length ``len(edges) + 1``.  A zero-length path (a single
    vertex, from a ``*0..`` pattern) has one vertex and no edges.

    Per the paper (§1, §4), paths are the one place where ordering is kept;
    they are updated only as atomic units.  Display form follows the paper's
    convention of listing vertex ids only.
    """

    __slots__ = ("vertices", "edges", "_hash")

    def __init__(self, vertices: Sequence[int], edges: Sequence[int]):
        vertices = tuple(vertices)
        edges = tuple(edges)
        if len(vertices) != len(edges) + 1:
            raise InvalidValueError(
                f"path must alternate: {len(vertices)} vertices need "
                f"{len(vertices) - 1} edges, got {len(edges)}"
            )
        object.__setattr__(self, "vertices", vertices)
        object.__setattr__(self, "edges", edges)
        object.__setattr__(self, "_hash", hash((vertices, edges)))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("PathValue is immutable")

    def __reduce__(self):
        # See MapValue.__reduce__: slot-state restoration trips the
        # immutability guard, so unpickling goes through the constructor.
        return (PathValue, (self.vertices, self.edges))

    @property
    def start(self) -> int:
        return self.vertices[0]

    @property
    def end(self) -> int:
        return self.vertices[-1]

    def __len__(self) -> int:
        """Path length is the number of edges (Cypher ``length()``)."""
        return len(self.edges)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PathValue):
            return self.vertices == other.vertices and self.edges == other.edges
        return NotImplemented

    def __repr__(self) -> str:
        return f"[{', '.join(str(v) for v in self.vertices)}]"

    def contains_edge(self, edge_id: int) -> bool:
        return edge_id in self.edges

    def contains_vertex(self, vertex_id: int) -> bool:
        return vertex_id in self.vertices

    def concat(self, edge_id: int, vertex_id: int) -> "PathValue":
        """Extend this path with one hop; used by path enumeration."""
        return PathValue(self.vertices + (vertex_id,), self.edges + (edge_id,))


def freeze_value(value: Any) -> Any:
    """Normalise *value* into the immutable engine value domain.

    Accepts atoms (``None``, ``bool``, ``int``, ``float``, ``str``), lists,
    tuples, dicts, and already-frozen values.  Raises
    :class:`InvalidValueError` for anything else.
    """
    if value is None or isinstance(value, _ATOMIC_TYPES):
        return value
    if isinstance(value, (ListValue, MapValue, PathValue)):
        return value
    if isinstance(value, (list, tuple)):
        return ListValue(freeze_value(v) for v in value)
    if isinstance(value, dict):
        return MapValue(value)
    raise InvalidValueError(f"unsupported property value: {value!r} ({type(value).__name__})")


def thaw_value(value: Any) -> Any:
    """Inverse-ish of :func:`freeze_value`: produce plain Python containers."""
    if isinstance(value, ListValue):
        return [thaw_value(v) for v in value]
    if isinstance(value, MapValue):
        return {k: thaw_value(v) for k, v in value.items()}
    if isinstance(value, PathValue):
        return list(value.vertices)
    return value


def is_list_like(value: Any) -> bool:
    """True for values Cypher treats as lists (lists and paths)."""
    return isinstance(value, (ListValue, PathValue))


def cypher_eq(a: Any, b: Any) -> bool | None:
    """Cypher equality under three-valued logic.

    Returns ``True``/``False``, or ``None`` when either side is null
    (or when a nested null makes the comparison unknown).
    """
    if a is None or b is None:
        return None
    if isinstance(a, bool) or isinstance(b, bool):
        if isinstance(a, bool) and isinstance(b, bool):
            return a is b
        return False
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a == b
    if isinstance(a, str) and isinstance(b, str):
        return a == b
    if is_list_like(a) and is_list_like(b):
        xs = list(a.vertices) if isinstance(a, PathValue) else list(a)
        ys = list(b.vertices) if isinstance(b, PathValue) else list(b)
        if len(xs) != len(ys):
            return False
        unknown = False
        for x, y in zip(xs, ys):
            r = cypher_eq(x, y)
            if r is False:
                return False
            if r is None:
                unknown = True
        return None if unknown else True
    if isinstance(a, MapValue) and isinstance(b, MapValue):
        if set(a.keys()) != set(b.keys()):
            return False
        unknown = False
        for k in a.keys():
            r = cypher_eq(a[k], b[k])
            if r is False:
                return False
            if r is None:
                unknown = True
        return None if unknown else True
    # Cross-type comparison between concrete values is simply false.
    return False


def cypher_compare(a: Any, b: Any) -> int | None:
    """Three-valued ordering comparison: -1, 0, 1, or ``None`` (unknown).

    Orderability follows openCypher: numbers compare with numbers, strings
    with strings, booleans with booleans; everything else (and any null) is
    incomparable and yields ``None``.
    """
    if a is None or b is None:
        return None
    if isinstance(a, bool) and isinstance(b, bool):
        return (a > b) - (a < b)
    if isinstance(a, bool) or isinstance(b, bool):
        return None
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return (a > b) - (a < b)
    if isinstance(a, str) and isinstance(b, str):
        return (a > b) - (a < b)
    return None


#: Type-rank used by the global sort order (``ORDER BY``); follows the
#: openCypher draft ordering: maps < lists < paths < strings < booleans <
#: numbers < null (null sorts last ascending).
_TYPE_RANK = {
    "map": 0,
    "list": 1,
    "path": 2,
    "str": 3,
    "bool": 4,
    "num": 5,
    "null": 6,
}


def order_key(value: Any) -> tuple:
    """A total-order sort key over the full value domain.

    Used only by the non-incremental evaluator's ``ORDER BY`` (the
    incremental fragment excludes ordering, per the paper).
    """
    if value is None:
        return (_TYPE_RANK["null"],)
    if isinstance(value, bool):
        return (_TYPE_RANK["bool"], value)
    if isinstance(value, (int, float)):
        return (_TYPE_RANK["num"], value)
    if isinstance(value, str):
        return (_TYPE_RANK["str"], value)
    if isinstance(value, PathValue):
        return (_TYPE_RANK["path"], tuple(order_key(v) for v in value.vertices))
    if isinstance(value, ListValue):
        return (_TYPE_RANK["list"], tuple(order_key(v) for v in value))
    if isinstance(value, MapValue):
        return (
            _TYPE_RANK["map"],
            tuple((k, order_key(v)) for k, v in value.items()),
        )
    raise InvalidValueError(f"unorderable value: {value!r}")
