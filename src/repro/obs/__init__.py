"""Engine-wide observability: metrics, trace spans, cost attribution.

Three modules, none of which imports the engine (the glue lives at the
instrumentation sites, so this package stays dependency-free):

* :mod:`~repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms behind a :class:`~repro.obs.metrics.MetricsRegistry`, plus
  the :class:`~repro.obs.metrics.EngineMetrics` instrument bundle the
  engine threads through its batch pipeline;
* :mod:`~repro.obs.tracing` — per-batch span trees
  (:class:`~repro.obs.tracing.BatchTracer`) recording one batch's path
  router → shared layer → node graph → productions with per-node wall
  time and delta sizes;
* :mod:`~repro.obs.export` — Prometheus-text and JSON renderings of a
  registry snapshot.
"""

from .export import render_json, render_prometheus
from .metrics import (
    Counter,
    EngineMetrics,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from .tracing import BatchTracer, Span

__all__ = [
    "BatchTracer",
    "Counter",
    "EngineMetrics",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "merge_snapshots",
    "render_json",
    "render_prometheus",
]
