"""Render a metrics snapshot as Prometheus text or JSON.

Input is the JSON-ready dict :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
returns (or several of them merged via
:func:`~repro.obs.metrics.merge_snapshots`).  The Prometheus rendering
follows the text exposition format: ``# HELP`` / ``# TYPE`` headers,
histogram ``_bucket{le=...}`` series with a ``+Inf`` bucket, ``_sum`` and
``_count``.
"""

from __future__ import annotations

import json


def _format_value(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def render_prometheus(snapshot: dict[str, dict]) -> str:
    """The snapshot in Prometheus text exposition format."""
    lines: list[str] = []
    for name, data in sorted(snapshot.items()):
        lines.append(f"# HELP {name} {data.get('help', '')}")
        lines.append(f"# TYPE {name} {data['type']}")
        if data["type"] == "histogram":
            for bound, cumulative in data["buckets"]:
                lines.append(
                    f'{name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                )
            lines.append(f'{name}_bucket{{le="+Inf"}} {data["count"]}')
            lines.append(f"{name}_sum {_format_value(data['sum'])}")
            lines.append(f"{name}_count {data['count']}")
        else:
            lines.append(f"{name} {_format_value(data['value'])}")
    return "\n".join(lines) + "\n"


def render_json(snapshot: dict[str, dict]) -> str:
    """The snapshot as stable, indented JSON."""
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
