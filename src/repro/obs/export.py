"""Render a metrics snapshot as Prometheus text or JSON.

Input is the JSON-ready dict :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
returns (or several of them merged via
:func:`~repro.obs.metrics.merge_snapshots`).  The Prometheus rendering
follows the text exposition format: ``# HELP`` / ``# TYPE`` headers,
histogram ``_bucket{le=...}`` series with a ``+Inf`` bucket, ``_sum`` and
``_count``.
"""

from __future__ import annotations

import json

from .metrics import quantile_from_buckets


def _format_value(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def render_prometheus(snapshot: dict[str, dict]) -> str:
    """The snapshot in Prometheus text exposition format."""
    lines: list[str] = []
    for name, data in sorted(snapshot.items()):
        lines.append(f"# HELP {name} {data.get('help', '')}")
        lines.append(f"# TYPE {name} {data['type']}")
        if data["type"] == "histogram":
            for bound, cumulative in data["buckets"]:
                lines.append(
                    f'{name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                )
            lines.append(f'{name}_bucket{{le="+Inf"}} {data["count"]}')
            lines.append(f"{name}_sum {_format_value(data['sum'])}")
            lines.append(f"{name}_count {data['count']}")
        else:
            lines.append(f"{name} {_format_value(data['value'])}")
    return "\n".join(lines) + "\n"


def render_json(snapshot: dict[str, dict]) -> str:
    """The snapshot as stable, indented JSON."""
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


def _seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 0.001:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.0f}µs"


def render_table(snapshot: dict[str, dict]) -> str:
    """The snapshot as an aligned human-readable table.

    Counters and gauges print their value; histograms print count, sum
    and the p50/p99 latency quantiles estimated from the buckets."""
    rows: list[tuple[str, str, str]] = []
    for name, data in sorted(snapshot.items()):
        if data["type"] == "histogram":
            count = data["count"]
            bounds = [bound for bound, _ in data["buckets"]]
            cumulative = [cum for _, cum in data["buckets"]]
            p50 = quantile_from_buckets(bounds, cumulative, count, 0.50)
            p99 = quantile_from_buckets(bounds, cumulative, count, 0.99)
            value = (
                f"count {count}  sum {_seconds(data['sum'])}  "
                f"p50 {_seconds(p50)}  p99 {_seconds(p99)}"
            )
        else:
            value = _format_value(data["value"])
        rows.append((name, data["type"], value))
    name_width = max((len(name) for name, _, _ in rows), default=0)
    type_width = max((len(kind) for _, kind, _ in rows), default=0)
    return (
        "\n".join(
            f"{name:<{name_width}}  {kind:<{type_width}}  {value}"
            for name, kind, value in rows
        )
        + "\n"
    )
