"""Metrics registry: counters, gauges, fixed-bucket histograms.

The registry is deliberately small and allocation-light: a metric is a
plain mutable object looked up once at instrumentation time and mutated
with integer/float arithmetic on the hot path.  Nothing here imports the
engine — the engine owns an :class:`EngineMetrics` bundle (created only
under ``collect_metrics=True``) and *samples* the cheap always-on
counters that already live on nodes, routers, the sharing layer and the
view catalog into gauges at snapshot time, so the maintenance hot path
pays instrumentation cost only for the handful of wall-clock timings the
batch pipeline records per batch.

Snapshot format
---------------
:meth:`MetricsRegistry.snapshot` returns a JSON-ready dict::

    {"repro_batches_total": {"type": "counter", "help": ..., "value": 7},
     "repro_batch_seconds": {"type": "histogram", "help": ...,
                             "buckets": [[0.001, 3], [0.0025, 6], ...],
                             "sum": 0.0123, "count": 7},
     ...}

Histogram buckets are cumulative (Prometheus ``le`` semantics) and the
rendering lives in :mod:`repro.obs.export`.  Snapshots from several
processes (the shard workers) merge bucket-wise via
:func:`merge_snapshots`.
"""

from __future__ import annotations

from typing import Callable

#: default wall-clock buckets (seconds) — spans sub-millisecond columnar
#: batches through multi-second populate storms
LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "help": self.help, "value": self.value}


class Gauge:
    """A sampled value, set at snapshot time from live engine state."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str):
        self.name = name
        self.help = help
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def as_dict(self) -> dict:
        return {"type": "gauge", "help": self.help, "value": self.value}


class Histogram:
    """Fixed-bucket histogram with a sum and a count.

    Bucket counts are stored non-cumulatively (one integer add per
    observation, no bisect — the bound list is short and observations
    cluster in the low buckets) and cumulated only when snapshotted.
    """

    __slots__ = ("name", "help", "bounds", "counts", "sum", "count")

    def __init__(self, name: str, help: str, bounds: tuple = LATENCY_BUCKETS):
        self.name = name
        self.help = help
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # trailing +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def as_dict(self) -> dict:
        cumulative = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            cumulative.append([bound, running])
        return {
            "type": "histogram",
            "help": self.help,
            "buckets": cumulative,
            "sum": self.sum,
            "count": self.count,
        }

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (0 ≤ q ≤ 1) from the bucket counts.

        Prometheus ``histogram_quantile`` semantics: linear interpolation
        inside the bucket the rank falls into, clamped to the highest
        finite bound when the rank lands in the ``+Inf`` bucket.  Returns
        0.0 for an empty histogram."""
        cumulative = []
        running = 0
        for count in self.counts[:-1]:
            running += count
            cumulative.append(running)
        return quantile_from_buckets(self.bounds, cumulative, self.count, q)


def quantile_from_buckets(
    bounds, cumulative, total: int, q: float
) -> float:
    """Quantile estimate from cumulative bucket counts (``le`` semantics).

    *bounds* and *cumulative* run in parallel over the finite buckets;
    *total* includes the trailing ``+Inf`` bucket.  Shared by live
    :meth:`Histogram.quantile` and snapshot-dict rendering (the table
    export), so both agree on interpolation."""
    if total <= 0 or not bounds:
        return 0.0
    rank = q * total
    previous_bound = 0.0
    previous_cum = 0
    for bound, cum in zip(bounds, cumulative):
        if cum >= rank:
            bucket_count = cum - previous_cum
            if bucket_count <= 0:
                return float(bound)
            fraction = (rank - previous_cum) / bucket_count
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_cum = bound, cum
    # the rank falls in the +Inf bucket: clamp to the highest finite bound
    return float(bounds[-1])


class MetricsRegistry:
    """Named metrics plus snapshot-time collectors.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent per
    name, so instrument bundles can be rebuilt over one registry).
    Collectors are callables run at the top of :meth:`snapshot`; the
    engine registers one per live subsystem to refresh gauges from the
    always-on counters it samples.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._collectors: list[Callable[[], None]] = []

    def counter(self, name: str, help: str) -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str) -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str, bounds: tuple = LATENCY_BUCKETS
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help, bounds)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}")
        return metric

    def _get_or_create(self, cls, name: str, help: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}")
        return metric

    def add_collector(self, collector: Callable[[], None]) -> None:
        self._collectors.append(collector)

    def snapshot(self) -> dict[str, dict]:
        """Run collectors, then return every metric as a JSON-ready dict."""
        for collector in self._collectors:
            collector()
        return {
            name: metric.as_dict()
            for name, metric in sorted(self._metrics.items())
        }


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Sum several snapshots metric-wise (shard workers → one cluster view).

    Counters, gauges and histogram sums/counts add; histogram buckets add
    bucket-wise (all processes share the instrument definitions, so bucket
    bounds agree).  Metrics present in only some snapshots pass through.
    """
    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, data in snapshot.items():
            held = merged.get(name)
            if held is None:
                merged[name] = {
                    key: (
                        [list(pair) for pair in value]
                        if key == "buckets"
                        else value
                    )
                    for key, value in data.items()
                }
            elif data["type"] == "histogram":
                held["sum"] += data["sum"]
                held["count"] += data["count"]
                for pair, other in zip(held["buckets"], data["buckets"]):
                    pair[1] += other[1]
            else:
                held["value"] += data["value"]
    return merged


class EngineMetrics:
    """The instrument bundle one engine threads through its batch pipeline.

    Created only under ``collect_metrics=True``; every hot-path site
    guards on ``engine.metrics is not None``, so the flag-off engine runs
    the exact uninstrumented path.  The wall-clock instruments here are
    the only metrics that add work per batch — everything else is sampled
    into gauges at snapshot time by the collectors the engine registers.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        counter = self.registry.counter
        histogram = self.registry.histogram
        # batch pipeline phases
        self.batches = counter(
            "repro_batches_total", "Consolidated batches propagated"
        )
        self.batch_raw_events = counter(
            "repro_batch_raw_events_total",
            "Elementary events consumed by propagated batches",
        )
        self.batch_net_records = counter(
            "repro_batch_net_records_total",
            "Net per-entity records after coalescing",
        )
        self.events = counter(
            "repro_events_total", "Per-event (unbatched) dispatches"
        )
        self.coalesce_seconds = histogram(
            "repro_batch_coalesce_seconds",
            "Batch coalesce phase (event buffer to net records)",
        )
        self.dispatch_seconds = histogram(
            "repro_batch_dispatch_seconds",
            "Batch dispatch phase (router and node-graph propagation)",
        )
        self.merge_seconds = histogram(
            "repro_batch_merge_seconds",
            "Batch merge phase (production net deltas and callbacks)",
        )
        self.batch_seconds = histogram(
            "repro_batch_seconds",
            "End-to-end batch latency (coalesce through callbacks)",
        )
        self.event_seconds = histogram(
            "repro_event_dispatch_seconds",
            "Per-event dispatch latency (unbatched path)",
        )
        # sharded tier (coordinator side; zero on the in-process engine)
        self.shard_fanout_seconds = histogram(
            "repro_shard_fanout_seconds",
            "Coordinator fan-out phase (pickle plus per-worker sends)",
        )
        self.shard_merge_seconds = histogram(
            "repro_shard_merge_seconds",
            "Coordinator merge phase (blocking for worker replies)",
        )
