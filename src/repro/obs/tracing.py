"""Per-batch trace spans: where did this delta's latency go?

With ``trace_batches=True`` the engine records each propagated batch as a
span tree — coalesce → dispatch (router → input nodes → the node graph,
one span per ``emit``/``apply`` hop, nesting with the depth-first
propagation) → merge — with per-span wall time and delta sizes.  The
finished tree is retained on the engine (``last_trace``) and renders as
indented text (:meth:`Span.render`) or JSON (:meth:`Span.as_dict`).

The hook in :meth:`~repro.rete.nodes.base.Node.emit` reads the
module-level :data:`ACTIVE` tracer; with tracing off that is one global
load and ``None`` check per emitted delta, and the propagation path is
otherwise byte-identical (the differential oracle in ``tests/obs``
pins this).  The engine installs/restores ``ACTIVE`` around exactly one
propagation at a time, saving the previous value so nested engines (an
``on_change`` callback driving a second engine) compose.

This module imports nothing from the engine, so node modules can import
it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter


@dataclass
class Span:
    """One timed step of a batch's path through the engine."""

    name: str
    detail: str = ""
    #: rows carried by the delta this span handled (0 for phase spans)
    rows: int = 0
    #: inclusive wall time (children included)
    seconds: float = 0.0
    children: list["Span"] = field(default_factory=list)

    @property
    def self_seconds(self) -> float:
        """Wall time spent in this span excluding its children."""
        return self.seconds - sum(child.seconds for child in self.children)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "detail": self.detail,
            "rows": self.rows,
            "seconds": self.seconds,
            "self_seconds": self.self_seconds,
            "children": [child.as_dict() for child in self.children],
        }

    def render(self, indent: int = 0) -> str:
        """Indented one-line-per-span text rendering of the subtree."""
        label = f"{self.name} {self.detail}".rstrip()
        line = (
            f"{'  ' * indent}{label}  rows={self.rows} "
            f"total={self.seconds * 1000:.3f}ms "
            f"self={self.self_seconds * 1000:.3f}ms"
        )
        return "\n".join(
            [line] + [child.render(indent + 1) for child in self.children]
        )

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


class BatchTracer:
    """Builds one :class:`Span` tree while a batch propagates.

    ``enter``/``exit`` bracket one step; nesting follows the call stack
    (synchronous depth-first propagation), so the tree *is* the batch's
    path.  ``finish`` closes the root and returns it.
    """

    def __init__(self, label: str, detail: str = ""):
        self.root = Span(label, detail)
        self._stack: list[tuple[Span, float]] = [(self.root, perf_counter())]

    def enter(self, name: str, detail: str = "", rows: int = 0) -> None:
        span = Span(name, detail, rows)
        self._stack[-1][0].children.append(span)
        self._stack.append((span, perf_counter()))

    def exit(self) -> None:
        span, start = self._stack.pop()
        span.seconds = perf_counter() - start

    def finish(self) -> Span:
        while len(self._stack) > 1:  # defensive: exception mid-span
            self.exit()
        root, start = self._stack[0]
        root.seconds = perf_counter() - start
        return root


#: the tracer observing the propagation currently on the stack, if any —
#: read by Node.emit, installed/restored by the engine around one batch
ACTIVE: BatchTracer | None = None
