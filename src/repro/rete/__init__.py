"""Rete-style incremental view maintenance engine (paper §4, step 4)."""

from .deltas import Delta
from .engine import IncrementalEngine, View
from .network import ReteNetwork

__all__ = ["Delta", "IncrementalEngine", "View", "ReteNetwork"]
