"""Rete-style incremental view maintenance engine (paper §4, step 4)."""

from .batch import BatchAccumulator, CoalescedBatch
from .deltas import Delta
from .engine import BatchScope, IncrementalEngine, View
from .network import ReteNetwork
from .router import EdgeInterest, EventRouter, InterestSummary, VertexInterest
from .shard import ShardCoordinator, ShardView

__all__ = [
    "BatchAccumulator",
    "BatchScope",
    "CoalescedBatch",
    "Delta",
    "EdgeInterest",
    "EventRouter",
    "IncrementalEngine",
    "InterestSummary",
    "ShardCoordinator",
    "ShardView",
    "VertexInterest",
    "View",
    "ReteNetwork",
]
