"""Rete-style incremental view maintenance engine (paper §4, step 4)."""

from .batch import BatchAccumulator, CoalescedBatch
from .deltas import Delta
from .engine import BatchScope, IncrementalEngine, View
from .network import ReteNetwork
from .router import EdgeInterest, EventRouter, VertexInterest

__all__ = [
    "BatchAccumulator",
    "BatchScope",
    "CoalescedBatch",
    "Delta",
    "EdgeInterest",
    "EventRouter",
    "IncrementalEngine",
    "VertexInterest",
    "View",
    "ReteNetwork",
]
