"""Transaction-batched delta propagation: event coalescing.

Per-event maintenance pushes every elementary graph event through every
view's network immediately.  Batch-oriented systems (MV4PG, Beyhl & Giese's
GDN) amortise that overhead by propagating the *net* change of a whole
update window instead.  This module supplies the first half of that
pipeline: a :class:`BatchAccumulator` buffers elementary
:class:`~repro.graph.events.GraphEvent`\\ s and consolidates them into a
:class:`CoalescedBatch` holding **at most one net change per entity**:

* an entity created *and* destroyed inside the window vanishes entirely
  (the insert/delete pair cancels before any tuple is ever built),
* any number of label/property events on one surviving entity collapse
  into a single before → after transition
  (:class:`~repro.graph.events.VertexChanged` /
  :class:`~repro.graph.events.EdgeChanged`),
* entities whose state round-trips back to the window-start value drop out.

The second half lives in the input nodes
(:meth:`~repro.rete.nodes.input.VertexInputNode.batch_delta`): each input
signature translates the consolidated batch once, into one net
:class:`~repro.rete.deltas.Delta`, which then makes a single trip through
the network.

Correctness of deferred translation
-----------------------------------
Elementary events are translated *eagerly* in per-event mode because input
nodes consult the live graph for state the event doesn't carry.  Deferred
translation is sound because consolidation restores that invariant at
flush time: the graph then holds exactly the *after* state of every
consolidated record, and the *before* state of every changed or removed
vertex is carried explicitly (``vertex_before_labels`` /
``vertex_before_properties``), so retraction tuples can be rebuilt exactly
as they were originally asserted — including for edges whose endpoints
changed or disappeared within the window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..graph import events as ev
from ..graph.graph import PropertyGraph


@dataclass(frozen=True, slots=True)
class CoalescedBatch:
    """The net effect of one update window, ready for translation.

    ``vertex_events`` / ``edge_events`` contain at most one record per
    entity: ``VertexAdded``/``EdgeAdded`` carry the entity's *final* state,
    ``VertexRemoved``/``EdgeRemoved`` its *window-start* state, and
    ``VertexChanged``/``EdgeChanged`` both.  The two override maps expose
    the window-start labels/properties of every vertex that changed or
    disappeared, for rebuilding edge retraction tuples whose endpoints no
    longer hold their old state.
    """

    vertex_events: tuple[ev.GraphEvent, ...] = ()
    edge_events: tuple[ev.GraphEvent, ...] = ()
    vertex_before_labels: dict[int, frozenset[str]] = field(default_factory=dict)
    vertex_before_properties: dict[int, dict[str, Any]] = field(default_factory=dict)
    #: elementary events consumed to produce this batch (for reporting)
    raw_events: int = 0

    def __bool__(self) -> bool:
        return bool(self.vertex_events or self.edge_events)


class _VertexTrace:
    """What we must remember about a vertex touched inside the window."""

    __slots__ = ("existed_before", "before_labels", "before_properties")

    def __init__(self, existed_before, before_labels, before_properties):
        self.existed_before = existed_before
        self.before_labels = before_labels
        self.before_properties = before_properties


class _EdgeTrace:
    """What we must remember about an edge touched inside the window."""

    __slots__ = ("existed_before", "source", "target", "edge_type", "before_properties")

    def __init__(self, existed_before, source, target, edge_type, before_properties):
        self.existed_before = existed_before
        self.source = source
        self.target = target
        self.edge_type = edge_type
        self.before_properties = before_properties


class BatchAccumulator:
    """Buffers one window of elementary events and consolidates them.

    ``record`` must be called synchronously from the graph's event stream
    (the store has just applied the mutation), because the first touch of a
    pre-existing entity snapshots its window-start state by unwinding the
    triggering event from the *current* graph state.  After the first touch
    only liveness matters — final state is read from the graph at
    :meth:`consolidate` time.
    """

    def __init__(self, graph: PropertyGraph):
        self.graph = graph
        self._vertices: dict[int, _VertexTrace] = {}
        self._edges: dict[int, _EdgeTrace] = {}
        self._raw_events = 0

    def __bool__(self) -> bool:
        return self._raw_events > 0

    def __len__(self) -> int:
        return self._raw_events

    # -- recording ----------------------------------------------------------

    def record(self, event: ev.GraphEvent) -> None:
        self._raw_events += 1
        if isinstance(event, ev.VertexAdded):
            if event.vertex_id not in self._vertices:
                self._vertices[event.vertex_id] = _VertexTrace(False, None, None)
        elif isinstance(event, ev.VertexRemoved):
            if event.vertex_id not in self._vertices:
                self._vertices[event.vertex_id] = _VertexTrace(
                    True, event.labels, dict(event.properties)
                )
        elif isinstance(event, ev.VertexLabelAdded):
            if event.vertex_id not in self._vertices:
                labels = self.graph.labels_of(event.vertex_id)
                self._vertices[event.vertex_id] = _VertexTrace(
                    True,
                    labels - {event.label},
                    self.graph.vertex_properties(event.vertex_id),
                )
        elif isinstance(event, ev.VertexLabelRemoved):
            if event.vertex_id not in self._vertices:
                labels = self.graph.labels_of(event.vertex_id)
                self._vertices[event.vertex_id] = _VertexTrace(
                    True,
                    labels | {event.label},
                    self.graph.vertex_properties(event.vertex_id),
                )
        elif isinstance(event, ev.VertexPropertySet):
            if event.vertex_id not in self._vertices:
                self._vertices[event.vertex_id] = _VertexTrace(
                    True,
                    self.graph.labels_of(event.vertex_id),
                    ev.unwind_property_set(
                        self.graph.vertex_properties(event.vertex_id), event
                    ),
                )
        elif isinstance(event, ev.EdgeAdded):
            if event.edge_id not in self._edges:
                self._edges[event.edge_id] = _EdgeTrace(
                    False, event.source, event.target, event.edge_type, None
                )
        elif isinstance(event, ev.EdgeRemoved):
            if event.edge_id not in self._edges:
                self._edges[event.edge_id] = _EdgeTrace(
                    True,
                    event.source,
                    event.target,
                    event.edge_type,
                    dict(event.properties),
                )
        elif isinstance(event, ev.EdgePropertySet):
            if event.edge_id not in self._edges:
                source, target = self.graph.endpoints(event.edge_id)
                self._edges[event.edge_id] = _EdgeTrace(
                    True,
                    source,
                    target,
                    self.graph.type_of(event.edge_id),
                    ev.unwind_property_set(
                        self.graph.edge_properties(event.edge_id), event
                    ),
                )

    # -- consolidation ------------------------------------------------------

    def consolidate(self) -> CoalescedBatch:
        """Classify every touched entity against the current graph state."""
        graph = self.graph
        vertex_events: list[ev.GraphEvent] = []
        before_labels: dict[int, frozenset[str]] = {}
        before_properties: dict[int, dict[str, Any]] = {}
        for vertex_id, trace in self._vertices.items():
            alive = graph.has_vertex(vertex_id)
            if alive and trace.existed_before:
                after_labels = graph.labels_of(vertex_id)
                after_properties = graph.vertex_properties(vertex_id)
                if (
                    trace.before_labels != after_labels
                    or trace.before_properties != after_properties
                ):
                    vertex_events.append(
                        ev.VertexChanged(
                            vertex_id,
                            trace.before_labels,
                            trace.before_properties,
                            after_labels,
                            after_properties,
                        )
                    )
                    before_labels[vertex_id] = trace.before_labels
                    before_properties[vertex_id] = trace.before_properties
            elif alive:
                vertex_events.append(
                    ev.VertexAdded(
                        vertex_id,
                        graph.labels_of(vertex_id),
                        graph.vertex_properties(vertex_id),
                    )
                )
            elif trace.existed_before:
                vertex_events.append(
                    ev.VertexRemoved(
                        vertex_id, trace.before_labels, trace.before_properties
                    )
                )
                before_labels[vertex_id] = trace.before_labels
                before_properties[vertex_id] = trace.before_properties
            # else: created and destroyed inside the window — cancelled

        edge_events: list[ev.GraphEvent] = []
        for edge_id, trace in self._edges.items():
            alive = graph.has_edge(edge_id)
            if alive and trace.existed_before:
                after_properties = graph.edge_properties(edge_id)
                if trace.before_properties != after_properties:
                    edge_events.append(
                        ev.EdgeChanged(
                            edge_id,
                            trace.source,
                            trace.target,
                            trace.edge_type,
                            trace.before_properties,
                            after_properties,
                        )
                    )
            elif alive:
                source, target = graph.endpoints(edge_id)
                edge_events.append(
                    ev.EdgeAdded(
                        edge_id,
                        source,
                        target,
                        graph.type_of(edge_id),
                        graph.edge_properties(edge_id),
                    )
                )
            elif trace.existed_before:
                edge_events.append(
                    ev.EdgeRemoved(
                        edge_id,
                        trace.source,
                        trace.target,
                        trace.edge_type,
                        trace.before_properties,
                    )
                )

        return CoalescedBatch(
            tuple(vertex_events),
            tuple(edge_events),
            before_labels,
            before_properties,
            self._raw_events,
        )
