"""Signed multisets (deltas) — the currency of the Rete network.

Incremental maintenance uses the counting approach of Gupta–Mumick /
Griffin–Libkin (paper refs [10, 11]): every relation is a bag represented
as ``tuple → multiplicity``, and changes travel as *deltas* mapping tuples
to signed multiplicity changes.  A delta with ``+2`` means "two more copies
of this row"; ``-1`` means "one copy retracted".
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Delta:
    """A signed multiset of rows; zero-count entries vanish."""

    __slots__ = ("_counts",)

    def __init__(self, items: Iterable[tuple[tuple, int]] = ()):
        self._counts: dict[tuple, int] = {}
        for row, multiplicity in items:
            self.add(row, multiplicity)

    def add(self, row: tuple, multiplicity: int) -> None:
        if multiplicity == 0:
            return
        count = self._counts.get(row, 0) + multiplicity
        if count:
            self._counts[row] = count
        else:
            del self._counts[row]

    def update(self, other: "Delta") -> None:
        # empty-destination fast path: no entry can merge or cancel, so the
        # whole map copies in one C-level bulk update (zero-count rows never
        # exist inside a Delta, so the invariant is preserved)
        if not self._counts:
            self._counts.update(other._counts)
            return
        for row, multiplicity in other.items():
            self.add(row, multiplicity)

    def items(self) -> Iterator[tuple[tuple, int]]:
        return iter(self._counts.items())

    def __iter__(self) -> Iterator[tuple[tuple, int]]:
        return iter(self._counts.items())

    def __len__(self) -> int:
        return len(self._counts)

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Delta):
            return self._counts == other._counts
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        inner = ", ".join(f"{row}: {m:+d}" for row, m in self._counts.items())
        return "Delta{" + inner + "}"

    def negated(self) -> "Delta":
        out = Delta()
        for row, multiplicity in self.items():
            out.add(row, -multiplicity)
        return out


def merged(deltas: Iterable["Delta"]) -> Delta:
    """Consolidate several deltas into one net delta.

    Multiplicities for the same row merge and cancel (an insert/delete
    pair of the same row vanishes), which is what makes a batch's many
    partial output deltas collapse into the single net delta handed to
    ``on_change`` callbacks.
    """
    out = Delta()
    for delta in deltas:
        out.update(delta)
    return out


def bag_insert(bag: dict[tuple, int], row: tuple, multiplicity: int) -> int:
    """Adjust *row*'s count in a bag; returns the new count (may be 0)."""
    count = bag.get(row, 0) + multiplicity
    if count:
        bag[row] = count
    else:
        bag.pop(row, None)
    return count


def index_insert(
    index: dict, key: tuple, row: tuple, multiplicity: int
) -> None:
    """Adjust a keyed bag index (key → bag of rows); prunes empty buckets."""
    bucket = index.get(key)
    if bucket is None:
        if multiplicity == 0:
            return
        bucket = {}
        index[key] = bucket
    if bag_insert(bucket, row, multiplicity) == 0 and not bucket:
        del index[key]
