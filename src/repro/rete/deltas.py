"""Signed multisets (deltas) — the currency of the Rete network.

Incremental maintenance uses the counting approach of Gupta–Mumick /
Griffin–Libkin (paper refs [10, 11]): every relation is a bag represented
as ``tuple → multiplicity``, and changes travel as *deltas* mapping tuples
to signed multiplicity changes.  A delta with ``+2`` means "two more copies
of this row"; ``-1`` means "one copy retracted".

Two physical representations carry the same logical object:

* :class:`Delta` — the row-at-a-time form: a ``dict`` keyed by row tuple.
  Always *consolidated* (zero-count entries vanish), which is what lets a
  batch's insert/delete pairs cancel before they travel.
* :class:`ColumnDelta` — the columnar batch form: parallel value columns
  plus one signed multiplicity column.  It is an *unconsolidated* record
  of changes (the same row may appear several times; occurrences sum),
  built once at the batched input boundary and streamed through the
  hot-path nodes without per-row dict churn.  Row tuples are materialised
  lazily — column projection (:meth:`ColumnDelta.column`) and key
  extraction (:meth:`ColumnDelta.key_column`) work on the columns
  directly, one C-level ``zip`` per call instead of one Python-level
  tuple build per row.

Counting-linear operators (σ, π, ω, ∪, ⋈ and both antijoin/outer-join
memories) consume a :class:`ColumnDelta` as-is: their maintenance rule is
linear in occurrences, so an unconsolidated batch nets to exactly the same
output.  Transition-sensitive operators (δ, γ, ⋈*, the production node) are
defined on *net* per-row changes and consolidate at entry via
:func:`as_row_delta` — the boundary-materialisation rule of the columnar
hot path.

Node *memories* have two physical representations as well:

* the row-dict index — ``key → {row: multiplicity}`` plain dicts
  maintained by :func:`index_insert`/:func:`index_update` (the PR 1–9
  path, restored exactly by the ``columnar_memories=False`` ablation);
* :class:`ColumnStore` — a column-backed keyed bag: non-key ("payload")
  values live in parallel columns beside a signed multiplicity column,
  and the hash index maps each distinct key tuple to a list of slot
  positions.  Key cells are stored once per *distinct* key instead of
  once per row, which is where the memory reduction of columnar
  memories comes from; probes return lightweight bucket views whose
  ``payloads()`` hands a natural join its merge suffixes without
  reconstructing the stored row.

:class:`RowInterner` rounds the memory model out for the
transition-sensitive nodes: they keep their count-map semantics but
intern the row tuples they key on through one engine-wide refcounted
pool, so the same result row held by many overlapping views is stored
once.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class Delta:
    """A signed multiset of rows; zero-count entries vanish."""

    __slots__ = ("_counts",)

    def __init__(self, items: Iterable[tuple[tuple, int]] = ()):
        self._counts: dict[tuple, int] = {}
        for row, multiplicity in items:
            self.add(row, multiplicity)

    def add(self, row: tuple, multiplicity: int) -> None:
        if multiplicity == 0:
            return
        count = self._counts.get(row, 0) + multiplicity
        if count:
            self._counts[row] = count
        else:
            del self._counts[row]

    def update(self, other: "Delta") -> None:
        # empty-destination fast path: no entry can merge or cancel, so the
        # whole map copies in one C-level bulk update (zero-count rows never
        # exist inside a Delta, so the invariant is preserved)
        if not self._counts:
            self._counts.update(other._counts)
            return
        for row, multiplicity in other.items():
            self.add(row, multiplicity)

    def items(self) -> Iterator[tuple[tuple, int]]:
        return iter(self._counts.items())

    def __iter__(self) -> Iterator[tuple[tuple, int]]:
        return iter(self._counts.items())

    def __len__(self) -> int:
        return len(self._counts)

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Delta):
            return self._counts == other._counts
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        inner = ", ".join(f"{row}: {m:+d}" for row, m in self._counts.items())
        return "Delta{" + inner + "}"

    def negated(self) -> "Delta":
        out = Delta()
        for row, multiplicity in self.items():
            out.add(row, -multiplicity)
        return out


class ColumnDelta:
    """A columnar batch of signed row changes (see module docstring).

    ``columns`` is a list of ``width`` parallel lists; ``mults`` is the
    signed multiplicity column.  All columns have equal length.  The batch
    is **not** consolidated: the same row may occur on several positions
    and its net multiplicity is the sum of its occurrences.  Construction
    from a :class:`Delta` (:meth:`from_delta`) yields a consolidated
    batch; node outputs built with :meth:`from_rows` generally are not.
    """

    __slots__ = ("columns", "mults", "width")

    def __init__(self, columns: list[list], mults: list[int], width: int):
        self.columns = columns
        self.mults = mults
        self.width = width

    # -- construction -------------------------------------------------------

    @classmethod
    def from_delta(cls, delta: Delta, width: int) -> "ColumnDelta":
        """Transpose a consolidated row delta into columns (one C pass)."""
        counts = delta._counts
        if not counts:
            return cls([[] for _ in range(width)], [], width)
        columns = [list(col) for col in zip(*counts.keys())] if width else []
        return cls(columns, list(counts.values()), width)

    @classmethod
    def from_rows(
        cls, rows: Sequence[tuple], mults: list[int], width: int
    ) -> "ColumnDelta":
        """Transpose a (possibly unconsolidated) row batch into columns."""
        if not rows:
            return cls([[] for _ in range(width)], [], width)
        columns = [list(col) for col in zip(*rows)] if width else []
        return cls(columns, list(mults), width)

    # -- access -------------------------------------------------------------

    def column(self, index: int) -> list:
        """Zero-copy projection of one column."""
        return self.columns[index]

    def key_column(self, indices: Sequence[int]) -> list[tuple]:
        """Key tuples for every position, extracted column-wise.

        The result tuples are identical to ``tuple(row[i] for i in
        indices)`` of the row-at-a-time path, so they probe the same hash
        memories; the transpose happens in one C-level ``zip`` instead of
        one Python expression per row.
        """
        n = len(self.mults)
        if not indices:
            return [()] * n
        if len(indices) == 1:
            return [(value,) for value in self.columns[indices[0]]]
        return list(zip(*(self.columns[i] for i in indices)))

    def rows(self) -> list[tuple]:
        """All row tuples, materialised in one C-level transpose."""
        if self.width == 0:
            return [()] * len(self.mults)
        return list(zip(*self.columns))

    def items(self) -> Iterator[tuple[tuple, int]]:
        return zip(self.rows(), self.mults)

    def __iter__(self) -> Iterator[tuple[tuple, int]]:
        return zip(self.rows(), self.mults)

    def __len__(self) -> int:
        return len(self.mults)

    def __bool__(self) -> bool:
        return bool(self.mults)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        inner = ", ".join(f"{row}: {m:+d}" for row, m in self.items())
        return "ColumnDelta{" + inner + "}"

    def to_delta(self) -> Delta:
        """Consolidated row form — duplicate occurrences merge and cancel."""
        out = Delta()
        add = out.add
        for row, multiplicity in zip(self.rows(), self.mults):
            add(row, multiplicity)
        return out


#: either physical representation of a delta (see module docstring)
AnyDelta = "Delta | ColumnDelta"


def as_row_delta(delta: "Delta | ColumnDelta") -> Delta:
    """*delta* as a consolidated :class:`Delta` (identity for row deltas).

    The entry conversion of transition-sensitive nodes: their maintenance
    rules are defined on net per-row changes, so a columnar batch must
    consolidate before they see it.
    """
    if type(delta) is ColumnDelta:
        return delta.to_delta()
    return delta


def merged(deltas: Iterable["Delta"]) -> Delta:
    """Consolidate several deltas into one net delta.

    Multiplicities for the same row merge and cancel (an insert/delete
    pair of the same row vanishes), which is what makes a batch's many
    partial output deltas collapse into the single net delta handed to
    ``on_change`` callbacks.
    """
    out = Delta()
    for delta in deltas:
        out.update(delta)
    return out


def bag_insert(bag: dict[tuple, int], row: tuple, multiplicity: int) -> int:
    """Adjust *row*'s count in a bag; returns the new count (may be 0)."""
    count = bag.get(row, 0) + multiplicity
    if count:
        bag[row] = count
    else:
        bag.pop(row, None)
    return count


def index_insert(
    index: "dict | ColumnStore", key: tuple, row: tuple, multiplicity: int
) -> None:
    """Adjust a keyed bag index (key → bag of rows); prunes empty buckets.

    Buckets never retain zero-count rows: a cancellation pops the row, and
    a bucket whose last row cancels is deleted from the index.  Accepts
    either memory representation — a plain row-dict index or a
    :class:`ColumnStore` (dispatched here so node maintenance loops stay
    single-path).
    """
    if multiplicity == 0:
        return
    if type(index) is not dict:
        index.insert(key, row, multiplicity)
        return
    bucket = index.get(key)
    if bucket is None:
        index[key] = {row: multiplicity}
        return
    count = bucket.get(row, 0) + multiplicity
    if count:
        bucket[row] = count
    else:
        del bucket[row]
        if not bucket:
            del index[key]


def index_update(
    index: dict,
    keys: Sequence[tuple],
    rows: Sequence[tuple],
    mults: Sequence[int],
) -> None:
    """Bulk :func:`index_insert` over parallel key/row/multiplicity columns.

    One pass folds a whole columnar batch into a keyed bag index with the
    dict probes hoisted out of the per-row path; the invariant is the same
    as :func:`index_insert`'s — buckets never retain zero-count rows and
    emptied buckets leave the index, even under repeated insert/delete
    churn of the same row inside one batch.
    """
    if type(index) is not dict:
        index.insert_batch(keys, rows, mults)
        return
    get = index.get
    for key, row, multiplicity in zip(keys, rows, mults):
        if multiplicity == 0:
            continue
        bucket = get(key)
        if bucket is None:
            index[key] = {row: multiplicity}
            continue
        count = bucket.get(row, 0) + multiplicity
        if count:
            bucket[row] = count
        else:
            del bucket[row]
            if not bucket:
                del index[key]


def interned_bag_insert(
    bag: dict[tuple, int],
    row: tuple,
    multiplicity: int,
    interner: "RowInterner | None",
) -> int:
    """:func:`bag_insert` with dict-key rows held via *interner*.

    The transition-sensitive nodes keep count-map semantics but route
    their row keys through the engine's :class:`RowInterner`: the key is
    interned exactly when its entry is created and released exactly when
    the entry dies, so the pool's refcounts mirror the bags and a node's
    ``dispose()`` can return its remaining keys.  ``interner=None`` is
    plain :func:`bag_insert` (the ``columnar_memories=False`` ablation).
    """
    before = bag.get(row, 0)
    count = before + multiplicity
    if count:
        if before == 0 and interner is not None:
            row = interner.intern(row)
        bag[row] = count
    elif before:
        del bag[row]
        if interner is not None:
            interner.release(row)
    return count


def interned_index_insert(
    index: dict,
    key,
    row: tuple,
    multiplicity: int,
    interner: "RowInterner | None",
) -> None:
    """:func:`index_insert` (row-dict form) with interned bucket keys.

    Same entry-lifetime discipline as :func:`interned_bag_insert`, for the
    keyed bag indexes of ⋈* (left rows bucketed per source vertex).
    """
    if multiplicity == 0:
        return
    bucket = index.get(key)
    if bucket is None:
        if interner is not None:
            row = interner.intern(row)
        index[key] = {row: multiplicity}
        return
    before = bucket.get(row, 0)
    count = before + multiplicity
    if count:
        if before == 0 and interner is not None:
            row = interner.intern(row)
        bucket[row] = count
    else:
        del bucket[row]
        if not bucket:
            del index[key]
        if interner is not None:
            interner.release(row)


class StoreBucket:
    """A lightweight read view over one :class:`ColumnStore` bucket.

    Duck-typed like the ``{row: multiplicity}`` dict the row path keeps:
    truthy when non-empty, sized, and ``items()`` yields ``(row, mult)``
    pairs with the row reassembled from the bucket key and the payload
    columns.  ``payloads()`` skips the reassembly and yields the payload
    tuples directly — for a natural join's right memory (payload order ==
    ``right_extra``) these are exactly the merge suffixes.  Both methods
    return a fresh generator per call, so a view may be iterated several
    times within one maintenance step (the outer-join null toggles do).
    """

    __slots__ = ("_store", "_key", "_positions")

    def __init__(self, store: "ColumnStore", key: tuple, positions: list[int]):
        self._store = store
        self._key = key
        self._positions = positions

    def __len__(self) -> int:
        return len(self._positions)

    def __bool__(self) -> bool:
        return bool(self._positions)

    def items(self) -> Iterator[tuple[tuple, int]]:
        key = self._key
        store = self._store
        columns = store.columns
        mults = store.mults
        assemble = store._assemble
        for pos in self._positions:
            yield (
                tuple(
                    key[j] if from_key else columns[j][pos]
                    for from_key, j in assemble
                ),
                mults[pos],
            )

    def payloads(self) -> Iterator[tuple[tuple, int]]:
        store = self._store
        mults = store.mults
        single = store._single
        if single is not None:
            for pos in self._positions:
                yield (single[pos],), mults[pos]
            return
        columns = store.columns
        for pos in self._positions:
            yield tuple(column[pos] for column in columns), mults[pos]


class ColumnStore:
    """A column-backed keyed bag memory (the ``columnar_memories`` path).

    Rows of a fixed width are split into *key* columns (the hash-index
    key, e.g. a join's shared attributes) and *payload* columns (the
    rest, in a caller-chosen order).  Payload values sit in parallel
    lists beside one signed multiplicity column; ``index`` maps each
    distinct key tuple to the list of live slot positions holding that
    key.  Key cells are therefore stored once per distinct key — the
    row-dict path stores the full row per entry — and cancelled slots go
    on a free list for reuse.

    The read surface mirrors the row-dict index (``get``/``items``/
    ``values``/truthiness) so probe-side code is representation-agnostic;
    writes go through ``insert``/``insert_batch`` (row-form, dispatched
    by :func:`index_insert`/:func:`index_update`) or ``insert_columns``
    (column-form: a :class:`ColumnDelta`'s columns fold straight into
    column storage with no row tuples built).  The invariant matches the
    row path's: no slot ever holds multiplicity zero and emptied buckets
    leave the index.
    """

    __slots__ = (
        "key_cols",
        "payload_cols",
        "width",
        "columns",
        "mults",
        "index",
        "free",
        "_assemble",
        "_single",
    )

    def __init__(self, key_cols: Sequence[int], payload_cols: Sequence[int]):
        self.key_cols = tuple(key_cols)
        self.payload_cols = tuple(payload_cols)
        self.width = len(self.key_cols) + len(self.payload_cols)
        if sorted(self.key_cols + self.payload_cols) != list(range(self.width)):
            raise ValueError(
                f"key {self.key_cols} and payload {self.payload_cols} must "
                f"partition the row width"
            )
        self.columns: list[list] = [[] for _ in self.payload_cols]
        self.mults: list[int] = []
        self.index: dict[tuple, list[int]] = {}
        self.free: list[int] = []
        # row[i] comes from the key tuple or a payload column — precomputed
        # as (from_key, position-within-source) per output position
        self._assemble = tuple(
            (True, self.key_cols.index(i))
            if i in self.key_cols
            else (False, self.payload_cols.index(i))
            for i in range(self.width)
        )
        # join memories overwhelmingly carry one payload column; the fold
        # loop takes a dedicated branch that skips the per-column zip
        self._single = self.columns[0] if len(self.columns) == 1 else None

    # -- writes -------------------------------------------------------------

    def _fold(self, key: tuple, payload: tuple, multiplicity: int) -> None:
        """One occurrence into the bucket of *key*; prunes cancelled slots."""
        index = self.index
        bucket = index.get(key)
        if bucket is None:
            index[key] = [self._alloc(payload, multiplicity)]
            return
        mults = self.mults
        single = self._single
        if single is not None:
            value = payload[0]
            for pos in bucket:
                held = single[pos]
                if held is value or held == value:
                    count = mults[pos] + multiplicity
                    if count:
                        mults[pos] = count
                    else:
                        self._release(pos)
                        bucket.remove(pos)
                        if not bucket:
                            del index[key]
                    return
        else:
            columns = self.columns
            for pos in bucket:
                for column, col_value in zip(columns, payload):
                    held = column[pos]
                    if held is not col_value and held != col_value:
                        break
                else:
                    count = mults[pos] + multiplicity
                    if count:
                        mults[pos] = count
                    else:
                        self._release(pos)
                        bucket.remove(pos)
                        if not bucket:
                            del index[key]
                    return
        bucket.append(self._alloc(payload, multiplicity))

    def _alloc(self, payload: tuple, multiplicity: int) -> int:
        free = self.free
        columns = self.columns
        if free:
            pos = free.pop()
            for column, value in zip(columns, payload):
                column[pos] = value
            self.mults[pos] = multiplicity
        else:
            pos = len(self.mults)
            for column, value in zip(columns, payload):
                column.append(value)
            self.mults.append(multiplicity)
        return pos

    def _release(self, pos: int) -> None:
        for column in self.columns:
            column[pos] = None
        self.mults[pos] = 0
        self.free.append(pos)

    def insert(self, key: tuple, row: tuple, multiplicity: int) -> None:
        if multiplicity == 0:
            return
        if self._single is not None:
            self._fold(key, (row[self.payload_cols[0]],), multiplicity)
            return
        self._fold(
            key, tuple(row[i] for i in self.payload_cols), multiplicity
        )

    def insert_batch(
        self,
        keys: Sequence[tuple],
        rows: Sequence[tuple],
        mults: Sequence[int],
    ) -> None:
        payload_cols = self.payload_cols
        fold = self._fold
        if self._single is not None:
            payload_col = payload_cols[0]
            for key, row, multiplicity in zip(keys, rows, mults):
                if multiplicity:
                    fold(key, (row[payload_col],), multiplicity)
            return
        for key, row, multiplicity in zip(keys, rows, mults):
            if multiplicity:
                fold(key, tuple(row[i] for i in payload_cols), multiplicity)

    def insert_columns(
        self, keys: Sequence[tuple], columns: Sequence[list], mults: Sequence[int]
    ) -> None:
        """Fold a columnar batch in directly — no row tuples materialised."""
        fold = self._fold
        if self._single is not None:
            source = columns[self.payload_cols[0]]
            pos = 0
            for key, multiplicity in zip(keys, mults):
                if multiplicity:
                    fold(key, (source[pos],), multiplicity)
                pos += 1
            return
        sources = [columns[i] for i in self.payload_cols]
        pos = 0
        for key, multiplicity in zip(keys, mults):
            if multiplicity:
                fold(
                    key,
                    tuple(source[pos] for source in sources),
                    multiplicity,
                )
            pos += 1

    def insert_payload(
        self, key: tuple, payload: tuple, multiplicity: int
    ) -> None:
        """One occurrence whose payload tuple the caller already holds."""
        if multiplicity:
            self._fold(key, payload, multiplicity)

    # -- reads (row-dict index surface) -------------------------------------

    def get(self, key: tuple, default=None):
        positions = self.index.get(key)
        if positions is None:
            return default
        return StoreBucket(self, key, positions)

    def items(self) -> Iterator[tuple[tuple, StoreBucket]]:
        for key, positions in self.index.items():
            yield key, StoreBucket(self, key, positions)

    def values(self) -> Iterator[StoreBucket]:
        for key, positions in self.index.items():
            yield StoreBucket(self, key, positions)

    def __len__(self) -> int:
        return len(self.index)

    def __bool__(self) -> bool:
        return bool(self.index)

    def key_weight(self, key: tuple) -> int:
        """Summed multiplicity under *key* (the outer join's right count —
        derived from the bucket instead of a separate per-key count map)."""
        positions = self.index.get(key)
        if positions is None:
            return 0
        mults = self.mults
        return sum(mults[pos] for pos in positions)

    # -- accounting ---------------------------------------------------------

    def size(self) -> int:
        """Live slot count — one per distinct (key, payload) entry, the
        same number the row-dict index reports as bucket entries."""
        return len(self.mults) - len(self.free)

    def cells(self) -> int:
        """Stored tuple fields: payload cells per live slot plus key cells
        once per distinct key (the columnar saving the row path lacks)."""
        return (len(self.mults) - len(self.free)) * len(self.payload_cols) + len(
            self.index
        ) * len(self.key_cols)


def index_size(index: "dict | ColumnStore") -> int:
    """Entry count of either memory representation (same number both ways)."""
    if type(index) is not dict:
        return index.size()
    return sum(len(bucket) for bucket in index.values())


def index_cells(index: "dict | ColumnStore") -> int:
    """Stored tuple fields of either memory representation."""
    if type(index) is not dict:
        return index.cells()
    return sum(len(row) for bucket in index.values() for row in bucket)


#: value types the intern pool may canonicalise across nodes: for these a
#: per-element type tag makes the pool key *type-exact*, so Python's
#: ``1 == True == 1.0`` conflation can never hand one view another view's
#: equal-but-differently-typed tuple (observable through ``multiset()``)
_INTERN_ATOMS = (bool, int, float, str, bytes, type(None))


def _intern_key(row: tuple) -> "tuple | None":
    """Type-exact pool key for *row*, or ``None`` when uninternable.

    Rows holding container values (lists, maps, paths) are passed through
    uninterned — equality on those can cross type boundaries below the
    reach of a shallow tag, and sharing them would risk returning a
    different view's representation of an equal value.  Rows shorter than
    two cells are also passed through: a pool entry costs more than
    sharing a 1-tuple saves, and aggregate outputs churn through them
    constantly.
    """
    if len(row) < 2:
        return None
    types = []
    for value in row:
        cls = value.__class__
        if cls not in _INTERN_ATOMS:
            return None
        types.append(cls)
    return (row, tuple(types))


class RowInterner:
    """A refcounted pool of canonical row tuples.

    Transition-sensitive nodes (δ, γ, ⋈*, production) keep count-map
    semantics under columnar memories but route the tuples they key on
    through one engine-wide pool: ``intern`` returns the canonical
    type-identical tuple (storing the argument only on first sight),
    ``release`` drops a reference when a node's count for the row returns
    to zero.  With many overlapping views the same result row is then held
    once, not once per view — a real-bytes reduction that leaves every
    node's cell *accounting* untouched (accounting counts logical fields,
    which obs gauges and ``view_costs()`` are built on).  Rows with
    non-atomic values pass through unpooled (see :func:`_intern_key`).
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: dict[tuple, list] = {}

    def intern(self, row: tuple) -> tuple:
        key = _intern_key(row)
        if key is None:
            return row
        entry = self._entries.get(key)
        if entry is None:
            self._entries[key] = [row, 1]
            return row
        entry[1] += 1
        return entry[0]

    def release(self, row: tuple) -> None:
        key = _intern_key(row)
        if key is None:
            return
        entry = self._entries.get(key)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] <= 0:
            del self._entries[key]

    def release_all(self, rows: Iterable[tuple]) -> None:
        """Bulk release at node teardown (view detach, subplan eviction)."""
        for row in rows:
            self.release(row)

    def __len__(self) -> int:
        return len(self._entries)
