"""Signed multisets (deltas) — the currency of the Rete network.

Incremental maintenance uses the counting approach of Gupta–Mumick /
Griffin–Libkin (paper refs [10, 11]): every relation is a bag represented
as ``tuple → multiplicity``, and changes travel as *deltas* mapping tuples
to signed multiplicity changes.  A delta with ``+2`` means "two more copies
of this row"; ``-1`` means "one copy retracted".

Two physical representations carry the same logical object:

* :class:`Delta` — the row-at-a-time form: a ``dict`` keyed by row tuple.
  Always *consolidated* (zero-count entries vanish), which is what lets a
  batch's insert/delete pairs cancel before they travel.
* :class:`ColumnDelta` — the columnar batch form: parallel value columns
  plus one signed multiplicity column.  It is an *unconsolidated* record
  of changes (the same row may appear several times; occurrences sum),
  built once at the batched input boundary and streamed through the
  hot-path nodes without per-row dict churn.  Row tuples are materialised
  lazily — column projection (:meth:`ColumnDelta.column`) and key
  extraction (:meth:`ColumnDelta.key_column`) work on the columns
  directly, one C-level ``zip`` per call instead of one Python-level
  tuple build per row.

Counting-linear operators (σ, π, ω, ∪, ⋈ and both antijoin/outer-join
memories) consume a :class:`ColumnDelta` as-is: their maintenance rule is
linear in occurrences, so an unconsolidated batch nets to exactly the same
output.  Transition-sensitive operators (δ, γ, ⋈*, the production node) are
defined on *net* per-row changes and consolidate at entry via
:func:`as_row_delta` — the boundary-materialisation rule of the columnar
hot path.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class Delta:
    """A signed multiset of rows; zero-count entries vanish."""

    __slots__ = ("_counts",)

    def __init__(self, items: Iterable[tuple[tuple, int]] = ()):
        self._counts: dict[tuple, int] = {}
        for row, multiplicity in items:
            self.add(row, multiplicity)

    def add(self, row: tuple, multiplicity: int) -> None:
        if multiplicity == 0:
            return
        count = self._counts.get(row, 0) + multiplicity
        if count:
            self._counts[row] = count
        else:
            del self._counts[row]

    def update(self, other: "Delta") -> None:
        # empty-destination fast path: no entry can merge or cancel, so the
        # whole map copies in one C-level bulk update (zero-count rows never
        # exist inside a Delta, so the invariant is preserved)
        if not self._counts:
            self._counts.update(other._counts)
            return
        for row, multiplicity in other.items():
            self.add(row, multiplicity)

    def items(self) -> Iterator[tuple[tuple, int]]:
        return iter(self._counts.items())

    def __iter__(self) -> Iterator[tuple[tuple, int]]:
        return iter(self._counts.items())

    def __len__(self) -> int:
        return len(self._counts)

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Delta):
            return self._counts == other._counts
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        inner = ", ".join(f"{row}: {m:+d}" for row, m in self._counts.items())
        return "Delta{" + inner + "}"

    def negated(self) -> "Delta":
        out = Delta()
        for row, multiplicity in self.items():
            out.add(row, -multiplicity)
        return out


class ColumnDelta:
    """A columnar batch of signed row changes (see module docstring).

    ``columns`` is a list of ``width`` parallel lists; ``mults`` is the
    signed multiplicity column.  All columns have equal length.  The batch
    is **not** consolidated: the same row may occur on several positions
    and its net multiplicity is the sum of its occurrences.  Construction
    from a :class:`Delta` (:meth:`from_delta`) yields a consolidated
    batch; node outputs built with :meth:`from_rows` generally are not.
    """

    __slots__ = ("columns", "mults", "width")

    def __init__(self, columns: list[list], mults: list[int], width: int):
        self.columns = columns
        self.mults = mults
        self.width = width

    # -- construction -------------------------------------------------------

    @classmethod
    def from_delta(cls, delta: Delta, width: int) -> "ColumnDelta":
        """Transpose a consolidated row delta into columns (one C pass)."""
        counts = delta._counts
        if not counts:
            return cls([[] for _ in range(width)], [], width)
        columns = [list(col) for col in zip(*counts.keys())] if width else []
        return cls(columns, list(counts.values()), width)

    @classmethod
    def from_rows(
        cls, rows: Sequence[tuple], mults: list[int], width: int
    ) -> "ColumnDelta":
        """Transpose a (possibly unconsolidated) row batch into columns."""
        if not rows:
            return cls([[] for _ in range(width)], [], width)
        columns = [list(col) for col in zip(*rows)] if width else []
        return cls(columns, list(mults), width)

    # -- access -------------------------------------------------------------

    def column(self, index: int) -> list:
        """Zero-copy projection of one column."""
        return self.columns[index]

    def key_column(self, indices: Sequence[int]) -> list[tuple]:
        """Key tuples for every position, extracted column-wise.

        The result tuples are identical to ``tuple(row[i] for i in
        indices)`` of the row-at-a-time path, so they probe the same hash
        memories; the transpose happens in one C-level ``zip`` instead of
        one Python expression per row.
        """
        n = len(self.mults)
        if not indices:
            return [()] * n
        if len(indices) == 1:
            return [(value,) for value in self.columns[indices[0]]]
        return list(zip(*(self.columns[i] for i in indices)))

    def rows(self) -> list[tuple]:
        """All row tuples, materialised in one C-level transpose."""
        if self.width == 0:
            return [()] * len(self.mults)
        return list(zip(*self.columns))

    def items(self) -> Iterator[tuple[tuple, int]]:
        return zip(self.rows(), self.mults)

    def __iter__(self) -> Iterator[tuple[tuple, int]]:
        return zip(self.rows(), self.mults)

    def __len__(self) -> int:
        return len(self.mults)

    def __bool__(self) -> bool:
        return bool(self.mults)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        inner = ", ".join(f"{row}: {m:+d}" for row, m in self.items())
        return "ColumnDelta{" + inner + "}"

    def to_delta(self) -> Delta:
        """Consolidated row form — duplicate occurrences merge and cancel."""
        out = Delta()
        add = out.add
        for row, multiplicity in zip(self.rows(), self.mults):
            add(row, multiplicity)
        return out


#: either physical representation of a delta (see module docstring)
AnyDelta = "Delta | ColumnDelta"


def as_row_delta(delta: "Delta | ColumnDelta") -> Delta:
    """*delta* as a consolidated :class:`Delta` (identity for row deltas).

    The entry conversion of transition-sensitive nodes: their maintenance
    rules are defined on net per-row changes, so a columnar batch must
    consolidate before they see it.
    """
    if type(delta) is ColumnDelta:
        return delta.to_delta()
    return delta


def merged(deltas: Iterable["Delta"]) -> Delta:
    """Consolidate several deltas into one net delta.

    Multiplicities for the same row merge and cancel (an insert/delete
    pair of the same row vanishes), which is what makes a batch's many
    partial output deltas collapse into the single net delta handed to
    ``on_change`` callbacks.
    """
    out = Delta()
    for delta in deltas:
        out.update(delta)
    return out


def bag_insert(bag: dict[tuple, int], row: tuple, multiplicity: int) -> int:
    """Adjust *row*'s count in a bag; returns the new count (may be 0)."""
    count = bag.get(row, 0) + multiplicity
    if count:
        bag[row] = count
    else:
        bag.pop(row, None)
    return count


def index_insert(
    index: dict, key: tuple, row: tuple, multiplicity: int
) -> None:
    """Adjust a keyed bag index (key → bag of rows); prunes empty buckets.

    Buckets never retain zero-count rows: a cancellation pops the row, and
    a bucket whose last row cancels is deleted from the index.
    """
    if multiplicity == 0:
        return
    bucket = index.get(key)
    if bucket is None:
        index[key] = {row: multiplicity}
        return
    count = bucket.get(row, 0) + multiplicity
    if count:
        bucket[row] = count
    else:
        del bucket[row]
        if not bucket:
            del index[key]


def index_update(
    index: dict,
    keys: Sequence[tuple],
    rows: Sequence[tuple],
    mults: Sequence[int],
) -> None:
    """Bulk :func:`index_insert` over parallel key/row/multiplicity columns.

    One pass folds a whole columnar batch into a keyed bag index with the
    dict probes hoisted out of the per-row path; the invariant is the same
    as :func:`index_insert`'s — buckets never retain zero-count rows and
    emptied buckets leave the index, even under repeated insert/delete
    churn of the same row inside one batch.
    """
    get = index.get
    for key, row, multiplicity in zip(keys, rows, mults):
        if multiplicity == 0:
            continue
        bucket = get(key)
        if bucket is None:
            index[key] = {row: multiplicity}
            continue
        count = bucket.get(row, 0) + multiplicity
        if count:
            bucket[row] = count
        else:
            del bucket[row]
            if not bucket:
                del index[key]
