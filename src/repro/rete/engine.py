"""The incremental query engine: registered views over a live graph.

:class:`IncrementalEngine` owns one graph subscription and any number of
registered views.  By default every elementary graph change propagates
synchronously through each view's Rete network, so ``View.rows()`` is
always consistent with the current graph — the paper's IVM property.

Batched propagation
-------------------
``engine.batch()`` opens a re-entrant scope that buffers elementary events
instead.  On scope exit they are coalesced (:mod:`repro.rete.batch`) into
one net delta per input signature — insert/delete pairs cancel before any
tuple is built — which makes a single trip through every network, and each
view's ``on_change`` callback fires **exactly once per batch** with the net
output delta (or not at all when the batch nets to nothing).  Inside an
open batch ``View.rows()`` is intentionally stale; it catches up at flush.

With ``batch_transactions=True`` the engine additionally listens to
:meth:`PropertyGraph.transaction` phases: every transaction scope becomes a
batch that flushes at commit, and a rollback — whose compensation events
land in the same window — nets to zero, leaving views untouched and
callbacks silent.  The per-event path stays the default (and serves as the
batch-size-1 ablation baseline).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Mapping

from ..compiler.optimizer import lifted_plan
from ..compiler.pipeline import CompiledQuery, compile_query
from ..errors import TransactionError
from ..eval.results import ResultTable
from ..graph import events as ev
from ..graph.graph import PropertyGraph
from ..obs import tracing
from ..obs.metrics import EngineMetrics
from .batch import BatchAccumulator
from .deltas import Delta, RowInterner
from .network import ReteNetwork
from .sharing import SharedInputLayer, SharedSubplanLayer


class View:
    """A continuously maintained query result."""

    def __init__(self, engine: "IncrementalEngine", compiled: CompiledQuery, network: ReteNetwork):
        self._engine = engine
        self.compiled = compiled
        self.network = network

    @property
    def columns(self) -> tuple[str, ...]:
        return self.compiled.columns

    def multiset(self) -> dict[tuple, int]:
        """Current contents as a bag (row → multiplicity)."""
        return self.network.production.multiset()

    def rows(self) -> list[tuple]:
        """Current contents, expanded and canonically ordered."""
        return self.result_table().rows()

    def result_table(self) -> ResultTable:
        rows = [
            row
            for row, multiplicity in self.network.production.multiset().items()
            for _ in range(multiplicity)
        ]
        return ResultTable(
            self.compiled.plan.schema, rows, graph=self._engine.graph
        )

    def on_change(self, callback: Callable[[Delta], None]) -> None:
        """Invoke *callback* with the net output delta of each change."""
        self.network.production.on_change(callback)

    def detach(self) -> None:
        """Stop maintaining this view."""
        self._engine._detach(self)

    def memory_size(self) -> int:
        return self.network.memory_size()

    def memory_cells(self) -> int:
        return self.network.memory_cells()

    def profile(self) -> str:
        """Per-node delta/row/memory counters for this view's network."""
        return self.network.profile()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"View({self.compiled.text!r}, rows={len(self.network.production.results)})"


class IncrementalEngine:
    """Registers incremental views and feeds them graph events.

    With ``share_inputs=True`` (the default) views share base-relation
    input nodes through a :class:`~repro.rete.sharing.SharedInputLayer`:
    each graph event is translated once per distinct ©/⇑ signature instead
    of once per view.  Set it to ``False`` to give every view a private
    input layer (the ablation baseline of experiment E11).

    With ``share_subplans=True`` (the default; requires ``share_inputs``)
    the layer is a :class:`~repro.rete.sharing.SharedSubplanLayer` and
    sharing extends to whole interior subtrees: overlapping views share
    selections, joins, aggregates — their memories *and* their per-event
    work — keyed by the canonical subplan fingerprint.
    ``share_subplans=False`` keeps input-only sharing as the ablation
    baseline.

    With ``share_across_bindings=True`` (the default; requires
    ``share_subplans``) sharing additionally crosses *parameter bindings*:
    the same parameterised query registered once per user shares one
    binding-free core (plans are registered with parameter-dependent
    selections lifted back above it) topped by a single value-indexed σ
    node with one output partition per live binding.
    ``share_across_bindings=False`` keeps the exact-binding cache keys —
    and the pushed-down plans — as the ablation baseline.
    """

    def __init__(
        self,
        graph: PropertyGraph,
        transitive_mode: str = "trails",
        share_inputs: bool = True,
        batch_transactions: bool = False,
        route_events: bool = True,
        share_subplans: bool = True,
        detached_cache_size: int = 4,
        share_across_bindings: bool = True,
        columnar_deltas: bool = True,
        columnar_memories: bool = True,
        collect_metrics: bool = False,
        trace_batches: bool = False,
    ):
        self.graph = graph
        self.transitive_mode = transitive_mode
        self.route_events = route_events
        #: batched deltas travel the networks in columnar form, and the two
        #: value-level refinements (constant pushdown into input nodes and
        #: composite binding discriminants) are enabled; ``False`` is the
        #: exact row-at-a-time ablation baseline
        self.columnar_deltas = columnar_deltas
        #: node memories use :class:`~repro.rete.deltas.ColumnStore` column
        #: storage in the join layer, and transition-sensitive nodes intern
        #: their dict-key rows through one engine-wide
        #: :class:`~repro.rete.deltas.RowInterner`; ``False`` restores the
        #: exact PR 1–9 row-dict memory layout (ablation)
        self.columnar_memories = columnar_memories
        self.interner = RowInterner() if columnar_memories else None
        if share_inputs:
            if share_subplans:
                self.input_layer: SharedInputLayer | None = SharedSubplanLayer(
                    graph,
                    route_events=route_events,
                    detached_cache_size=detached_cache_size,
                    share_across_bindings=share_across_bindings,
                    columnar_deltas=columnar_deltas,
                )
            else:
                self.input_layer = SharedInputLayer(
                    graph,
                    route_events=route_events,
                    columnar_deltas=columnar_deltas,
                )
        else:
            self.input_layer = None
        self._views: list[View] = []
        # views whose networks own private input nodes (share_inputs=False);
        # with a shared layer per-view dispatch would be a guaranteed no-op
        self._private_views: list[View] = []
        # view-lifecycle observers (the view-answering catalog), called with
        # ("register" | "detach", view) after the engine state is consistent
        self._view_listeners: list[Callable[[str, View], None]] = []
        self._subscribed = False
        self.batch_transactions = batch_transactions
        #: metrics bundle, or ``None`` — every instrumentation site guards
        #: on this, so ``collect_metrics=False`` runs the uninstrumented
        #: maintenance path (pinned by the differential oracle in
        #: ``tests/obs``)
        self.collect_metrics = collect_metrics
        self.metrics: EngineMetrics | None = None
        if collect_metrics:
            self.metrics = EngineMetrics()
            self.metrics.registry.add_collector(self._collect_gauges)
        #: record each propagation as a span tree; the latest finished
        #: tree is retained as :attr:`last_trace`
        self.trace_batches = trace_batches
        self.last_trace: tracing.Span | None = None
        self._accumulator: BatchAccumulator | None = None
        self._batch_depth = 0
        self._dispatch_depth = 0
        if batch_transactions:
            graph.subscribe_transactions(self._on_transaction)

    def register(
        self,
        query: str | CompiledQuery,
        parameters: Mapping[str, Any] | None = None,
    ) -> View:
        """Compile (if needed) and register *query* as an incremental view.

        Raises :class:`~repro.errors.UnsupportedForIncrementalError` for
        queries outside the paper's maintainable fragment (ORDER BY / SKIP /
        LIMIT / top-k).
        """
        compiled = compile_query(query) if isinstance(query, str) else query
        compiled.require_incremental()
        # A view joining mid-batch must not replay buffered changes that its
        # initial population (which reads the live graph) already contains:
        # flush the pending window to the existing views first.
        if self._accumulator is not None and self._accumulator:
            self._flush_pending()
        plan = compiled.plan
        if (
            isinstance(self.input_layer, SharedSubplanLayer)
            and self.input_layer.share_across_bindings
        ):
            # Hoist parameter-dependent σ conjuncts above their binding-free
            # cores: the builder can then cut the σ over to one
            # binding-indexed node shared by every binding, instead of a
            # per-binding private chain all the way down (see
            # compiler.optimizer.lift_parameter_selections).
            plan = lifted_plan(compiled)
        network = ReteNetwork(
            self.graph,
            plan,
            parameters=parameters,
            transitive_mode=self.transitive_mode,
            input_layer=self.input_layer,
            route_events=self.route_events,
            columnar_deltas=self.columnar_deltas,
            columnar_memories=self.columnar_memories,
            interner=self.interner,
        )
        network.populate()
        view = View(self, compiled, network)
        self._views.append(view)
        if network.has_private_inputs:
            self._private_views.append(view)
        if not self._subscribed:
            self.graph.subscribe(self._on_event)
            self._subscribed = True
        for listener in self._view_listeners:
            listener("register", view)
        return view

    def subscribe_views(self, listener: Callable[[str, "View"], None]) -> None:
        """Observe view lifecycle: called with ("register"|"detach", view)."""
        self._view_listeners.append(listener)

    def _on_event(self, event: ev.GraphEvent) -> None:
        if self._accumulator is not None:
            self._accumulator.record(event)
            return
        metrics = self.metrics
        tracer = None
        if self.trace_batches and tracing.ACTIVE is None:
            # one tracer per outermost dispatch; events raised by callbacks
            # mid-propagation nest into the active tree via Node.emit
            tracer = tracing.BatchTracer("event", type(event).__name__)
            tracing.ACTIVE = tracer
        start = perf_counter() if metrics is not None else 0.0
        # Mid-propagation, some networks have seen the delta and some have
        # not; on_change callbacks run inside this window and must not be
        # served half-updated maintained state (see pending_changes).
        self._dispatch_depth += 1
        try:
            if self.input_layer is not None:
                self.input_layer.dispatch(event)
            for view in self._private_views:
                view.network.dispatch(event)
        finally:
            self._dispatch_depth -= 1
            if metrics is not None:
                metrics.events.inc()
                metrics.event_seconds.observe(perf_counter() - start)
            if tracer is not None:
                tracing.ACTIVE = None
                self.last_trace = tracer.finish()

    # -- batched propagation --------------------------------------------------

    def batch(self) -> "BatchScope":
        """A re-entrant scope that defers propagation until exit.

        All elementary events raised inside the scope are coalesced and
        propagated as one net delta per input signature when the outermost
        scope exits (even on exception — the mutations are already in the
        graph, so the views must catch up).
        """
        return BatchScope(self)

    @property
    def in_batch(self) -> bool:
        return self._batch_depth > 0

    def _begin_batch(self) -> None:
        self._batch_depth += 1
        if self._batch_depth == 1:
            self._accumulator = BatchAccumulator(self.graph)

    def _end_batch(self) -> None:
        if self._batch_depth == 0:
            raise TransactionError("no batch is open")
        self._batch_depth -= 1
        if self._batch_depth == 0:
            accumulator, self._accumulator = self._accumulator, None
            if accumulator is not None and accumulator:
                self._run_batch(accumulator)

    def _flush_pending(self) -> None:
        """Flush the open window mid-batch (see :meth:`register`)."""
        accumulator = self._accumulator
        self._accumulator = BatchAccumulator(self.graph)
        self._run_batch(accumulator)

    def _run_batch(self, accumulator: BatchAccumulator) -> None:
        """Coalesce and propagate one window, instrumented when asked.

        With metrics and tracing both off this is exactly
        ``_propagate_batch(accumulator.consolidate())``.
        """
        metrics = self.metrics
        if metrics is None and not self.trace_batches:
            self._propagate_batch(accumulator.consolidate())
            return
        raw_events = len(accumulator)
        tracer = None
        if self.trace_batches and tracing.ACTIVE is None:
            tracer = tracing.BatchTracer("batch", f"raw_events={raw_events}")
            tracing.ACTIVE = tracer
        batch_start = perf_counter()
        try:
            if tracer is not None:
                tracer.enter("coalesce", f"raw_events={raw_events}", raw_events)
            start = perf_counter()
            changes = accumulator.consolidate()
            coalesce_seconds = perf_counter() - start
            if tracer is not None:
                tracer.exit()
            net_records = len(changes.vertex_events) + len(changes.edge_events)
            try:
                self._propagate_batch(changes, tracer)
            finally:
                if metrics is not None:
                    metrics.batches.inc()
                    metrics.batch_raw_events.inc(raw_events)
                    metrics.batch_net_records.inc(net_records)
                    metrics.coalesce_seconds.observe(coalesce_seconds)
                    metrics.batch_seconds.observe(perf_counter() - batch_start)
        finally:
            if tracer is not None:
                tracing.ACTIVE = None
                self.last_trace = tracer.finish()

    def _propagate_batch(self, changes, tracer=None) -> None:
        if not changes:
            return
        metrics = self.metrics
        net_records = len(changes.vertex_events) + len(changes.edge_events)
        productions = [view.network.production for view in self._views]
        for production in productions:
            production.begin_batch()
        if tracer is not None:
            tracer.enter("dispatch", f"net_records={net_records}", net_records)
        start = perf_counter() if metrics is not None else 0.0
        try:
            if self.input_layer is not None:
                self.input_layer.dispatch_batch(changes)
            for view in self._private_views:
                view.network.dispatch_batch(changes)
        finally:
            if metrics is not None:
                metrics.dispatch_seconds.observe(perf_counter() - start)
            if tracer is not None:
                tracer.exit()
                tracer.enter("merge", f"productions={len(productions)}")
            start = perf_counter() if metrics is not None else 0.0
            # callbacks fire here, outside the dispatch loops; writes they
            # issue land in the fresh accumulator (or per-event when none).
            # One raising callback must not strand the other productions in
            # batch mode, so every end_batch runs before the first error
            # resurfaces.
            error: BaseException | None = None
            for production in productions:
                try:
                    production.end_batch()
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    if error is None:
                        error = exc
            if metrics is not None:
                metrics.merge_seconds.observe(perf_counter() - start)
            if tracer is not None:
                tracer.exit()
            if error is not None:
                raise error

    def _on_transaction(self, phase: str) -> None:
        if phase == "begin":
            self._begin_batch()
        elif self._batch_depth > 0:
            # commit or rollback (compensation already applied)
            self._end_batch()
        # else: the transaction predates this engine's subscription (it was
        # constructed mid-transaction) — there is no matching batch to close

    def _detach(self, view: View) -> None:
        self._views.remove(view)
        if view in self._private_views:
            self._private_views.remove(view)
        view.network.disconnect_shared()
        if self.input_layer is not None:
            self.input_layer.prune()
        for listener in self._view_listeners:
            listener("detach", view)

    def pending_changes(self) -> bool:
        """Whether view contents may lag the graph right now.

        True inside any open batch/transaction window — buffered events
        have mutated the graph but not yet reached the networks — and
        while an event is mid-propagation (an ``on_change`` callback
        evaluating a query must not read sibling views that have not seen
        the delta yet); maintained state must not serve snapshot reads
        until both have settled.
        """
        return (
            self._batch_depth > 0
            or self._dispatch_depth > 0
            or (self._accumulator is not None and bool(self._accumulator))
        )

    @property
    def views(self) -> tuple[View, ...]:
        return tuple(self._views)

    # -- engine-wide metrics ---------------------------------------------------

    def memory_size(self) -> int:
        """Total memory entries across all views, shared nodes counted once."""
        layer = self.input_layer.memory_size() if self.input_layer else 0
        return layer + sum(
            view.network.private_memory_size() for view in self._views
        )

    def memory_cells(self) -> int:
        """Total stored tuple fields, shared nodes counted once."""
        layer = self.input_layer.memory_cells() if self.input_layer else 0
        return layer + sum(
            view.network.private_memory_cells() for view in self._views
        )

    # -- observability ---------------------------------------------------------

    def _live_nodes(self) -> list:
        """Every live node, shared counted once (layer first, then private)."""
        seen: set[int] = set()
        nodes = []
        if self.input_layer is not None:
            for node in self.input_layer.shared_nodes():
                if id(node) not in seen:
                    seen.add(id(node))
                    nodes.append(node)
        for view in self._views:
            for node in view.network.all_nodes:
                if id(node) not in seen:
                    seen.add(id(node))
                    nodes.append(node)
        return nodes

    def _collect_gauges(self) -> None:
        """Snapshot-time collector: sample always-on counters into gauges.

        Registered only under ``collect_metrics=True`` and run by
        :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, never on the
        maintenance hot path — the node/router/sharing counters it reads
        are the cheap integers those subsystems maintain regardless.
        """
        gauge = self.metrics.registry.gauge
        nodes = self._live_nodes()
        gauge("repro_views_live", "Registered incremental views").set(
            len(self._views)
        )
        gauge("repro_nodes_live", "Live Rete nodes, shared counted once").set(
            len(nodes)
        )
        for attribute, name, help in (
            ("emitted_deltas", "repro_node_emitted_deltas", "Deltas emitted across live nodes"),
            ("emitted_rows", "repro_node_emitted_rows", "Rows emitted across live nodes"),
            ("applied_deltas", "repro_node_applied_deltas", "Delta applications across live nodes"),
            ("applied_rows", "repro_node_applied_rows", "Rows applied across live nodes"),
            ("columnar_batches", "repro_node_columnar_batches", "Columnar batches applied across live nodes"),
            ("columnar_rows", "repro_node_columnar_rows", "Rows applied in columnar form across live nodes"),
        ):
            gauge(name, help).set(
                sum(getattr(node, attribute) for node in nodes)
            )
        gauge("repro_memory_entries", "Stored memory entries, shared counted once").set(
            self.memory_size()
        )
        gauge("repro_memory_cells", "Stored tuple fields, shared counted once").set(
            self.memory_cells()
        )
        if self.interner is not None:
            gauge(
                "repro_interned_rows",
                "Distinct row tuples held by the engine intern pool",
            ).set(len(self.interner))
        routers = []
        if self.input_layer is not None and self.input_layer.router is not None:
            routers.append(self.input_layer.router)
        for view in self._private_views:
            if view.network.router is not None:
                routers.append(view.network.router)
        for attribute, name, help in (
            ("events_routed", "repro_router_events_routed", "Events dispatched through interest routers"),
            ("batches_routed", "repro_router_batches_routed", "Consolidated batches dispatched through routers"),
            ("candidates_visited", "repro_router_candidates_visited", "Input nodes offered a routed event or batch"),
            ("union_hits", "repro_router_union_cache_hits", "Router candidate-union cache hits"),
            ("union_misses", "repro_router_union_cache_misses", "Router candidate-union cache misses"),
        ):
            gauge(name, help).set(
                sum(getattr(router, attribute) for router in routers)
            )
        layer = self.input_layer
        if layer is None:
            return
        stats = layer.stats
        for value, name, help in (
            (stats.requests, "repro_sharing_input_requests", "Input-node requests across all views"),
            (stats.nodes, "repro_sharing_input_nodes", "Distinct input nodes ever created"),
            (stats.subplan_requests, "repro_sharing_subplan_requests", "Subplan cache probes"),
            (stats.subplan_hits, "repro_sharing_subplan_hits", "Subplan cache hits"),
            (stats.acquires, "repro_sharing_acquires", "Subplan refcount acquires"),
            (stats.releases, "repro_sharing_releases", "Subplan refcount releases"),
            (stats.pruned, "repro_sharing_pruned", "Shared nodes genuinely dropped by prune"),
            (stats.detached_retained, "repro_sharing_detached_retained", "Dead subplan roots retained in the LRU"),
            (stats.detached_revived, "repro_sharing_detached_revived", "Retained subplans revived by a later view"),
            (stats.detached_evicted, "repro_sharing_detached_evicted", "Retained subplans evicted on LRU overflow"),
        ):
            gauge(name, help).set(value)
        if isinstance(layer, SharedSubplanLayer):
            gauge("repro_sharing_subplans_live", "Live cached subplan entries").set(
                layer.subplan_count
            )
            gauge("repro_sharing_detached_live", "Dead-but-retained subplan roots").set(
                layer.detached_count
            )
            gauge("repro_sharing_binding_nodes", "Live binding-indexed selection nodes").set(
                layer.binding_node_count
            )
            gauge("repro_sharing_binding_partitions", "Live binding partitions").set(
                layer.binding_partition_count
            )

    def metrics_snapshot(self) -> dict | None:
        """JSON-ready metrics snapshot, or ``None`` with collection off."""
        if self.metrics is None:
            return None
        return self.metrics.registry.snapshot()

    def view_costs(self) -> dict:
        """Maintenance cost attributed to each registered view.

        The cost unit is *row-work*: ``applied_rows + emitted_rows`` per
        node — the rows a node consumed plus the rows it pushed
        downstream, counted by the always-on traffic counters (so this
        works with ``collect_metrics`` off and never touches the hot
        path).  A shared node's cost is split evenly across the views
        that currently read it; work done by nodes no view reads any more
        (detached-LRU residents and their upstream chains) lands in the
        ``unattributed`` bucket.  The per-view shares plus that bucket sum
        to ``total`` exactly, up to float rounding.
        """
        readers: dict[int, int] = {}
        for view in self._views:
            for node in view.network._shared_nodes.values():
                readers[id(node)] = readers.get(id(node), 0) + 1
        views = []
        attributed = 0.0
        for index, view in enumerate(self._views):
            cost = float(
                sum(
                    node.applied_rows + node.emitted_rows
                    for node in view.network.all_nodes
                )
            )
            shared = 0.0
            for node in view.network._shared_nodes.values():
                shared += (
                    node.applied_rows + node.emitted_rows
                ) / readers[id(node)]
            cost += shared
            attributed += cost
            views.append(
                {
                    "view": index,
                    "query": view.compiled.text,
                    "cost": cost,
                    "shared_cost": shared,
                }
            )
        total = float(
            sum(
                node.applied_rows + node.emitted_rows
                for node in self._live_nodes()
            )
        )
        return {
            "unit": "row-work (applied_rows + emitted_rows)",
            "views": views,
            "unattributed": total - attributed,
            "total": total,
        }


class BatchScope:
    """Context manager returned by :meth:`IncrementalEngine.batch`."""

    __slots__ = ("_engine",)

    def __init__(self, engine: IncrementalEngine):
        self._engine = engine

    def __enter__(self) -> "BatchScope":
        self._engine._begin_batch()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._engine._end_batch()
        return False
