"""The incremental query engine: registered views over a live graph.

:class:`IncrementalEngine` owns one graph subscription and any number of
registered views; every elementary graph change propagates synchronously
through each view's Rete network, so ``View.rows()`` is always consistent
with the current graph — the paper's IVM property.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ..compiler.pipeline import CompiledQuery, compile_query
from ..eval.results import ResultTable
from ..graph import events as ev
from ..graph.graph import PropertyGraph
from .deltas import Delta
from .network import ReteNetwork
from .sharing import SharedInputLayer


class View:
    """A continuously maintained query result."""

    def __init__(self, engine: "IncrementalEngine", compiled: CompiledQuery, network: ReteNetwork):
        self._engine = engine
        self.compiled = compiled
        self.network = network

    @property
    def columns(self) -> tuple[str, ...]:
        return self.compiled.columns

    def multiset(self) -> dict[tuple, int]:
        """Current contents as a bag (row → multiplicity)."""
        return self.network.production.multiset()

    def rows(self) -> list[tuple]:
        """Current contents, expanded and canonically ordered."""
        return self.result_table().rows()

    def result_table(self) -> ResultTable:
        rows = [
            row
            for row, multiplicity in self.network.production.multiset().items()
            for _ in range(multiplicity)
        ]
        return ResultTable(
            self.compiled.plan.schema, rows, graph=self._engine.graph
        )

    def on_change(self, callback: Callable[[Delta], None]) -> None:
        """Invoke *callback* with the net output delta of each change."""
        self.network.production.on_change(callback)

    def detach(self) -> None:
        """Stop maintaining this view."""
        self._engine._detach(self)

    def memory_size(self) -> int:
        return self.network.memory_size()

    def profile(self) -> str:
        """Per-node delta/row/memory counters for this view's network."""
        return self.network.profile()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"View({self.compiled.text!r}, rows={len(self.network.production.results)})"


class IncrementalEngine:
    """Registers incremental views and feeds them graph events.

    With ``share_inputs=True`` (the default) views share base-relation
    input nodes through a :class:`~repro.rete.sharing.SharedInputLayer`:
    each graph event is translated once per distinct ©/⇑ signature instead
    of once per view.  Set it to ``False`` to give every view a private
    input layer (the ablation baseline of experiment E11).
    """

    def __init__(
        self,
        graph: PropertyGraph,
        transitive_mode: str = "trails",
        share_inputs: bool = True,
    ):
        self.graph = graph
        self.transitive_mode = transitive_mode
        self.input_layer = SharedInputLayer(graph) if share_inputs else None
        self._views: list[View] = []
        self._subscribed = False

    def register(
        self,
        query: str | CompiledQuery,
        parameters: Mapping[str, Any] | None = None,
    ) -> View:
        """Compile (if needed) and register *query* as an incremental view.

        Raises :class:`~repro.errors.UnsupportedForIncrementalError` for
        queries outside the paper's maintainable fragment (ORDER BY / SKIP /
        LIMIT / top-k).
        """
        compiled = compile_query(query) if isinstance(query, str) else query
        compiled.require_incremental()
        network = ReteNetwork(
            self.graph,
            compiled.plan,
            parameters=parameters,
            transitive_mode=self.transitive_mode,
            input_layer=self.input_layer,
        )
        network.populate()
        view = View(self, compiled, network)
        self._views.append(view)
        if not self._subscribed:
            self.graph.subscribe(self._on_event)
            self._subscribed = True
        return view

    def _on_event(self, event: ev.GraphEvent) -> None:
        if self.input_layer is not None:
            self.input_layer.dispatch(event)
        for view in self._views:
            view.network.dispatch(event)

    def _detach(self, view: View) -> None:
        self._views.remove(view)
        view.network.disconnect_shared()
        if self.input_layer is not None:
            self.input_layer.prune()

    @property
    def views(self) -> tuple[View, ...]:
        return tuple(self._views)
