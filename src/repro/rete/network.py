"""Rete network construction from an FRA plan (paper §4, step 4).

``ReteNetwork`` translates each FRA operator into its incremental node:

=================  =========================================
FRA operator       Rete node
=================  =========================================
© get-vertices     :class:`~.nodes.input.VertexInputNode`
⇑ get-edges        :class:`~.nodes.input.EdgeInputNode`
σ select           :class:`~.nodes.unary.SelectionNode`
π project          :class:`~.nodes.unary.ProjectionNode`
δ dedup            :class:`~.nodes.unary.DedupNode`
ω unwind           :class:`~.nodes.unary.UnwindNode`
γ aggregate        :class:`~.nodes.aggregate.AggregateNode`
⋈ join             :class:`~.nodes.join.JoinNode`
▷ antijoin         :class:`~.nodes.join.AntiJoinNode`
⟕ left outer join  :class:`~.nodes.join.LeftOuterJoinNode`
∪ union            :class:`~.nodes.join.UnionNode`
⋈* transitive      :class:`~.nodes.transitive.TransitiveClosureNode`
=================  =========================================

Node sharing happens at three scopes:

* **within one network** identical base relations share an input node
  (classic Rete sharing; tuple layout depends only on labels/types and
  pushed projections, never on variable names);
* **across views, inputs** — with a :class:`~.sharing.SharedInputLayer`
  the ©/⇑/unit leaves come from an engine-owned cache;
* **across views, subplans** — with a
  :class:`~.sharing.SharedSubplanLayer` *any* interior subtree whose
  canonical fingerprint matches a live cached node is cut over to that
  node, so overlapping views share join memories and per-event work;
* **across bindings** — a parameterised σ over a binding-free core is cut
  over at its *generalised* fingerprint (parameter names and bindings
  abstracted away) to one binding-indexed node shared by every binding,
  this view subscribing below its own binding's partition.

The builder classifies every subscription edge it creates:

* *replay* edges (from an already-populated shared node into a node built
  here) receive the upstream's current state during :meth:`populate` —
  targeted activation, applied only to this network's edges;
* *detach* edges (from a layer-owned node into a private node of this
  network) are the ones removed again by :meth:`disconnect_shared`;
* structural edges between two layer-owned nodes belong to the sharing
  layer and live exactly as long as their downstream subplan does.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..algebra import ops
from ..algebra.expressions import EvalContext, compile_expr
from ..algebra.fra import check_incremental_fragment, validate_fra
from ..compiler.fingerprint import generalized_fingerprint
from ..compiler.optimizer import split_conjuncts
from ..cypher import ast
from ..errors import CompilerError
from ..graph import events as ev
from ..graph.graph import PropertyGraph
from .nodes.aggregate import AggregateNode
from .nodes.base import LEFT, RIGHT, Node
from .nodes.input import EdgeInputNode, UnitNode, VertexInputNode
from .nodes.join import AntiJoinNode, JoinNode, LeftOuterJoinNode, UnionNode
from .nodes.production import ProductionNode
from .nodes.transitive import EDGES, ReachabilityNode, TransitiveClosureNode
from .nodes.unary import (
    _INDEXABLE_ATOMS as _VALUE_ATOMS,
    BindingIndexedSelectionNode,
    DedupNode,
    ProjectionNode,
    SelectionNode,
    UnwindNode,
)
from .router import EventRouter
from .sharing import SharedInputLayer, SharedSubplanLayer


class ReteNetwork:
    """A built network: input nodes, production node, and statistics."""

    def __init__(
        self,
        graph: PropertyGraph,
        plan: ops.Operator,
        parameters: Mapping[str, Any] | None = None,
        transitive_mode: str = "trails",
        input_layer: "SharedInputLayer | None" = None,
        route_events: bool = True,
        columnar_deltas: bool = True,
        columnar_memories: bool = True,
        interner=None,
    ):
        validate_fra(plan)
        check_incremental_fragment(plan)
        if transitive_mode not in ("trails", "reachability"):
            raise CompilerError(f"unknown transitive mode {transitive_mode!r}")
        self.graph = graph
        self.plan = plan
        self.ctx = EvalContext(dict(parameters or {}))
        self.transitive_mode = transitive_mode
        self.input_layer = input_layer
        #: batch translations travel as ColumnDelta; also enables the two
        #: value-level refinements that only pay off at batch granularity
        #: (constant pushdown into input nodes / router value buckets, and
        #: composite discriminants on the binding-indexed σ tier) — False
        #: reproduces the row-at-a-time path exactly (ablation)
        self.columnar_deltas = columnar_deltas
        #: node memories live in :class:`~repro.rete.deltas.ColumnStore`
        #: column storage (join layer) and transition-sensitive nodes
        #: intern their dict-key rows through *interner*; ``False`` is the
        #: exact row-dict memory layout (ablation)
        self.columnar_memories = columnar_memories
        self.interner = interner if columnar_memories else None
        self.subplan_layer: SharedSubplanLayer | None = (
            input_layer if isinstance(input_layer, SharedSubplanLayer) else None
        )
        self.vertex_inputs: list[VertexInputNode] = []
        self.edge_inputs: list[EdgeInputNode] = []
        self.unit_inputs: list[UnitNode] = []
        self.aggregates: list[AggregateNode] = []
        self.all_nodes: list[Node] = []
        self._vertex_cache: dict[tuple, VertexInputNode] = {}
        self._edge_cache: dict[tuple, EdgeInputNode] = {}
        # layer-owned nodes this network reads (inputs and shared subplans),
        # in first-use order; fresh-this-build shared nodes are additionally
        # tracked so replay never double-feeds a node that is populated by
        # propagation from its own upstreams
        self._shared_nodes: dict[int, Node] = {}
        self._fresh_shared: set[int] = set()
        self._acquired_keys: list[tuple] = []
        self._replay_edges: list[tuple[Node, Node, int]] = []
        self._detach_edges: list[tuple[Node, Node, int]] = []

        root = self._build(plan)
        self.production = ProductionNode(plan.schema, interner=self.interner)
        self.all_nodes.append(self.production)
        self._connect(root, self.production, LEFT)
        # Private input layers get their own interest router; with a shared
        # layer this network owns no input nodes and routing lives there.
        self.router: EventRouter | None = None
        if route_events and (self.vertex_inputs or self.edge_inputs):
            self.router = EventRouter(graph)
            for node in self.vertex_inputs:
                self.router.register_vertex_node(node)
            for edge_node in self.edge_inputs:
                self.router.register_edge_node(edge_node)
        # The frontier between the sharing layers and this network, frozen:
        # exactly the edges disconnect_shared() must remove on detach.
        self.shared_edges: tuple[tuple[Node, Node, int], ...] = tuple(
            self._detach_edges
        )

    # -- construction -----------------------------------------------------

    def _register(self, node: Node) -> Node:
        self.all_nodes.append(node)
        return node

    def _use_shared(self, node: Node) -> Node:
        self._shared_nodes.setdefault(id(node), node)
        return node

    def _connect(self, upstream: Node, node: Node, side: int) -> None:
        """Subscribe and classify one dataflow edge (see module docstring)."""
        upstream.subscribe(node, side)
        if id(upstream) not in self._shared_nodes:
            return  # private upstream: lives and dies with this network
        if id(node) not in self._shared_nodes:
            self._detach_edges.append((upstream, node, side))
        if id(upstream) not in self._fresh_shared:
            # input nodes are never in _fresh_shared: their "state" is the
            # graph itself, so even a node the layer just created replays
            self._replay_edges.append((upstream, node, side))

    def _build(self, op: ops.Operator) -> Node:
        if isinstance(op, ops.Unit):
            if self.input_layer is not None:
                return self._use_shared(self.input_layer.unit_node(op.schema))
            node = UnitNode(op.schema)
            self.unit_inputs.append(node)
            return self._register(node)

        if isinstance(op, ops.GetVertices):
            return self._vertex_input(op)

        if isinstance(op, ops.GetEdges):
            if self.input_layer is not None:
                return self._use_shared(self.input_layer.edge_node(op))
            key = (
                op.types,
                op.src_labels,
                op.tgt_labels,
                op.directed,
                op.projection_roles(),
            )
            cached = self._edge_cache.get(key)
            if cached is not None:
                return cached
            node = EdgeInputNode(op, self.graph, columnar=self.columnar_deltas)
            self._edge_cache[key] = node
            self.edge_inputs.append(node)
            return self._register(node)

        layer = self.subplan_layer
        if layer is not None:
            partition = self._build_binding_partition(op, layer)
            if partition is not None:
                return partition
        key = (
            layer.subplan_key(op, self.ctx.parameters, (self.transitive_mode,))
            if layer is not None
            else None
        )
        if key is not None:
            cached = layer.subplan_lookup(key)
            if cached is not None:
                layer.acquire(key)
                self._acquired_keys.append(key)
                return self._use_shared(cached)
        node, edges = self._make_node(op)
        if key is not None:
            layer.subplan_adopt(key, node, tuple(edges))
            layer.acquire(key)
            self._acquired_keys.append(key)
            self._use_shared(node)
            self._fresh_shared.add(id(node))
        else:
            self._register(node)
        for upstream, side in edges:
            self._connect(upstream, node, side)
        return node

    def _vertex_input(
        self, op: ops.GetVertices, value_filters: tuple = ()
    ) -> Node:
        """The (possibly value-filtered) © input node for *op*."""
        if self.input_layer is not None:
            return self._use_shared(
                self.input_layer.vertex_node(op, value_filters)
            )
        key = (op.labels, op.projections, value_filters)
        cached = self._vertex_cache.get(key)
        if cached is not None:
            return cached
        node = VertexInputNode(
            op,
            self.graph,
            value_filters=value_filters,
            columnar=self.columnar_deltas,
        )
        self._vertex_cache[key] = node
        self.vertex_inputs.append(node)
        return self._register(node)

    def _constant_conjuncts(
        self, op: ops.Select
    ) -> list[tuple[int, ast.Expression, Any]]:
        """``(column, value expr, frozen atom)`` per constant equality conjunct.

        A conjunct qualifies when it is ``<column variable> = <literal
        atom>`` (either order) over the child schema.  Disabled along with
        ``columnar_deltas`` so the ablation reproduces the plain σ path.
        """
        if not self.columnar_deltas:
            return []
        child_schema = op.children[0].schema
        found: list[tuple[int, ast.Expression, Any]] = []
        for conjunct in split_conjuncts(op.predicate):
            if not (
                isinstance(conjunct, ast.Comparison) and conjunct.ops == ("=",)
            ):
                continue
            for var_side, const_side in (
                conjunct.operands,
                conjunct.operands[::-1],
            ):
                if (
                    isinstance(var_side, ast.Variable)
                    and isinstance(const_side, ast.Literal)
                    and isinstance(const_side.value, _VALUE_ATOMS)
                    and var_side.name in child_schema.names
                ):
                    found.append(
                        (
                            child_schema.index_of(var_side.name),
                            var_side,
                            const_side.value,
                        )
                    )
                    break
        return found

    def _vertex_value_filters(
        self,
        op: ops.Select,
        conjuncts: list[tuple[int, ast.Expression, Any]],
    ) -> tuple[tuple[int, str, Any], ...]:
        """Constant filters pushable into the © node below this σ.

        Only columns backed by a pushed ``property`` projection qualify
        (column 0 is the vertex id; ``labels()``/``properties()`` columns
        carry collection values the value index cannot bucket), and only
        when the predicate is parameter-free — parameterised σ belongs to
        the binding tier, whose sharing keys must not fork per constant.
        """
        child = op.children[0]
        if not isinstance(child, ops.GetVertices) or not conjuncts:
            return ()
        if any(
            isinstance(node, ast.Parameter) for node in ast.walk(op.predicate)
        ):
            return ()
        filters = []
        for column, _, value in conjuncts:
            if column == 0:
                continue
            projection = child.projections[column - 1]
            if projection.kind != "property":
                continue
            filters.append((column, projection.key, value))
        return tuple(filters)

    def _build_binding_partition(
        self, op: ops.Operator, layer: SharedSubplanLayer
    ) -> Node | None:
        """Cut a parameterised σ over to the binding-indexed tier.

        Returns the partition facade this view subscribes below, or
        ``None`` when *op* is not an eligible parameterised selection (the
        resolved exact-binding tier then proceeds as before).  Three
        cases:

        * the partition for this binding already exists (live or retained
          in the detached LRU) — an ordinary shared hit; the generic
          replay machinery feeds its current state to this view's nodes;
        * the node exists but this binding is new — the partition is
          created on the live node; it is *not* marked fresh, so populate
          replays the shared core's state through the partition's
          ``transform`` onto exactly this network's edges;
        * nothing exists — the binding-free core is built (sharing as
          usual), topped with a fresh binding-indexed node carrying the
          first partition; both are fresh, so population flows through
          the core's replay/activation.
        """
        variant = (self.transitive_mode,)
        pkey = layer.partition_key(op, self.ctx.parameters, variant)
        if pkey is None:
            return None
        facade = layer.subplan_lookup(pkey)
        if facade is not None:
            layer.acquire(pkey)
            self._acquired_keys.append(pkey)
            return self._use_shared(facade)
        node = layer.param_node(pkey)
        fresh_node = node is None
        if fresh_node:
            # first binding of this σ shape anywhere: build the binding-free
            # core (sharing as usual) and top it with the indexed node
            child_node = self._build(op.children[0])
            node = BindingIndexedSelectionNode(
                op.schema,
                compile_expr(op.predicate, op.children[0].schema),
                generalized_fingerprint(op).param_order,
                discriminants=self._equality_discriminants(op),
            )
            layer.param_adopt(pkey, node, child_node, LEFT)
            self._use_shared(node)
            self._fresh_shared.add(id(node))
            self._connect(child_node, node, LEFT)
        # an existing node already owns its core (alpha-equivalent to this
        # plan's child, possibly under different variable names), and its
        # subscription keeps that whole chain alive — nothing to rebuild
        facade = layer.partition_adopt(pkey, op, self.ctx.parameters)
        layer.acquire(pkey)
        self._acquired_keys.append(pkey)
        self._use_shared(facade)
        if fresh_node:
            self._fresh_shared.add(id(facade))
        return facade

    def _equality_discriminants(self, op: ops.Operator):
        """``(param position, compiled expr, column)`` index components.

        Looks for top-level ``expr = $param`` conjuncts whose non-param
        side mentions no parameter: the binding-indexed node then routes
        each row by evaluating those sides once (a single *composite*
        probe for ``a.x = $p AND a.y = $q``) instead of evaluating the
        predicate once per live binding.  The third component is the
        child-schema column index when the expr is a bare column variable
        (``None`` otherwise) — the columnar path extracts such composite
        keys with one transpose.  With ``columnar_deltas=False`` the list
        is truncated to its first component, reproducing the
        single-discriminant index exactly.
        """
        param_order = generalized_fingerprint(op).param_order
        child_schema = op.children[0].schema
        found: list[tuple[int, Any, int | None]] = []
        for conjunct in split_conjuncts(op.predicate):
            if not (
                isinstance(conjunct, ast.Comparison) and conjunct.ops == ("=",)
            ):
                continue
            for param_side, value_side in (
                conjunct.operands,
                conjunct.operands[::-1],
            ):
                if (
                    isinstance(param_side, ast.Parameter)
                    and param_side.name in param_order
                    and not any(
                        isinstance(node, ast.Parameter)
                        for node in ast.walk(value_side)
                    )
                ):
                    column = (
                        child_schema.index_of(value_side.name)
                        if isinstance(value_side, ast.Variable)
                        and value_side.name in child_schema.names
                        else None
                    )
                    found.append(
                        (
                            param_order.index(param_side.name),
                            compile_expr(value_side, child_schema),
                            column,
                        )
                    )
                    break
        if not found:
            return None
        if not self.columnar_deltas:
            return (found[0],)
        return tuple(found)

    def _make_node(
        self, op: ops.Operator
    ) -> tuple[Node, list[tuple[Node, int]]]:
        """Build the node for *op* plus its (not yet subscribed) upstreams."""
        if isinstance(op, ops.Select):
            conjuncts = self._constant_conjuncts(op)
            value_filters = self._vertex_value_filters(op, conjuncts)
            if value_filters:
                # value pushdown: the σ reads a constant-filtered © node, so
                # the router narrows dispatch by value (the σ still runs the
                # full predicate over every surviving tuple)
                child = self._vertex_input(op.children[0], value_filters)
            else:
                child = self._build(op.children[0])
            node = SelectionNode(
                op.schema,
                compile_expr(op.predicate, op.children[0].schema),
                self.ctx,
                const_filters=tuple(
                    (column, value) for column, _, value in conjuncts
                ),
            )
            return node, [(child, LEFT)]

        if isinstance(op, ops.Project):
            child = self._build(op.children[0])
            items = [
                compile_expr(expr, op.children[0].schema) for _, expr in op.items
            ]
            return ProjectionNode(op.schema, items, self.ctx), [(child, LEFT)]

        if isinstance(op, ops.Dedup):
            child = self._build(op.children[0])
            return DedupNode(op.schema, interner=self.interner), [(child, LEFT)]

        if isinstance(op, ops.Unwind):
            child = self._build(op.children[0])
            node = UnwindNode(
                op.schema,
                compile_expr(op.expression, op.children[0].schema),
                self.ctx,
            )
            return node, [(child, LEFT)]

        if isinstance(op, ops.Aggregate):
            child = self._build(op.children[0])
            child_schema = op.children[0].schema
            node = AggregateNode(
                op.schema,
                [compile_expr(e, child_schema) for _, e in op.keys],
                list(op.aggregates),
                [
                    compile_expr(a.argument, child_schema)
                    if a.argument is not None
                    else None
                    for a in op.aggregates
                ],
                self.ctx,
                interner=self.interner,
            )
            self.aggregates.append(node)
            return node, [(child, LEFT)]

        if isinstance(op, ops.Join):
            left, right = op.children
            left_node = self._build(left)
            right_node = self._build(right)
            node = JoinNode(
                op.schema,
                [left.schema.index_of(n) for n in op.common],
                [right.schema.index_of(n) for n in op.common],
                [
                    i
                    for i, a in enumerate(right.schema)
                    if a.name not in op.common
                ],
                columnar_memories=self.columnar_memories,
            )
            return node, [(left_node, LEFT), (right_node, RIGHT)]

        if isinstance(op, ops.AntiJoin):
            left, right = op.children
            left_node = self._build(left)
            right_node = self._build(right)
            node = AntiJoinNode(
                op.schema,
                [left.schema.index_of(n) for n in op.common],
                [right.schema.index_of(n) for n in op.common],
                columnar_memories=self.columnar_memories,
            )
            return node, [(left_node, LEFT), (right_node, RIGHT)]

        if isinstance(op, ops.LeftOuterJoin):
            left, right = op.children
            left_node = self._build(left)
            right_node = self._build(right)
            extra = [
                i for i, a in enumerate(right.schema) if a.name not in op.common
            ]
            node = LeftOuterJoinNode(
                op.schema,
                [left.schema.index_of(n) for n in op.common],
                [right.schema.index_of(n) for n in op.common],
                extra,
                columnar_memories=self.columnar_memories,
            )
            node.configure_nulls(len(extra))
            return node, [(left_node, LEFT), (right_node, RIGHT)]

        if isinstance(op, ops.Union):
            left_node = self._build(op.children[0])
            right_node = self._build(op.children[1])
            node = UnionNode(op.schema, op.right_permutation)
            return node, [(left_node, LEFT), (right_node, RIGHT)]

        if isinstance(op, ops.TransitiveJoin):
            left = op.children[0]
            left_node = self._build(left)
            edges_node = self._build(op.edges)
            source_index = left.schema.index_of(op.source)
            if (
                self.transitive_mode == "reachability"
                and op.path_alias is None
                and op.min_hops <= 1
                and op.max_hops is None
            ):
                node: Node = ReachabilityNode(
                    op.schema,
                    source_index,
                    op.direction,
                    op.min_hops,
                    interner=self.interner,
                )
            else:
                node = TransitiveClosureNode(
                    op.schema,
                    source_index,
                    op.direction,
                    op.min_hops,
                    op.max_hops,
                    emit_path=op.path_alias is not None,
                    interner=self.interner,
                )
            return node, [(left_node, LEFT), (edges_node, EDGES)]

        raise CompilerError(f"cannot build a Rete node for {type(op).__name__}")

    # -- lifecycle ------------------------------------------------------------

    def populate(self) -> None:
        """Emit base rows and initial scans through the network.

        Order matters: aggregates built here first publish their empty-state
        rows, then this network's private input nodes stream the current
        graph contents as one insertion delta each.

        Shared nodes (cross-view sharing) use *targeted activation*: each
        replay edge applies the upstream's current-state delta only to the
        subscriber built by this network, never re-emitting to other views.
        Input nodes recompute that state from the graph; interior subplans
        reconstruct it from their memories (``state_delta``).  Construction
        and population happen back-to-back inside ``register``, so no graph
        event can slip in between.
        """
        for aggregate in self.aggregates:
            aggregate.initialize()
        for unit in self.unit_inputs:
            unit.activate(self.graph)
        for node in self.vertex_inputs:
            node.activate(self.graph)
        for node in self.edge_inputs:
            node.activate(self.graph)
        if not self._replay_edges:
            return
        deltas: dict[int, Any] = {}
        for node, subscriber, side in self._replay_edges:
            delta = deltas.get(id(node))
            if delta is None:
                delta = node.state_delta()
                if delta is None:
                    delta = self.subplan_layer.state_delta(node)
                deltas[id(node)] = delta
            if delta:
                subscriber.apply(delta, side)

    def disconnect_shared(self) -> None:
        """Detach this network from the sharing layers.

        Removes this network's frontier subscriptions and releases its
        subplan refcounts; the engine then prunes the layer, which cascades
        the release down any shared chains nobody else reads.  This
        network's private nodes die with it, so their interned rows are
        returned to the engine pool here (shared nodes release theirs when
        the layer genuinely drops them).
        """
        for node, subscriber, side in self.shared_edges:
            node.unsubscribe(subscriber, side)
        self.shared_edges = ()
        if self.subplan_layer is not None:
            for key in self._acquired_keys:
                self.subplan_layer.release(key)
            self._acquired_keys = []
        for node in self.all_nodes:
            node.dispose()

    @property
    def has_private_inputs(self) -> bool:
        """Whether this network owns input nodes (no shared layer)."""
        return bool(self.vertex_inputs or self.edge_inputs)

    def dispatch(self, event: ev.GraphEvent) -> None:
        """Route one graph event to the input nodes that may care."""
        if self.router is not None:
            self.router.dispatch(event)
            return
        if isinstance(
            event,
            (ev.VertexAdded, ev.VertexRemoved),
        ):
            for node in self.vertex_inputs:
                node.on_event(event)
        elif isinstance(event, (ev.VertexLabelAdded, ev.VertexLabelRemoved)):
            for node in self.vertex_inputs:
                node.on_event(event)
            for edge_node in self.edge_inputs:
                edge_node.on_event(event)
        elif isinstance(event, ev.VertexPropertySet):
            for node in self.vertex_inputs:
                node.on_event(event)
            for edge_node in self.edge_inputs:
                edge_node.on_event(event)
        elif isinstance(event, (ev.EdgeAdded, ev.EdgeRemoved, ev.EdgePropertySet)):
            for edge_node in self.edge_inputs:
                edge_node.on_event(event)

    def dispatch_batch(self, batch) -> None:
        """Route one consolidated batch to this network's private inputs.

        With a shared input layer the network owns no input nodes and this
        is a no-op — the layer's own ``dispatch_batch`` feeds the shared
        nodes instead.
        """
        if self.router is not None:
            self.router.dispatch_batch(batch)
            return
        for node in self.vertex_inputs:
            node.emit_batch(batch)
        for edge_node in self.edge_inputs:
            edge_node.emit_batch(batch)

    def profile(self) -> str:
        """PROFILE rendering: per-node traffic and memory counters.

        One line per node in construction (bottom-up) order; shared nodes
        (inputs and subplans) are marked, and their counters cover traffic
        for *all* views they feed.
        """
        header = (
            f"{'node':<28} {'schema':<34} {'deltas':>8} {'rows':>10} "
            f"{'rows/call':>10} {'batch fill':>11} {'memory':>8} {'cells':>8}"
        )
        lines = [header, "-" * len(header)]
        for node in self._shared_nodes.values():
            lines.append(self._profile_line(node, shared=True))
        for node in self.all_nodes:
            lines.append(self._profile_line(node, shared=False))
        return "\n".join(lines)

    def nodes(self):
        """Every node this view reads: shared first, then private."""
        yield from self._shared_nodes.values()
        yield from self.all_nodes

    def _profile_line(self, node: Node, shared: bool) -> str:
        name = type(node).__name__.removesuffix("Node")
        if shared:
            name += " (shared)"
        columns = ", ".join(node.schema.names)
        if len(columns) > 32:
            columns = columns[:29] + "..."
        # input-side batching metrics: rows consumed per apply() call, and
        # the occupancy of columnar batches specifically (input nodes have
        # no upstream and show "-")
        rows_per_call = (
            f"{node.applied_rows / node.applied_deltas:>10.1f}"
            if node.applied_deltas
            else f"{'-':>10}"
        )
        batch_fill = (
            f"{node.columnar_rows / node.columnar_batches:>11.1f}"
            if node.columnar_batches
            else f"{'-':>11}"
        )
        return (
            f"{name:<28} {columns:<34} {node.emitted_deltas:>8} "
            f"{node.emitted_rows:>10} {rows_per_call} {batch_fill} "
            f"{node.memory_size():>8} {node.memory_cells():>8}"
        )

    def memory_size(self) -> int:
        """Entries across all memories this view reads (ablation metric).

        Shared nodes count fully here — this is the memory the view would
        need privately; engine-level totals deduplicate shared nodes.
        """
        return self.private_memory_size() + sum(
            node.memory_size() for node in self._shared_nodes.values()
        )

    def memory_cells(self) -> int:
        """Total stored tuple fields this view reads (width-sensitive)."""
        return self.private_memory_cells() + sum(
            node.memory_cells() for node in self._shared_nodes.values()
        )

    def private_memory_size(self) -> int:
        """Entries in memories owned by this network alone."""
        return sum(node.memory_size() for node in self.all_nodes)

    def private_memory_cells(self) -> int:
        """Stored tuple fields in memories owned by this network alone."""
        return sum(node.memory_cells() for node in self.all_nodes)

    def node_count(self) -> int:
        return len(self.all_nodes)
