"""Rete network construction from an FRA plan (paper §4, step 4).

``build_network`` translates each FRA operator into its incremental node:

=================  =========================================
FRA operator       Rete node
=================  =========================================
© get-vertices     :class:`~.nodes.input.VertexInputNode`
⇑ get-edges        :class:`~.nodes.input.EdgeInputNode`
σ select           :class:`~.nodes.unary.SelectionNode`
π project          :class:`~.nodes.unary.ProjectionNode`
δ dedup            :class:`~.nodes.unary.DedupNode`
ω unwind           :class:`~.nodes.unary.UnwindNode`
γ aggregate        :class:`~.nodes.aggregate.AggregateNode`
⋈ join             :class:`~.nodes.join.JoinNode`
▷ antijoin         :class:`~.nodes.join.AntiJoinNode`
⟕ left outer join  :class:`~.nodes.join.LeftOuterJoinNode`
∪ union            :class:`~.nodes.join.UnionNode`
⋈* transitive      :class:`~.nodes.transitive.TransitiveClosureNode`
=================  =========================================

Identical base relations are shared between subplans (classic Rete node
sharing): two ©/⇑ operators with the same labels/types/projections feed
from one input node, since tuple layout depends only on those parameters,
not on variable names.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..algebra import ops
from ..algebra.expressions import EvalContext, compile_expr
from ..algebra.fra import check_incremental_fragment, validate_fra
from ..errors import CompilerError
from ..graph import events as ev
from ..graph.graph import PropertyGraph
from .nodes.aggregate import AggregateNode
from .nodes.base import LEFT, RIGHT, Node
from .nodes.input import EdgeInputNode, UnitNode, VertexInputNode
from .nodes.join import AntiJoinNode, JoinNode, LeftOuterJoinNode, UnionNode
from .nodes.production import ProductionNode
from .nodes.transitive import EDGES, ReachabilityNode, TransitiveClosureNode
from .nodes.unary import DedupNode, ProjectionNode, SelectionNode, UnwindNode
from .router import EventRouter
from .sharing import SharedInputLayer


class ReteNetwork:
    """A built network: input nodes, production node, and statistics."""

    def __init__(
        self,
        graph: PropertyGraph,
        plan: ops.Operator,
        parameters: Mapping[str, Any] | None = None,
        transitive_mode: str = "trails",
        input_layer: "SharedInputLayer | None" = None,
        route_events: bool = True,
    ):
        validate_fra(plan)
        check_incremental_fragment(plan)
        if transitive_mode not in ("trails", "reachability"):
            raise CompilerError(f"unknown transitive mode {transitive_mode!r}")
        self.graph = graph
        self.plan = plan
        self.ctx = EvalContext(dict(parameters or {}))
        self.transitive_mode = transitive_mode
        self.input_layer = input_layer
        self.vertex_inputs: list[VertexInputNode] = []
        self.edge_inputs: list[EdgeInputNode] = []
        self.unit_inputs: list[UnitNode] = []
        self.aggregates: list[AggregateNode] = []
        self.all_nodes: list[Node] = []
        self._vertex_cache: dict[tuple, VertexInputNode] = {}
        self._edge_cache: dict[tuple, EdgeInputNode] = {}
        # shared input node -> subscriber count at acquisition; every edge
        # appended after that belongs to this network (targeted activation
        # and detach use this to address only our subscriptions)
        self._shared_marks: dict[int, tuple[Node, int]] = {}

        root = self._build(plan)
        self.production = ProductionNode(plan.schema)
        root.subscribe(self.production, LEFT)
        self.all_nodes.append(self.production)
        # Private input layers get their own interest router; with a shared
        # layer this network owns no input nodes and routing lives there.
        self.router: EventRouter | None = None
        if route_events and (self.vertex_inputs or self.edge_inputs):
            self.router = EventRouter(graph)
            for node in self.vertex_inputs:
                self.router.register_vertex_node(node)
            for edge_node in self.edge_inputs:
                self.router.register_edge_node(edge_node)
        # Freeze this network's shared subscription edges now: edges other
        # views append later must not be attributed to this network.
        self.shared_edges: tuple[tuple[Node, Node, int], ...] = tuple(
            (node, subscriber, side)
            for node, mark in self._shared_marks.values()
            for subscriber, side in node._subscribers[mark:]
        )

    # -- construction -----------------------------------------------------

    def _register(self, node: Node) -> Node:
        self.all_nodes.append(node)
        return node

    def _acquire_shared(self, node: Node) -> Node:
        if id(node) not in self._shared_marks:
            self._shared_marks[id(node)] = (node, node.subscriber_count)
        return node

    def _build(self, op: ops.Operator) -> Node:
        if isinstance(op, ops.Unit):
            if self.input_layer is not None:
                return self._acquire_shared(self.input_layer.unit_node(op.schema))
            node = UnitNode(op.schema)
            self.unit_inputs.append(node)
            return self._register(node)

        if isinstance(op, ops.GetVertices):
            if self.input_layer is not None:
                return self._acquire_shared(self.input_layer.vertex_node(op))
            key = (op.labels, op.projections)
            cached = self._vertex_cache.get(key)
            if cached is not None:
                return cached
            node = VertexInputNode(op, self.graph)
            self._vertex_cache[key] = node
            self.vertex_inputs.append(node)
            return self._register(node)

        if isinstance(op, ops.GetEdges):
            if self.input_layer is not None:
                return self._acquire_shared(self.input_layer.edge_node(op))
            # Projections are keyed by role, not by variable name.
            roles = tuple(
                (
                    "src"
                    if p.subject == op.src
                    else "edge"
                    if p.subject == op.edge
                    else "tgt",
                    p.kind,
                    p.key,
                )
                for p in op.projections
            )
            key = (op.types, op.src_labels, op.tgt_labels, op.directed, roles)
            cached = self._edge_cache.get(key)
            if cached is not None:
                return cached
            node = EdgeInputNode(op, self.graph)
            self._edge_cache[key] = node
            self.edge_inputs.append(node)
            return self._register(node)

        if isinstance(op, ops.Select):
            child = self._build(op.children[0])
            node = SelectionNode(
                op.schema,
                compile_expr(op.predicate, op.children[0].schema),
                self.ctx,
            )
            child.subscribe(node, LEFT)
            return self._register(node)

        if isinstance(op, ops.Project):
            child = self._build(op.children[0])
            items = [
                compile_expr(expr, op.children[0].schema) for _, expr in op.items
            ]
            node = ProjectionNode(op.schema, items, self.ctx)
            child.subscribe(node, LEFT)
            return self._register(node)

        if isinstance(op, ops.Dedup):
            child = self._build(op.children[0])
            node = DedupNode(op.schema)
            child.subscribe(node, LEFT)
            return self._register(node)

        if isinstance(op, ops.Unwind):
            child = self._build(op.children[0])
            node = UnwindNode(
                op.schema,
                compile_expr(op.expression, op.children[0].schema),
                self.ctx,
            )
            child.subscribe(node, LEFT)
            return self._register(node)

        if isinstance(op, ops.Aggregate):
            child = self._build(op.children[0])
            child_schema = op.children[0].schema
            node = AggregateNode(
                op.schema,
                [compile_expr(e, child_schema) for _, e in op.keys],
                list(op.aggregates),
                [
                    compile_expr(a.argument, child_schema)
                    if a.argument is not None
                    else None
                    for a in op.aggregates
                ],
                self.ctx,
            )
            child.subscribe(node, LEFT)
            self.aggregates.append(node)
            return self._register(node)

        if isinstance(op, ops.Join):
            left, right = op.children
            left_node = self._build(left)
            right_node = self._build(right)
            node = JoinNode(
                op.schema,
                [left.schema.index_of(n) for n in op.common],
                [right.schema.index_of(n) for n in op.common],
                [
                    i
                    for i, a in enumerate(right.schema)
                    if a.name not in op.common
                ],
            )
            left_node.subscribe(node, LEFT)
            right_node.subscribe(node, RIGHT)
            return self._register(node)

        if isinstance(op, ops.AntiJoin):
            left, right = op.children
            left_node = self._build(left)
            right_node = self._build(right)
            node = AntiJoinNode(
                op.schema,
                [left.schema.index_of(n) for n in op.common],
                [right.schema.index_of(n) for n in op.common],
            )
            left_node.subscribe(node, LEFT)
            right_node.subscribe(node, RIGHT)
            return self._register(node)

        if isinstance(op, ops.LeftOuterJoin):
            left, right = op.children
            left_node = self._build(left)
            right_node = self._build(right)
            extra = [
                i for i, a in enumerate(right.schema) if a.name not in op.common
            ]
            node = LeftOuterJoinNode(
                op.schema,
                [left.schema.index_of(n) for n in op.common],
                [right.schema.index_of(n) for n in op.common],
                extra,
            )
            node.configure_nulls(len(extra))
            left_node.subscribe(node, LEFT)
            right_node.subscribe(node, RIGHT)
            return self._register(node)

        if isinstance(op, ops.Union):
            left_node = self._build(op.children[0])
            right_node = self._build(op.children[1])
            node = UnionNode(op.schema, op.right_permutation)
            left_node.subscribe(node, LEFT)
            right_node.subscribe(node, RIGHT)
            return self._register(node)

        if isinstance(op, ops.TransitiveJoin):
            left = op.children[0]
            left_node = self._build(left)
            edges_node = self._build(op.edges)
            source_index = left.schema.index_of(op.source)
            if (
                self.transitive_mode == "reachability"
                and op.path_alias is None
                and op.min_hops <= 1
                and op.max_hops is None
            ):
                node: Node = ReachabilityNode(
                    op.schema, source_index, op.direction, op.min_hops
                )
            else:
                node = TransitiveClosureNode(
                    op.schema,
                    source_index,
                    op.direction,
                    op.min_hops,
                    op.max_hops,
                    emit_path=op.path_alias is not None,
                )
            left_node.subscribe(node, LEFT)
            edges_node.subscribe(node, EDGES)
            return self._register(node)

        raise CompilerError(f"cannot build a Rete node for {type(op).__name__}")

    # -- lifecycle ------------------------------------------------------------

    def populate(self) -> None:
        """Emit base rows and initial scans through the network.

        Order matters: global aggregates first publish their empty-state
        rows, then unit sources fire, then each input node streams the
        current graph contents as one insertion delta.

        Shared input nodes (cross-view sharing) use *targeted activation*:
        the current-state delta is applied only to this network's
        subscription edges, never re-emitted to other views.  Construction
        and population happen back-to-back inside ``register``, so no graph
        event can slip in between.
        """
        for aggregate in self.aggregates:
            aggregate.initialize()
        for unit in self.unit_inputs:
            unit.activate(self.graph)
        for node in self.vertex_inputs:
            node.activate(self.graph)
        for node in self.edge_inputs:
            node.activate(self.graph)
        if not self.shared_edges:
            return
        deltas: dict[int, Any] = {}
        for kind in (UnitNode, VertexInputNode, EdgeInputNode):
            for node, subscriber, side in self.shared_edges:
                if not isinstance(node, kind):
                    continue
                delta = deltas.get(id(node))
                if delta is None:
                    delta = node.activation_delta(self.graph)
                    deltas[id(node)] = delta
                if delta:
                    subscriber.apply(delta, side)

    def disconnect_shared(self) -> None:
        """Detach this network's subscriptions from shared input nodes."""
        for node, subscriber, side in self.shared_edges:
            node.unsubscribe(subscriber, side)
        self.shared_edges = ()

    @property
    def has_private_inputs(self) -> bool:
        """Whether this network owns input nodes (no shared layer)."""
        return bool(self.vertex_inputs or self.edge_inputs)

    def dispatch(self, event: ev.GraphEvent) -> None:
        """Route one graph event to the input nodes that may care."""
        if self.router is not None:
            self.router.dispatch(event)
            return
        if isinstance(
            event,
            (ev.VertexAdded, ev.VertexRemoved),
        ):
            for node in self.vertex_inputs:
                node.on_event(event)
        elif isinstance(event, (ev.VertexLabelAdded, ev.VertexLabelRemoved)):
            for node in self.vertex_inputs:
                node.on_event(event)
            for edge_node in self.edge_inputs:
                edge_node.on_event(event)
        elif isinstance(event, ev.VertexPropertySet):
            for node in self.vertex_inputs:
                node.on_event(event)
            for edge_node in self.edge_inputs:
                edge_node.on_event(event)
        elif isinstance(event, (ev.EdgeAdded, ev.EdgeRemoved, ev.EdgePropertySet)):
            for edge_node in self.edge_inputs:
                edge_node.on_event(event)

    def dispatch_batch(self, batch) -> None:
        """Route one consolidated batch to this network's private inputs.

        With a shared input layer the network owns no input nodes and this
        is a no-op — the layer's own ``dispatch_batch`` feeds the shared
        nodes instead.
        """
        if self.router is not None:
            self.router.dispatch_batch(batch)
            return
        for node in self.vertex_inputs:
            node.emit(node.batch_delta(batch))
        for edge_node in self.edge_inputs:
            edge_node.emit(edge_node.batch_delta(batch))

    def profile(self) -> str:
        """PROFILE rendering: per-node traffic and memory counters.

        One line per node in construction (bottom-up) order; shared input
        nodes are marked, and their counters cover traffic for *all* views
        they feed.
        """
        header = (
            f"{'node':<28} {'schema':<34} {'deltas':>8} {'rows':>10} "
            f"{'memory':>8} {'cells':>8}"
        )
        lines = [header, "-" * len(header)]
        seen: set[int] = set()
        for node, _ in self._shared_marks.values():
            if id(node) in seen:
                continue
            seen.add(id(node))
            lines.append(self._profile_line(node, shared=True))
        for node in self.all_nodes:
            lines.append(self._profile_line(node, shared=False))
        return "\n".join(lines)

    def _profile_line(self, node: Node, shared: bool) -> str:
        name = type(node).__name__.removesuffix("Node")
        if shared:
            name += " (shared)"
        columns = ", ".join(node.schema.names)
        if len(columns) > 32:
            columns = columns[:29] + "..."
        return (
            f"{name:<28} {columns:<34} {node.emitted_deltas:>8} "
            f"{node.emitted_rows:>10} {node.memory_size():>8} "
            f"{node.memory_cells():>8}"
        )

    def memory_size(self) -> int:
        """Total entries across all node memories (ablation metric)."""
        return sum(node.memory_size() for node in self.all_nodes)

    def memory_cells(self) -> int:
        """Total stored tuple fields across all memories (width-sensitive)."""
        return sum(node.memory_cells() for node in self.all_nodes)

    def node_count(self) -> int:
        return len(self.all_nodes)
