"""Rete node implementations."""

from .aggregate import AggregateNode
from .base import LEFT, RIGHT, Node
from .input import EdgeInputNode, UnitNode, VertexInputNode
from .join import AntiJoinNode, JoinNode, LeftOuterJoinNode, UnionNode
from .production import ProductionNode
from .transitive import EDGES, ReachabilityNode, TransitiveClosureNode
from .unary import DedupNode, ProjectionNode, SelectionNode, UnwindNode

__all__ = [
    "Node",
    "LEFT",
    "RIGHT",
    "EDGES",
    "UnitNode",
    "VertexInputNode",
    "EdgeInputNode",
    "SelectionNode",
    "ProjectionNode",
    "DedupNode",
    "UnwindNode",
    "JoinNode",
    "AntiJoinNode",
    "LeftOuterJoinNode",
    "UnionNode",
    "AggregateNode",
    "TransitiveClosureNode",
    "ReachabilityNode",
    "ProductionNode",
]
