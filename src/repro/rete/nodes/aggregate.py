"""Incremental grouping and aggregation (γ).

Maintains one aggregator state machine per group per aggregate column;
insertions and deletions adjust states, and the node emits
``-old_row, +new_row`` diffs for every touched group.  Groups with no
remaining rows disappear — except the global (key-less) group, which always
exists so that e.g. ``RETURN count(*)`` over an empty graph is ``0``
(``initialize`` emits that base row when the network is built).
"""

from __future__ import annotations

from ...algebra.expressions import (
    AggregateSpec,
    Aggregator,
    CompiledExpr,
    EvalContext,
)
from ..deltas import ColumnDelta, Delta, as_row_delta
from .base import Node


class _Group:
    __slots__ = ("aggregators", "row_count")

    def __init__(self, aggregators: list[Aggregator]):
        self.aggregators = aggregators
        self.row_count = 0


class AggregateNode(Node):
    def __init__(
        self,
        schema,
        key_fns: list[CompiledExpr],
        specs: list[AggregateSpec],
        arg_fns: list[CompiledExpr | None],
        ctx: EvalContext,
        interner=None,
    ):
        super().__init__(schema)
        self.key_fns = key_fns
        self.specs = specs
        self.arg_fns = arg_fns
        self.ctx = ctx
        self.groups: dict[tuple, _Group] = {}
        self.is_global = not key_fns
        #: group keys are interned through the engine row pool when given —
        #: interned on group creation, released on group death/dispose
        self.interner = interner

    def _fresh_group(self) -> _Group:
        return _Group([spec.make_aggregator() for spec in self.specs])

    def _result_row(self, key: tuple, group: _Group) -> tuple:
        return key + tuple(a.result() for a in group.aggregators)

    def initialize(self) -> None:
        """Emit the base row of the always-present global group."""
        if self.is_global:
            group = self._fresh_group()
            key = () if self.interner is None else self.interner.intern(())
            self.groups[key] = group
            delta = Delta()
            delta.add(self._result_row((), group), 1)
            self.emit(delta)

    def apply(self, delta: "Delta | ColumnDelta", side: int) -> None:
        # transition-sensitive boundary: aggregator state machines (notably
        # min/max undo logs) depend on net per-row changes, so columnar
        # batches consolidate at entry
        delta = as_row_delta(delta)
        touched: dict[tuple, tuple | None] = {}
        for row, multiplicity in delta.items():
            key = tuple(fn(row, self.ctx) for fn in self.key_fns)
            group = self.groups.get(key)
            if key not in touched:
                touched[key] = (
                    self._result_row(key, group) if group is not None else None
                )
            if group is None:
                group = self._fresh_group()
                if self.interner is not None:
                    key = self.interner.intern(key)
                self.groups[key] = group
            values = [
                fn(row, self.ctx) if fn is not None else True
                for fn in self.arg_fns
            ]
            if multiplicity > 0:
                for aggregator, value in zip(group.aggregators, values):
                    aggregator.insert(value, multiplicity)
            else:
                for aggregator, value in zip(group.aggregators, values):
                    aggregator.remove(value, -multiplicity)
            group.row_count += multiplicity

        out = Delta()
        for key, old_row in touched.items():
            group = self.groups[key]
            if group.row_count < 0:
                raise AssertionError(f"negative group count for key {key}")
            alive = group.row_count > 0 or self.is_global
            new_row = self._result_row(key, group) if alive else None
            if not alive:
                del self.groups[key]
                if self.interner is not None:
                    self.interner.release(key)
            if old_row == new_row:
                continue
            if old_row is not None:
                out.add(old_row, -1)
            if new_row is not None:
                out.add(new_row, 1)
        self.emit(out)

    def state_delta(self) -> Delta:
        out = Delta()
        for key, group in self.groups.items():
            out.add(self._result_row(key, group), 1)
        return out

    def dispose(self) -> None:
        if self.interner is not None:
            self.interner.release_all(self.groups)

    def memory_size(self) -> int:
        return len(self.groups)
