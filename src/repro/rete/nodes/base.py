"""Node base class and propagation discipline.

The network is a DAG of nodes; every node consumes deltas on one or two
input *sides* and emits an output delta to its subscribers, updating its
own memory in the same step.  Propagation is synchronous and depth-first,
one elementary graph change at a time, which makes the classic sequential
maintenance rule exact:

    Δ(L ⋈ R) = ΔL ⋈ R_old   followed by   L_new ⋈ ΔR

(each side's delta is joined against the other side's *current* memory,
then folded into this side's memory before anything else runs).

Deltas travel in either physical representation — the row-at-a-time
:class:`~repro.rete.deltas.Delta` or the columnar
:class:`~repro.rete.deltas.ColumnDelta` batch — and every node's ``apply``
accepts both (transition-sensitive nodes consolidate columnar batches at
entry via :func:`~repro.rete.deltas.as_row_delta`).
"""

from __future__ import annotations

from ...obs import tracing
from ..deltas import ColumnDelta, Delta

LEFT = 0
RIGHT = 1


class Node:
    """A dataflow node with subscribers.

    Every node keeps cheap traffic counters that PROFILE output reads:
    ``emitted_deltas``/``emitted_rows`` on the output side, and
    ``applied_deltas``/``applied_rows`` plus the columnar pair
    (``columnar_batches``/``columnar_rows``) on the input side — the
    latter make the batch-at-a-time win observable per node (rows per
    ``apply()`` call, columnar batch fill).  They cost a few integer
    additions per propagated delta.
    """

    def __init__(self, schema) -> None:
        self.schema = schema
        self._subscribers: list[tuple["Node", int]] = []
        self.emitted_deltas = 0
        self.emitted_rows = 0
        self.applied_deltas = 0
        self.applied_rows = 0
        self.columnar_batches = 0
        self.columnar_rows = 0

    def subscribe(self, node: "Node", side: int = LEFT) -> None:
        self._subscribers.append((node, side))

    def unsubscribe(self, node: "Node", side: int = LEFT) -> None:
        """Remove one subscription edge (used when detaching shared views)."""
        self._subscribers.remove((node, side))

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def emit(self, delta: "Delta | ColumnDelta") -> None:
        if not delta:
            return
        rows = len(delta)
        self.emitted_deltas += 1
        self.emitted_rows += rows
        columnar = type(delta) is ColumnDelta
        if tracing.ACTIVE is not None:
            self._emit_traced(tracing.ACTIVE, delta, rows, columnar)
            return
        for node, side in self._subscribers:
            node.applied_deltas += 1
            node.applied_rows += rows
            if columnar:
                node.columnar_batches += 1
                node.columnar_rows += rows
            node.apply(delta, side)

    def _emit_traced(self, tracer, delta, rows: int, columnar: bool) -> None:
        """The ``emit`` loop with one span per subscriber ``apply``.

        Spans nest with the synchronous depth-first propagation, so the
        tracer's tree records this delta's whole downstream path; the
        counters are maintained identically to the untraced loop.
        """
        label = type(self).__name__.removesuffix("Node")
        form = "columnar" if columnar else "rows"
        tracer.enter(f"emit {label}", f"({', '.join(self.schema.names)}) {form}", rows)
        try:
            for node, side in self._subscribers:
                node.applied_deltas += 1
                node.applied_rows += rows
                if columnar:
                    node.columnar_batches += 1
                    node.columnar_rows += rows
                target = type(node).__name__.removesuffix("Node")
                tracer.enter(
                    f"apply {target}", f"side={'right' if side else 'left'}", rows
                )
                try:
                    node.apply(delta, side)
                finally:
                    tracer.exit()
        finally:
            tracer.exit()

    def apply(self, delta: "Delta | ColumnDelta", side: int) -> None:
        raise NotImplementedError

    def state_delta(self) -> Delta | None:
        """Current output bag as an insertion delta, or ``None``.

        Shared (cross-view) nodes use this for *targeted activation*: a
        late-registering view replays the node's present output onto only
        its own subscription edges, exactly like input nodes' existing
        ``activation_delta`` protocol.  Stateful nodes reconstruct the bag
        from their memories; stateless nodes return ``None`` and the
        sharing layer derives their output by running :meth:`transform`
        over the upstream states instead.  State always crosses this
        boundary in row form.
        """
        return None

    def transform(self, delta: Delta, side: int) -> Delta:
        """Pure output delta for *delta* on *side* — stateless nodes only.

        Must not touch memories or emit; ``apply`` of a stateless node is
        ``emit(transform(...))``, and the sharing layer reuses the same
        function to reconstruct state for targeted activation.
        """
        raise NotImplementedError(
            f"{type(self).__name__} keeps state; use state_delta()"
        )

    def dispose(self) -> None:
        """Release engine-owned resources when the node is dropped.

        Nodes that intern their dict-key rows through the engine's
        :class:`~repro.rete.deltas.RowInterner` return those refcounts
        here; everything else is a no-op.  Called when a private network
        is detached and when the sharing layer genuinely drops a cached
        subplan (never for detached-LRU residents — they are still
        maintained).
        """

    def memory_size(self) -> int:
        """Number of stored entries (for memory-footprint reporting)."""
        return 0

    def memory_cells(self) -> int:
        """Total stored tuple fields — sensitive to tuple *width*, which is
        what the schema-inference ablation (D1) changes."""
        return 0
