"""Input nodes: the network's interface to the graph's event stream.

Each input node materialises one base relation (the paper's © and ⇑
operators, including their pushed-down ``{prop → attr}`` columns) and
translates graph events into tuple deltas.  Events carry *before* state, so
retraction tuples are rebuilt exactly as they were emitted — the network
never consults its own memory to undo an input.
"""

from __future__ import annotations

from typing import Any

from ...algebra.ops import GetEdges, GetVertices, PropertyProjection
from ...eval.projections import (
    edge_projection_value,
    vertex_projection_value,
)
from ...graph import events as ev
from ...graph.graph import PropertyGraph
from ..deltas import ColumnDelta, Delta
from ..router import EdgeInterest, VertexInterest
from .base import Node


def _private_dict(properties) -> dict[str, Any]:
    """The event's property payload as a plain dict, copy-free when possible.

    The store always emits events carrying fresh private dicts, and every
    consumer treats them as read-only, so rebuilding them per input node is
    pure overhead; non-dict mappings (hand-built events) still get copied.
    """
    return properties if type(properties) is dict else dict(properties)


class UnitNode(Node):
    """Emits the single empty tuple once, at activation."""

    def activation_delta(self, graph: PropertyGraph) -> Delta:
        delta = Delta()
        delta.add((), 1)
        return delta

    def state_delta(self) -> Delta:
        delta = Delta()
        delta.add((), 1)
        return delta

    def activate(self, graph: PropertyGraph) -> None:
        self.emit(self.activation_delta(graph))

    def on_event(self, event: ev.GraphEvent) -> None:  # pragma: no cover
        pass

    def apply(self, delta: Delta, side: int) -> None:  # pragma: no cover
        raise AssertionError("input nodes have no upstream")


class VertexInputNode(Node):
    """© — vertices carrying all required labels, with pushed-down columns.

    ``value_filters`` — ``(column, property key, frozen atom)`` triples from
    constant equality conjuncts the builder pushed below the σ — restrict
    the relation to vertices whose pushed column equals the constant, so
    the event router can narrow dispatch by *value* (its per-(key, value)
    bucket index) and every tuple travelling the network already satisfied
    the constant.  The filter is a necessary condition only (Python ``==``
    over-approximates Cypher ``=`` on atoms; the downstream σ re-confirms),
    and it is a pure function of each built tuple, so retract/assert pairs
    filter symmetrically and net deltas stay exact.
    """

    def __init__(
        self,
        op: GetVertices,
        graph: PropertyGraph,
        value_filters: tuple[tuple[int, str, Any], ...] = (),
        columnar: bool = False,
    ):
        super().__init__(op.schema)
        self.graph = graph
        self.labels = frozenset(op.labels)
        self.projections = op.projections
        self.value_filters = value_filters
        #: emit batch translations as ColumnDelta (engine columnar flag)
        self.columnar = columnar
        self._property_keys = frozenset(
            p.key for p in op.projections if p.kind == "property"
        )
        self._wants_labels = any(p.kind == "labels" for p in op.projections)
        self._wants_properties = any(p.kind == "properties" for p in op.projections)

    def interest(self) -> VertexInterest:
        """The interest signature the event router indexes this node by."""
        return VertexInterest(
            labels=self.labels,
            property_keys=self._property_keys,
            all_properties=self._wants_properties,
            label_values=self._wants_labels,
            property_values=tuple(
                (key, value) for _, key, value in self.value_filters
            ),
        )

    # -- value filtering ----------------------------------------------------

    def _passes(self, row: tuple) -> bool:
        return all(row[i] == v for i, _, v in self.value_filters)

    def _filtered(self, delta: Delta) -> Delta:
        if not self.value_filters:
            return delta
        out = Delta()
        for row, multiplicity in delta.items():
            if self._passes(row):
                out.add(row, multiplicity)
        return out

    # -- tuple building -----------------------------------------------------

    def _matches(self, labels) -> bool:
        return self.labels <= set(labels)

    def _tuple(
        self,
        vertex_id: int,
        labels=None,
        properties: dict[str, Any] | None = None,
    ) -> tuple:
        row = [vertex_id]
        for projection in self.projections:
            row.append(
                vertex_projection_value(
                    self.graph,
                    vertex_id,
                    projection,
                    labels=labels,
                    properties=properties,
                )
            )
        return tuple(row)

    # -- activation & events --------------------------------------------------

    def activation_delta(self, graph: PropertyGraph) -> Delta:
        delta = Delta()
        seed = next(iter(self.labels)) if self.labels else None
        for vertex in graph.vertices(seed):
            if self._matches(graph.labels_of(vertex)):
                row = self._tuple(vertex)
                if self._passes(row):
                    delta.add(row, 1)
        return delta

    def state_delta(self) -> Delta:
        return self.activation_delta(self.graph)

    def activate(self, graph: PropertyGraph) -> None:
        self.emit(self.activation_delta(graph))

    def on_event(self, event: ev.GraphEvent) -> None:
        if isinstance(event, ev.VertexAdded):
            if self._matches(event.labels):
                row = self._tuple(
                    event.vertex_id,
                    labels=event.labels,
                    properties=_private_dict(event.properties),
                )
                if self._passes(row):
                    delta = Delta()
                    delta.add(row, 1)
                    self.emit(delta)
        elif isinstance(event, ev.VertexRemoved):
            if self._matches(event.labels):
                row = self._tuple(
                    event.vertex_id,
                    labels=event.labels,
                    properties=_private_dict(event.properties),
                )
                if self._passes(row):
                    delta = Delta()
                    delta.add(row, -1)
                    self.emit(delta)
        elif isinstance(event, ev.VertexLabelAdded):
            current = self.graph.labels_of(event.vertex_id)
            before = current - {event.label}
            self._label_transition(event.vertex_id, before, current)
        elif isinstance(event, ev.VertexLabelRemoved):
            current = self.graph.labels_of(event.vertex_id)
            before = current | {event.label}
            self._label_transition(event.vertex_id, before, current)
        elif isinstance(event, ev.VertexPropertySet):
            self._property_change(event)

    def _label_transition(self, vertex_id: int, before, current) -> None:
        was = self._matches(before)
        now = self._matches(current)
        if not was and not now:
            return
        delta = Delta()
        if was and not now:
            delta.add(self._tuple(vertex_id, labels=before), -1)
        elif now and not was:
            delta.add(self._tuple(vertex_id, labels=current), 1)
        elif self._wants_labels:
            # membership unchanged but a labels(...) column changed value
            delta.add(self._tuple(vertex_id, labels=before), -1)
            delta.add(self._tuple(vertex_id, labels=current), 1)
        self.emit(self._filtered(delta))

    def batch_delta(self, batch) -> Delta:
        """Net delta for one :class:`~repro.rete.batch.CoalescedBatch`.

        Added/removed records carry their full final/window-start state, so
        translation never consults the graph for retracted vertices; changed
        records become retract-before / assert-after pairs (which cancel in
        the delta when no relevant column moved).
        """
        delta = Delta()
        for event in batch.vertex_events:
            if isinstance(event, ev.VertexAdded):
                if self._matches(event.labels):
                    delta.add(
                        self._tuple(
                            event.vertex_id,
                            labels=event.labels,
                            properties=_private_dict(event.properties),
                        ),
                        1,
                    )
            elif isinstance(event, ev.VertexRemoved):
                if self._matches(event.labels):
                    delta.add(
                        self._tuple(
                            event.vertex_id,
                            labels=event.labels,
                            properties=_private_dict(event.properties),
                        ),
                        -1,
                    )
            else:  # VertexChanged
                if self._matches(event.before_labels):
                    delta.add(
                        self._tuple(
                            event.vertex_id,
                            labels=event.before_labels,
                            properties=_private_dict(event.before_properties),
                        ),
                        -1,
                    )
                if self._matches(event.after_labels):
                    delta.add(
                        self._tuple(
                            event.vertex_id,
                            labels=event.after_labels,
                            properties=_private_dict(event.after_properties),
                        ),
                        1,
                    )
        return self._filtered(delta)

    def emit_batch(self, batch) -> None:
        """Translate one coalesced batch and emit it, columnar when enabled.

        The net delta is built in row form either way — consolidation is
        what cancels a batch's internal insert/delete pairs — and the
        columnar flag only changes the *wire* representation handed to
        subscribers (one transpose for the whole batch)."""
        delta = self.batch_delta(batch)
        if self.columnar and delta:
            self.emit(ColumnDelta.from_delta(delta, len(self.schema.names)))
        else:
            self.emit(delta)

    def _property_change(self, event: ev.VertexPropertySet) -> None:
        if not (self._wants_properties or event.key in self._property_keys):
            return
        if not self._matches(self.graph.labels_of(event.vertex_id)):
            return
        after = self.graph.vertex_properties(event.vertex_id)
        before = ev.unwind_property_set(after, event)
        delta = Delta()
        delta.add(self._tuple(event.vertex_id, properties=before), -1)
        delta.add(self._tuple(event.vertex_id, properties=after), 1)
        self.emit(self._filtered(delta))

    def apply(self, delta: Delta, side: int) -> None:  # pragma: no cover
        raise AssertionError("input nodes have no upstream")


class EdgeInputNode(Node):
    """⇑ — ``(src, edge, tgt)`` triples with endpoint label constraints and
    pushed-down columns (the paper's ``⇑(c:Comm{lang→cL})(p:Post)``).

    With ``directed=False`` every non-loop edge contributes both
    orientations.  The node reacts to edge lifecycle events, edge property
    changes, and label/property changes of *endpoint* vertices (which can
    change membership or pushed-column values of incident edge tuples).
    """

    def __init__(self, op: GetEdges, graph: PropertyGraph, columnar: bool = False):
        super().__init__(op.schema)
        self.graph = graph
        #: emit batch translations as ColumnDelta (engine columnar flag)
        self.columnar = columnar
        self.types = frozenset(op.types)
        self.src_labels = frozenset(op.src_labels)
        self.tgt_labels = frozenset(op.tgt_labels)
        self.directed = op.directed
        self.projections = op.projections
        self._roles = []
        for projection in op.projections:
            if projection.subject == op.src:
                self._roles.append("src")
            elif projection.subject == op.edge:
                self._roles.append("edge")
            else:
                self._roles.append("tgt")
        self._edge_property_keys = frozenset(
            p.key
            for p, role in zip(op.projections, self._roles)
            if role == "edge" and p.kind == "property"
        )
        self._wants_edge_properties = any(
            p.kind == "properties"
            for p, role in zip(op.projections, self._roles)
            if role == "edge"
        )
        self._vertex_property_keys = frozenset(
            p.key
            for p, role in zip(op.projections, self._roles)
            if role in ("src", "tgt") and p.kind == "property"
        )
        self._wants_vertex_properties = any(
            p.kind == "properties"
            for p, role in zip(op.projections, self._roles)
            if role in ("src", "tgt")
        )
        self._wants_vertex_labels = any(
            p.kind == "labels"
            for p, role in zip(op.projections, self._roles)
            if role in ("src", "tgt")
        )

    def interest(self) -> EdgeInterest:
        """The interest signature the event router indexes this node by."""
        return EdgeInterest(
            types=self.types,
            endpoint_labels=self.src_labels | self.tgt_labels,
            endpoint_label_values=self._wants_vertex_labels,
            vertex_property_keys=self._vertex_property_keys,
            all_vertex_properties=self._wants_vertex_properties,
            edge_property_keys=self._edge_property_keys,
            all_edge_properties=self._wants_edge_properties,
        )

    # -- tuple building ----------------------------------------------------

    def _type_matches(self, edge_type: str) -> bool:
        return not self.types or edge_type in self.types

    def _interesting_incident(self, vertex_id: int):
        """Incident edges already narrowed to this node's admissible types.

        Leans on the graph's per-type adjacency: with a type constraint
        only the matching buckets are walked (no per-edge ``type_of``
        check), and each yielded edge is guaranteed type-admissible.
        """
        if not self.types:
            yield from self.graph.incident_edges(vertex_id)
            return
        for edge_type in self.types:
            yield from self.graph.incident_edges(vertex_id, edge_type)

    def _orientations(self, source: int, target: int):
        yield source, target
        if not self.directed and source != target:
            yield target, source

    def _row(
        self,
        edge_id: int,
        src: int,
        tgt: int,
        *,
        vertex_labels: dict[int, frozenset[str]] | None = None,
        vertex_properties: dict[int, dict] | None = None,
        edge_type: str | None = None,
        edge_properties: dict | None = None,
    ) -> tuple | None:
        """One oriented tuple, or None when label constraints fail.

        The override maps supply *before* state for the vertices whose
        labels/properties an event changed.
        """
        labels_of = lambda v: (
            vertex_labels[v]
            if vertex_labels is not None and v in vertex_labels
            else self.graph.labels_of(v)
        )
        if self.src_labels and not self.src_labels <= set(labels_of(src)):
            return None
        if self.tgt_labels and not self.tgt_labels <= set(labels_of(tgt)):
            return None
        row = [src, edge_id, tgt]
        for projection, role in zip(self.projections, self._roles):
            if role == "edge":
                row.append(
                    edge_projection_value(
                        self.graph,
                        edge_id,
                        projection,
                        edge_type=edge_type,
                        properties=edge_properties,
                    )
                )
            else:
                vertex = src if role == "src" else tgt
                overrides = {}
                if vertex_labels is not None and vertex in vertex_labels:
                    overrides["labels"] = vertex_labels[vertex]
                if vertex_properties is not None and vertex in vertex_properties:
                    overrides["properties"] = vertex_properties[vertex]
                row.append(
                    vertex_projection_value(
                        self.graph, vertex, projection, **overrides
                    )
                )
        return tuple(row)

    def _edge_delta(
        self,
        edge_id: int,
        source: int,
        target: int,
        sign: int,
        delta: Delta,
        **overrides,
    ) -> None:
        for src, tgt in self._orientations(source, target):
            row = self._row(edge_id, src, tgt, **overrides)
            if row is not None:
                delta.add(row, sign)

    # -- activation & events --------------------------------------------------

    def activation_delta(self, graph: PropertyGraph) -> Delta:
        delta = Delta()
        type_list = self.types if self.types else {None}
        for edge_type in type_list:
            for s, e, t in graph.edge_triples(edge_type):
                self._edge_delta(e, s, t, 1, delta)
        return delta

    def state_delta(self) -> Delta:
        return self.activation_delta(self.graph)

    def activate(self, graph: PropertyGraph) -> None:
        self.emit(self.activation_delta(graph))

    def on_event(self, event: ev.GraphEvent) -> None:
        if isinstance(event, ev.EdgeAdded):
            if self._type_matches(event.edge_type):
                delta = Delta()
                self._edge_delta(
                    event.edge_id,
                    event.source,
                    event.target,
                    1,
                    delta,
                    edge_type=event.edge_type,
                    edge_properties=_private_dict(event.properties),
                )
                self.emit(delta)
        elif isinstance(event, ev.EdgeRemoved):
            if self._type_matches(event.edge_type):
                delta = Delta()
                self._edge_delta(
                    event.edge_id,
                    event.source,
                    event.target,
                    -1,
                    delta,
                    edge_type=event.edge_type,
                    edge_properties=_private_dict(event.properties),
                )
                self.emit(delta)
        elif isinstance(event, ev.EdgePropertySet):
            self._edge_property_change(event)
        elif isinstance(event, ev.VertexLabelAdded):
            current = self.graph.labels_of(event.vertex_id)
            self._endpoint_label_change(
                event.vertex_id, current - {event.label}, current
            )
        elif isinstance(event, ev.VertexLabelRemoved):
            current = self.graph.labels_of(event.vertex_id)
            self._endpoint_label_change(
                event.vertex_id, current | {event.label}, current
            )
        elif isinstance(event, ev.VertexPropertySet):
            self._endpoint_property_change(event)

    def batch_delta(self, batch) -> Delta:
        """Net delta for one :class:`~repro.rete.batch.CoalescedBatch`.

        Edge records are translated against the final graph state, with the
        batch's *before* override maps standing in for endpoints that
        changed or disappeared inside the window.  A final sweep covers
        surviving edges that were untouched themselves but hang off a
        vertex whose labels/properties changed (each such edge exactly
        once, even when both endpoints changed).
        """
        delta = Delta()
        before_labels = batch.vertex_before_labels
        before_properties = batch.vertex_before_properties
        touched: set[int] = set()
        for event in batch.edge_events:
            touched.add(event.edge_id)
            if not self._type_matches(event.edge_type):
                continue
            if isinstance(event, ev.EdgeAdded):
                self._edge_delta(
                    event.edge_id, event.source, event.target, 1, delta,
                    edge_type=event.edge_type,
                    edge_properties=_private_dict(event.properties),
                )
            elif isinstance(event, ev.EdgeRemoved):
                self._edge_delta(
                    event.edge_id, event.source, event.target, -1, delta,
                    edge_type=event.edge_type,
                    edge_properties=_private_dict(event.properties),
                    vertex_labels=before_labels,
                    vertex_properties=before_properties,
                )
            else:  # EdgeChanged
                self._edge_delta(
                    event.edge_id, event.source, event.target, -1, delta,
                    edge_type=event.edge_type,
                    edge_properties=_private_dict(event.before_properties),
                    vertex_labels=before_labels,
                    vertex_properties=before_properties,
                )
                self._edge_delta(
                    event.edge_id, event.source, event.target, 1, delta,
                    edge_type=event.edge_type,
                    edge_properties=_private_dict(event.after_properties),
                )
        swept: set[int] = set()
        for event in batch.vertex_events:
            if not isinstance(event, ev.VertexChanged):
                continue
            if not self._endpoint_change_relevant(event):
                continue
            for edge_id in self._interesting_incident(event.vertex_id):
                if edge_id in touched or edge_id in swept:
                    continue
                swept.add(edge_id)
                source, target = self.graph.endpoints(edge_id)
                self._edge_delta(
                    edge_id, source, target, -1, delta,
                    vertex_labels=before_labels,
                    vertex_properties=before_properties,
                )
                self._edge_delta(edge_id, source, target, 1, delta)
        return delta

    def emit_batch(self, batch) -> None:
        """Translate one coalesced batch and emit it, columnar when enabled
        (see :meth:`VertexInputNode.emit_batch`)."""
        delta = self.batch_delta(batch)
        if self.columnar and delta:
            self.emit(ColumnDelta.from_delta(delta, len(self.schema.names)))
        else:
            self.emit(delta)

    def _endpoint_change_relevant(self, event: ev.VertexChanged) -> bool:
        """Whether a net endpoint transition can move this node's tuples."""
        if event.before_labels != event.after_labels and self._relevant_label_change(
            event.before_labels, event.after_labels
        ):
            return True
        if event.before_properties != event.after_properties:
            if self._wants_vertex_properties:
                return True
            return not self._vertex_property_keys.isdisjoint(
                ev.changed_property_keys(
                    event.before_properties, event.after_properties
                )
            )
        return False

    def _edge_property_change(self, event: ev.EdgePropertySet) -> None:
        if not (
            self._wants_edge_properties or event.key in self._edge_property_keys
        ):
            return
        if not self._type_matches(self.graph.type_of(event.edge_id)):
            return
        source, target = self.graph.endpoints(event.edge_id)
        after = self.graph.edge_properties(event.edge_id)
        before = ev.unwind_property_set(after, event)
        delta = Delta()
        self._edge_delta(
            event.edge_id, source, target, -1, delta, edge_properties=before
        )
        self._edge_delta(
            event.edge_id, source, target, 1, delta, edge_properties=after
        )
        self.emit(delta)

    def _relevant_label_change(self, before, current) -> bool:
        changed = before ^ current
        if self._wants_vertex_labels:
            return True
        return bool(changed & (self.src_labels | self.tgt_labels))

    def _endpoint_label_change(self, vertex_id: int, before, current) -> None:
        if not self._relevant_label_change(before, current):
            return
        delta = Delta()
        for edge_id in self._interesting_incident(vertex_id):
            source, target = self.graph.endpoints(edge_id)
            self._edge_delta(
                edge_id, source, target, -1, delta,
                vertex_labels={vertex_id: before},
            )
            self._edge_delta(
                edge_id, source, target, 1, delta,
                vertex_labels={vertex_id: current},
            )
        self.emit(delta)

    def _endpoint_property_change(self, event: ev.VertexPropertySet) -> None:
        if not (
            self._wants_vertex_properties
            or event.key in self._vertex_property_keys
        ):
            return
        after = self.graph.vertex_properties(event.vertex_id)
        before = ev.unwind_property_set(after, event)
        delta = Delta()
        for edge_id in self._interesting_incident(event.vertex_id):
            source, target = self.graph.endpoints(edge_id)
            self._edge_delta(
                edge_id, source, target, -1, delta,
                vertex_properties={event.vertex_id: before},
            )
            self._edge_delta(
                edge_id, source, target, 1, delta,
                vertex_properties={event.vertex_id: after},
            )
        self.emit(delta)

    def apply(self, delta: Delta, side: int) -> None:  # pragma: no cover
        raise AssertionError("input nodes have no upstream")
