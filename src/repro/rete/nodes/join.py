"""Binary beta nodes: natural join, antijoin, left outer join, union.

All four maintain per-side memories indexed by the shared (natural-join)
attributes and follow the sequential counting rule — an incoming delta is
joined against the *other* side's current memory, then folded into this
side's memory (see :mod:`.base`).

Each node has two inner loops per side: the row-at-a-time loop over a
:class:`~repro.rete.deltas.Delta` and a batch-at-a-time loop over a
:class:`~repro.rete.deltas.ColumnDelta` — key columns are extracted with
one C-level transpose, hash probes run over the prebuilt key column, and
memory folds use the bulk :func:`~repro.rete.deltas.index_update`.  All
four maintenance rules are linear in row occurrences, so the columnar
loops are exact on unconsolidated batches (duplicate occurrences sum; any
compensating output pairs cancel at the next consolidation boundary).

Memories come in two representations, chosen at construction by the
``columnar_memories`` flag: the PR 1–9 row-dict index (``key → {row:
mult}``, the ``columnar_memories=False`` ablation, byte-identical loops)
or the :class:`~repro.rete.deltas.ColumnStore` — key cells stored once
per distinct key, payload values in parallel columns.  Under column
storage the batch loops specialise further: a :class:`ColumnDelta`'s key
column probes the store and its value columns fold in directly
(``insert_columns``), materialising row tuples only for the positions
that actually produce output; the right store of ⋈/⟕ keeps its payload
in ``right_extra`` order so probe hits *are* the merge suffixes.  The
left outer join's per-key right count map dissolves into the store
(``key_weight``) — one fewer copy of every distinct right key.
"""

from __future__ import annotations

from ..deltas import (
    ColumnDelta,
    ColumnStore,
    Delta,
    index_cells,
    index_insert,
    index_size,
    index_update,
)
from .base import LEFT, Node

Index = dict  # key -> {row: multiplicity}


def _complement(key: list[int], width: int) -> list[int]:
    """Payload columns of a *width*-wide row not covered by *key*."""
    covered = set(key)
    return [i for i in range(width) if i not in covered]


class JoinNode(Node):
    """⋈ — natural join with two hash memories."""

    def __init__(
        self,
        schema,
        left_key: list[int],
        right_key: list[int],
        right_extra: list[int],
        columnar_memories: bool = True,
    ):
        super().__init__(schema)
        self.left_key = left_key
        self.right_key = right_key
        self.right_extra = right_extra
        self.columnar_memories = columnar_memories
        if columnar_memories:
            left_width = len(schema.names) - len(right_extra)
            self.left_index: "Index | ColumnStore" = ColumnStore(
                left_key, _complement(left_key, left_width)
            )
            # payload order == right_extra: probe hits are merge suffixes
            self.right_index: "Index | ColumnStore" = ColumnStore(
                right_key, right_extra
            )
        else:
            self.left_index = {}
            self.right_index = {}

    def _merge(self, left_row: tuple, right_row: tuple) -> tuple:
        return left_row + tuple(right_row[i] for i in self.right_extra)

    def apply(self, delta: "Delta | ColumnDelta", side: int) -> None:
        if type(delta) is ColumnDelta:
            self._apply_columnar(delta, side)
            return
        if self.columnar_memories:
            self._apply_row_store(delta, side)
            return
        out = Delta()
        if side == LEFT:
            for row, multiplicity in delta.items():
                key = tuple(row[i] for i in self.left_key)
                for other, m2 in self.right_index.get(key, {}).items():
                    out.add(self._merge(row, other), multiplicity * m2)
                index_insert(self.left_index, key, row, multiplicity)
        else:
            for row, multiplicity in delta.items():
                key = tuple(row[i] for i in self.right_key)
                for other, m2 in self.left_index.get(key, {}).items():
                    out.add(self._merge(other, row), multiplicity * m2)
                index_insert(self.right_index, key, row, multiplicity)
        self.emit(out)

    def _apply_row_store(self, delta: Delta, side: int) -> None:
        """The row loop over column storage — probe hits on the right store
        are suffix tuples already (payload order == ``right_extra``)."""
        out = Delta()
        if side == LEFT:
            probe = self.right_index.get
            fold = self.left_index.insert
            for row, multiplicity in delta.items():
                key = tuple(row[i] for i in self.left_key)
                bucket = probe(key)
                if bucket is not None:
                    for suffix, m2 in bucket.payloads():
                        out.add(row + suffix, multiplicity * m2)
                fold(key, row, multiplicity)
        else:
            extra = self.right_extra
            probe = self.left_index.get
            fold = self.right_index.insert_payload
            for row, multiplicity in delta.items():
                key = tuple(row[i] for i in self.right_key)
                suffix = tuple(row[i] for i in extra)
                bucket = probe(key)
                if bucket is not None:
                    for other, m2 in bucket.items():
                        out.add(other + suffix, multiplicity * m2)
                fold(key, suffix, multiplicity)
        self.emit(out)

    def _apply_columnar(self, delta: ColumnDelta, side: int) -> None:
        if self.columnar_memories:
            self._apply_columnar_store(delta, side)
            return
        rows = delta.rows()
        mults = delta.mults
        extra = self.right_extra
        out_rows: list[tuple] = []
        out_mults: list[int] = []
        append_row = out_rows.append
        append_mult = out_mults.append
        if side == LEFT:
            keys = delta.key_column(self.left_key)
            probe = self.right_index.get
            for key, row, multiplicity in zip(keys, rows, mults):
                bucket = probe(key)
                if bucket:
                    for other, m2 in bucket.items():
                        append_row(row + tuple(other[i] for i in extra))
                        append_mult(multiplicity * m2)
            index_update(self.left_index, keys, rows, mults)
        else:
            keys = delta.key_column(self.right_key)
            probe = self.left_index.get
            for key, row, multiplicity in zip(keys, rows, mults):
                bucket = probe(key)
                if bucket:
                    suffix = tuple(row[i] for i in extra)
                    for other, m2 in bucket.items():
                        append_row(other + suffix)
                        append_mult(multiplicity * m2)
            index_update(self.right_index, keys, rows, mults)
        self.emit(
            ColumnDelta.from_rows(out_rows, out_mults, len(self.schema.names))
        )

    def _apply_columnar_store(self, delta: ColumnDelta, side: int) -> None:
        """The batch loop over column storage: the prebuilt key column
        probes, the value columns fold in directly (``insert_columns``),
        and row tuples materialise only at positions that produce output."""
        mults = delta.mults
        cols = delta.columns
        out_rows: list[tuple] = []
        out_mults: list[int] = []
        append_row = out_rows.append
        append_mult = out_mults.append
        if side == LEFT:
            keys = delta.key_column(self.left_key)
            store = self.right_index
            positions_of = store.index.get
            s_single = store._single
            s_columns = store.columns
            s_mults = store.mults
            pos = 0
            for key, multiplicity in zip(keys, mults):
                positions = positions_of(key)
                if positions is not None:
                    row = tuple(col[pos] for col in cols)
                    # payload order == right_extra: payloads are suffixes
                    if s_single is not None:
                        for p in positions:
                            append_row(row + (s_single[p],))
                            append_mult(multiplicity * s_mults[p])
                    else:
                        for p in positions:
                            append_row(
                                row + tuple(c[p] for c in s_columns)
                            )
                            append_mult(multiplicity * s_mults[p])
                pos += 1
            self.left_index.insert_columns(keys, cols, mults)
        else:
            extra = self.right_extra
            keys = delta.key_column(self.right_key)
            store = self.left_index
            positions_of = store.index.get
            assemble = store._assemble
            s_columns = store.columns
            s_mults = store.mults
            pos = 0
            for key, multiplicity in zip(keys, mults):
                positions = positions_of(key)
                if positions is not None:
                    suffix = tuple(cols[i][pos] for i in extra)
                    for p in positions:
                        append_row(
                            tuple(
                                key[j] if from_key else s_columns[j][p]
                                for from_key, j in assemble
                            )
                            + suffix
                        )
                        append_mult(multiplicity * s_mults[p])
                pos += 1
            self.right_index.insert_columns(keys, cols, mults)
        self.emit(
            ColumnDelta.from_rows(out_rows, out_mults, len(self.schema.names))
        )

    def state_delta(self) -> Delta:
        out = Delta()
        for key, bucket in self.left_index.items():
            matches = self.right_index.get(key)
            if not matches:
                continue
            for row, multiplicity in bucket.items():
                for other, m2 in matches.items():
                    out.add(self._merge(row, other), multiplicity * m2)
        return out

    def memory_size(self) -> int:
        return index_size(self.left_index) + index_size(self.right_index)

    def memory_cells(self) -> int:
        return index_cells(self.left_index) + index_cells(self.right_index)


class AntiJoinNode(Node):
    """▷ — left rows whose key has no right partner.

    Right memory stores aggregate multiplicity per key; left rows toggle
    in or out of the result when that count crosses zero."""

    def __init__(
        self,
        schema,
        left_key: list[int],
        right_key: list[int],
        columnar_memories: bool = True,
    ):
        super().__init__(schema)
        self.left_key = left_key
        self.right_key = right_key
        self.columnar_memories = columnar_memories
        if columnar_memories:
            self.left_index: "Index | ColumnStore" = ColumnStore(
                left_key, _complement(left_key, len(schema.names))
            )
        else:
            self.left_index = {}
        # the right memory is a per-key count either way: no rows are
        # stored, so there is nothing for column storage to deduplicate
        self.right_counts: dict[tuple, int] = {}

    def apply(self, delta: "Delta | ColumnDelta", side: int) -> None:
        if type(delta) is ColumnDelta:
            self._apply_columnar(delta, side)
            return
        out = Delta()
        if side == LEFT:
            for row, multiplicity in delta.items():
                key = tuple(row[i] for i in self.left_key)
                if self.right_counts.get(key, 0) == 0:
                    out.add(row, multiplicity)
                index_insert(self.left_index, key, row, multiplicity)
        else:
            for row, multiplicity in delta.items():
                key = tuple(row[i] for i in self.right_key)
                before = self.right_counts.get(key, 0)
                after = before + multiplicity
                if after:
                    self.right_counts[key] = after
                else:
                    self.right_counts.pop(key, None)
                if before == 0 and after > 0:
                    for left_row, m in self.left_index.get(key, {}).items():
                        out.add(left_row, -m)
                elif before > 0 and after == 0:
                    for left_row, m in self.left_index.get(key, {}).items():
                        out.add(left_row, m)
        self.emit(out)

    def _apply_columnar(self, delta: ColumnDelta, side: int) -> None:
        mults = delta.mults
        out_rows: list[tuple] = []
        out_mults: list[int] = []
        if side == LEFT:
            keys = delta.key_column(self.left_key)
            unmatched = self.right_counts.get
            if self.columnar_memories:
                # column storage: emit-side rows materialise only where the
                # key is unmatched; the fold reads the columns directly
                cols = delta.columns
                pos = 0
                for key, multiplicity in zip(keys, mults):
                    if unmatched(key, 0) == 0:
                        out_rows.append(tuple(col[pos] for col in cols))
                        out_mults.append(multiplicity)
                    pos += 1
                self.left_index.insert_columns(keys, cols, mults)
            else:
                rows = delta.rows()
                for key, row, multiplicity in zip(keys, rows, mults):
                    if unmatched(key, 0) == 0:
                        out_rows.append(row)
                        out_mults.append(multiplicity)
                index_update(self.left_index, keys, rows, mults)
        else:
            keys = delta.key_column(self.right_key)
            counts = self.right_counts
            left = self.left_index.get
            for key, multiplicity in zip(keys, mults):
                before = counts.get(key, 0)
                after = before + multiplicity
                if after:
                    counts[key] = after
                else:
                    counts.pop(key, None)
                if before == 0 and after > 0:
                    for left_row, m in left(key, {}).items():
                        out_rows.append(left_row)
                        out_mults.append(-m)
                elif before > 0 and after == 0:
                    for left_row, m in left(key, {}).items():
                        out_rows.append(left_row)
                        out_mults.append(m)
        self.emit(
            ColumnDelta.from_rows(out_rows, out_mults, len(self.schema.names))
        )

    def state_delta(self) -> Delta:
        out = Delta()
        for key, bucket in self.left_index.items():
            if self.right_counts.get(key, 0) == 0:
                for row, multiplicity in bucket.items():
                    out.add(row, multiplicity)
        return out

    def memory_size(self) -> int:
        return index_size(self.left_index) + len(self.right_counts)

    def memory_cells(self) -> int:
        return index_cells(self.left_index) + sum(
            len(key) for key in self.right_counts
        )


class LeftOuterJoinNode(Node):
    """⟕ — natural join plus null-padded rows for unmatched left rows."""

    def __init__(
        self,
        schema,
        left_key: list[int],
        right_key: list[int],
        right_extra: list[int],
        columnar_memories: bool = True,
    ):
        super().__init__(schema)
        self.left_key = left_key
        self.right_key = right_key
        self.right_extra = right_extra
        self.columnar_memories = columnar_memories
        if columnar_memories:
            left_width = len(schema.names) - len(right_extra)
            self.left_index: "Index | ColumnStore" = ColumnStore(
                left_key, _complement(left_key, left_width)
            )
            self.right_index: "Index | ColumnStore" = ColumnStore(
                right_key, right_extra
            )
            # no separate per-key count map: the store's bucket weight
            # (``key_weight``) is that count, so every distinct right key
            # is stored once instead of twice
            self.right_counts: dict[tuple, int] | None = None
        else:
            self.left_index = {}
            self.right_index = {}
            self.right_counts = {}
        self._nulls = ()  # set by network builder via configure_nulls

    def configure_nulls(self, width: int) -> None:
        self._nulls = (None,) * width

    def _merge(self, left_row: tuple, right_row: tuple) -> tuple:
        return left_row + tuple(right_row[i] for i in self.right_extra)

    def apply(self, delta: "Delta | ColumnDelta", side: int) -> None:
        if type(delta) is ColumnDelta:
            self._apply_columnar(delta, side)
            return
        if self.columnar_memories:
            self._apply_row_store(delta, side)
            return
        out = Delta()
        if side == LEFT:
            for row, multiplicity in delta.items():
                key = tuple(row[i] for i in self.left_key)
                matches = self.right_index.get(key)
                if matches:
                    for other, m2 in matches.items():
                        out.add(self._merge(row, other), multiplicity * m2)
                else:
                    out.add(row + self._nulls, multiplicity)
                index_insert(self.left_index, key, row, multiplicity)
        else:
            for row, multiplicity in delta.items():
                key = tuple(row[i] for i in self.right_key)
                left_rows = self.left_index.get(key, {})
                for left_row, m in left_rows.items():
                    out.add(self._merge(left_row, row), multiplicity * m)
                before = self.right_counts.get(key, 0)
                after = before + multiplicity
                if after:
                    self.right_counts[key] = after
                else:
                    self.right_counts.pop(key, None)
                index_insert(self.right_index, key, row, multiplicity)
                if before == 0 and after > 0:
                    for left_row, m in left_rows.items():
                        out.add(left_row + self._nulls, -m)
                elif before > 0 and after == 0:
                    for left_row, m in left_rows.items():
                        out.add(left_row + self._nulls, m)
        self.emit(out)

    def _apply_row_store(self, delta: Delta, side: int) -> None:
        """The row loop over column storage.  The right count map is gone:
        ``key_weight`` (the bucket's summed multiplicity) *is* the count,
        read just before each fold, so the before/after zero-crossing that
        toggles null padding is decided exactly as in the row-dict loop."""
        out = Delta()
        nulls = self._nulls
        if side == LEFT:
            probe = self.right_index.get
            fold = self.left_index.insert
            for row, multiplicity in delta.items():
                key = tuple(row[i] for i in self.left_key)
                bucket = probe(key)
                if bucket is not None:
                    for suffix, m2 in bucket.payloads():
                        out.add(row + suffix, multiplicity * m2)
                else:
                    out.add(row + nulls, multiplicity)
                fold(key, row, multiplicity)
        else:
            extra = self.right_extra
            left = self.left_index.get
            right_store = self.right_index
            for row, multiplicity in delta.items():
                key = tuple(row[i] for i in self.right_key)
                suffix = tuple(row[i] for i in extra)
                bucket = left(key)
                if bucket is not None:
                    for left_row, m in bucket.items():
                        out.add(left_row + suffix, multiplicity * m)
                before = right_store.key_weight(key)
                right_store.insert_payload(key, suffix, multiplicity)
                after = before + multiplicity
                if bucket is not None:
                    if before == 0 and after > 0:
                        for left_row, m in bucket.items():
                            out.add(left_row + nulls, -m)
                    elif before > 0 and after == 0:
                        for left_row, m in bucket.items():
                            out.add(left_row + nulls, m)
        self.emit(out)

    def _apply_columnar(self, delta: ColumnDelta, side: int) -> None:
        if self.columnar_memories:
            self._apply_columnar_store(delta, side)
            return
        rows = delta.rows()
        mults = delta.mults
        extra = self.right_extra
        nulls = self._nulls
        out_rows: list[tuple] = []
        out_mults: list[int] = []
        if side == LEFT:
            keys = delta.key_column(self.left_key)
            probe = self.right_index.get
            for key, row, multiplicity in zip(keys, rows, mults):
                matches = probe(key)
                if matches:
                    for other, m2 in matches.items():
                        out_rows.append(row + tuple(other[i] for i in extra))
                        out_mults.append(multiplicity * m2)
                else:
                    out_rows.append(row + nulls)
                    out_mults.append(multiplicity)
            index_update(self.left_index, keys, rows, mults)
        else:
            # the right side interleaves count transitions with memory folds
            # per row occurrence (exactly the row loop's discipline), with
            # the key column prebuilt and the dict probes hoisted
            keys = delta.key_column(self.right_key)
            counts = self.right_counts
            left = self.left_index.get
            right_index = self.right_index
            for key, row, multiplicity in zip(keys, rows, mults):
                left_rows = left(key, {})
                suffix = tuple(row[i] for i in extra)
                for left_row, m in left_rows.items():
                    out_rows.append(left_row + suffix)
                    out_mults.append(multiplicity * m)
                before = counts.get(key, 0)
                after = before + multiplicity
                if after:
                    counts[key] = after
                else:
                    counts.pop(key, None)
                index_insert(right_index, key, row, multiplicity)
                if before == 0 and after > 0:
                    for left_row, m in left_rows.items():
                        out_rows.append(left_row + nulls)
                        out_mults.append(-m)
                elif before > 0 and after == 0:
                    for left_row, m in left_rows.items():
                        out_rows.append(left_row + nulls)
                        out_mults.append(m)
        self.emit(
            ColumnDelta.from_rows(out_rows, out_mults, len(self.schema.names))
        )

    def _apply_columnar_store(self, delta: ColumnDelta, side: int) -> None:
        """The batch loop over column storage.  The right side keeps the
        per-occurrence interleaving of joins, count transition and fold
        (the row loop's discipline); the left side bulk-folds because only
        the right memory drives null toggles."""
        mults = delta.mults
        cols = delta.columns
        extra = self.right_extra
        nulls = self._nulls
        out_rows: list[tuple] = []
        out_mults: list[int] = []
        if side == LEFT:
            keys = delta.key_column(self.left_key)
            probe = self.right_index.get
            pos = 0
            for key, multiplicity in zip(keys, mults):
                row = tuple(col[pos] for col in cols)
                bucket = probe(key)
                if bucket is not None:
                    for suffix, m2 in bucket.payloads():
                        out_rows.append(row + suffix)
                        out_mults.append(multiplicity * m2)
                else:
                    out_rows.append(row + nulls)
                    out_mults.append(multiplicity)
                pos += 1
            self.left_index.insert_columns(keys, cols, mults)
        else:
            keys = delta.key_column(self.right_key)
            left = self.left_index.get
            right_store = self.right_index
            pos = 0
            for key, multiplicity in zip(keys, mults):
                suffix = tuple(cols[i][pos] for i in extra)
                bucket = left(key)
                if bucket is not None:
                    for left_row, m in bucket.items():
                        out_rows.append(left_row + suffix)
                        out_mults.append(multiplicity * m)
                before = right_store.key_weight(key)
                right_store.insert_payload(key, suffix, multiplicity)
                after = before + multiplicity
                if bucket is not None:
                    if before == 0 and after > 0:
                        for left_row, m in bucket.items():
                            out_rows.append(left_row + nulls)
                            out_mults.append(-m)
                    elif before > 0 and after == 0:
                        for left_row, m in bucket.items():
                            out_rows.append(left_row + nulls)
                            out_mults.append(m)
                pos += 1
        self.emit(
            ColumnDelta.from_rows(out_rows, out_mults, len(self.schema.names))
        )

    def state_delta(self) -> Delta:
        out = Delta()
        for key, bucket in self.left_index.items():
            matches = self.right_index.get(key)
            if matches:
                for row, multiplicity in bucket.items():
                    for other, m2 in matches.items():
                        out.add(self._merge(row, other), multiplicity * m2)
            else:
                for row, multiplicity in bucket.items():
                    out.add(row + self._nulls, multiplicity)
        return out

    def memory_size(self) -> int:
        if self.columnar_memories:
            # the dissolved count map's entries are the store's distinct keys
            return (
                self.left_index.size()
                + self.right_index.size()
                + len(self.right_index.index)
            )
        return (
            sum(len(b) for b in self.left_index.values())
            + sum(len(b) for b in self.right_index.values())
            + len(self.right_counts)
        )

    def memory_cells(self) -> int:
        if self.columnar_memories:
            return self.left_index.cells() + self.right_index.cells()
        return sum(
            len(row)
            for index in (self.left_index, self.right_index)
            for bucket in index.values()
            for row in bucket
        ) + sum(len(key) for key in self.right_counts)


class UnionNode(Node):
    """∪ — bag union; the right side is permuted into the left layout."""

    def __init__(self, schema, right_permutation: tuple[int, ...]):
        super().__init__(schema)
        self.right_permutation = right_permutation
        # UNION arms frequently list columns in the same order; rebuilding
        # every tuple through an identity permutation is pure overhead
        self._identity = right_permutation == tuple(range(len(right_permutation)))

    def transform(self, delta: "Delta | ColumnDelta", side: int):
        if side == LEFT or self._identity:
            if type(delta) is ColumnDelta:
                return delta  # pass-through: columns are immutable downstream
            out = Delta()
            out.update(delta)  # empty-destination bulk copy, no per-row adds
            return out
        if type(delta) is ColumnDelta:
            # zero-copy column projection: permute the column list itself
            return ColumnDelta(
                [delta.columns[i] for i in self.right_permutation],
                delta.mults,
                delta.width,
            )
        out = Delta()
        for row, multiplicity in delta.items():
            out.add(tuple(row[i] for i in self.right_permutation), multiplicity)
        return out

    def apply(self, delta: "Delta | ColumnDelta", side: int) -> None:
        self.emit(self.transform(delta, side))
