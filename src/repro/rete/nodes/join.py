"""Binary beta nodes: natural join, antijoin, left outer join, union.

All four maintain per-side memories indexed by the shared (natural-join)
attributes and follow the sequential counting rule — an incoming delta is
joined against the *other* side's current memory, then folded into this
side's memory (see :mod:`.base`).

Each node has two inner loops per side: the row-at-a-time loop over a
:class:`~repro.rete.deltas.Delta` and a batch-at-a-time loop over a
:class:`~repro.rete.deltas.ColumnDelta` — key columns are extracted with
one C-level transpose, hash probes run over the prebuilt key column, and
memory folds use the bulk :func:`~repro.rete.deltas.index_update`.  All
four maintenance rules are linear in row occurrences, so the columnar
loops are exact on unconsolidated batches (duplicate occurrences sum; any
compensating output pairs cancel at the next consolidation boundary).
"""

from __future__ import annotations

from ..deltas import ColumnDelta, Delta, index_insert, index_update
from .base import LEFT, Node

Index = dict  # key -> {row: multiplicity}


class JoinNode(Node):
    """⋈ — natural join with two hash memories."""

    def __init__(self, schema, left_key: list[int], right_key: list[int], right_extra: list[int]):
        super().__init__(schema)
        self.left_key = left_key
        self.right_key = right_key
        self.right_extra = right_extra
        self.left_index: Index = {}
        self.right_index: Index = {}

    def _merge(self, left_row: tuple, right_row: tuple) -> tuple:
        return left_row + tuple(right_row[i] for i in self.right_extra)

    def apply(self, delta: "Delta | ColumnDelta", side: int) -> None:
        if type(delta) is ColumnDelta:
            self._apply_columnar(delta, side)
            return
        out = Delta()
        if side == LEFT:
            for row, multiplicity in delta.items():
                key = tuple(row[i] for i in self.left_key)
                for other, m2 in self.right_index.get(key, {}).items():
                    out.add(self._merge(row, other), multiplicity * m2)
                index_insert(self.left_index, key, row, multiplicity)
        else:
            for row, multiplicity in delta.items():
                key = tuple(row[i] for i in self.right_key)
                for other, m2 in self.left_index.get(key, {}).items():
                    out.add(self._merge(other, row), multiplicity * m2)
                index_insert(self.right_index, key, row, multiplicity)
        self.emit(out)

    def _apply_columnar(self, delta: ColumnDelta, side: int) -> None:
        rows = delta.rows()
        mults = delta.mults
        extra = self.right_extra
        out_rows: list[tuple] = []
        out_mults: list[int] = []
        append_row = out_rows.append
        append_mult = out_mults.append
        if side == LEFT:
            keys = delta.key_column(self.left_key)
            probe = self.right_index.get
            for key, row, multiplicity in zip(keys, rows, mults):
                bucket = probe(key)
                if bucket:
                    for other, m2 in bucket.items():
                        append_row(row + tuple(other[i] for i in extra))
                        append_mult(multiplicity * m2)
            index_update(self.left_index, keys, rows, mults)
        else:
            keys = delta.key_column(self.right_key)
            probe = self.left_index.get
            for key, row, multiplicity in zip(keys, rows, mults):
                bucket = probe(key)
                if bucket:
                    suffix = tuple(row[i] for i in extra)
                    for other, m2 in bucket.items():
                        append_row(other + suffix)
                        append_mult(multiplicity * m2)
            index_update(self.right_index, keys, rows, mults)
        self.emit(
            ColumnDelta.from_rows(out_rows, out_mults, len(self.schema.names))
        )

    def state_delta(self) -> Delta:
        out = Delta()
        for key, bucket in self.left_index.items():
            matches = self.right_index.get(key)
            if not matches:
                continue
            for row, multiplicity in bucket.items():
                for other, m2 in matches.items():
                    out.add(self._merge(row, other), multiplicity * m2)
        return out

    def memory_size(self) -> int:
        return sum(len(b) for b in self.left_index.values()) + sum(
            len(b) for b in self.right_index.values()
        )


    def memory_cells(self) -> int:
        return sum(
            len(row)
            for index in (self.left_index, self.right_index)
            for bucket in index.values()
            for row in bucket
        )


class AntiJoinNode(Node):
    """▷ — left rows whose key has no right partner.

    Right memory stores aggregate multiplicity per key; left rows toggle
    in or out of the result when that count crosses zero."""

    def __init__(self, schema, left_key: list[int], right_key: list[int]):
        super().__init__(schema)
        self.left_key = left_key
        self.right_key = right_key
        self.left_index: Index = {}
        self.right_counts: dict[tuple, int] = {}

    def apply(self, delta: "Delta | ColumnDelta", side: int) -> None:
        if type(delta) is ColumnDelta:
            self._apply_columnar(delta, side)
            return
        out = Delta()
        if side == LEFT:
            for row, multiplicity in delta.items():
                key = tuple(row[i] for i in self.left_key)
                if self.right_counts.get(key, 0) == 0:
                    out.add(row, multiplicity)
                index_insert(self.left_index, key, row, multiplicity)
        else:
            for row, multiplicity in delta.items():
                key = tuple(row[i] for i in self.right_key)
                before = self.right_counts.get(key, 0)
                after = before + multiplicity
                if after:
                    self.right_counts[key] = after
                else:
                    self.right_counts.pop(key, None)
                if before == 0 and after > 0:
                    for left_row, m in self.left_index.get(key, {}).items():
                        out.add(left_row, -m)
                elif before > 0 and after == 0:
                    for left_row, m in self.left_index.get(key, {}).items():
                        out.add(left_row, m)
        self.emit(out)

    def _apply_columnar(self, delta: ColumnDelta, side: int) -> None:
        mults = delta.mults
        out_rows: list[tuple] = []
        out_mults: list[int] = []
        if side == LEFT:
            keys = delta.key_column(self.left_key)
            rows = delta.rows()
            unmatched = self.right_counts.get
            for key, row, multiplicity in zip(keys, rows, mults):
                if unmatched(key, 0) == 0:
                    out_rows.append(row)
                    out_mults.append(multiplicity)
            index_update(self.left_index, keys, rows, mults)
        else:
            keys = delta.key_column(self.right_key)
            counts = self.right_counts
            left = self.left_index.get
            for key, multiplicity in zip(keys, mults):
                before = counts.get(key, 0)
                after = before + multiplicity
                if after:
                    counts[key] = after
                else:
                    counts.pop(key, None)
                if before == 0 and after > 0:
                    for left_row, m in left(key, {}).items():
                        out_rows.append(left_row)
                        out_mults.append(-m)
                elif before > 0 and after == 0:
                    for left_row, m in left(key, {}).items():
                        out_rows.append(left_row)
                        out_mults.append(m)
        self.emit(
            ColumnDelta.from_rows(out_rows, out_mults, len(self.schema.names))
        )

    def state_delta(self) -> Delta:
        out = Delta()
        for key, bucket in self.left_index.items():
            if self.right_counts.get(key, 0) == 0:
                for row, multiplicity in bucket.items():
                    out.add(row, multiplicity)
        return out

    def memory_size(self) -> int:
        return sum(len(b) for b in self.left_index.values()) + len(self.right_counts)

    def memory_cells(self) -> int:
        return sum(
            len(row) for bucket in self.left_index.values() for row in bucket
        ) + sum(len(key) for key in self.right_counts)


class LeftOuterJoinNode(Node):
    """⟕ — natural join plus null-padded rows for unmatched left rows."""

    def __init__(
        self,
        schema,
        left_key: list[int],
        right_key: list[int],
        right_extra: list[int],
    ):
        super().__init__(schema)
        self.left_key = left_key
        self.right_key = right_key
        self.right_extra = right_extra
        self.left_index: Index = {}
        self.right_index: Index = {}
        self.right_counts: dict[tuple, int] = {}
        self._nulls = ()  # set by network builder via configure_nulls

    def configure_nulls(self, width: int) -> None:
        self._nulls = (None,) * width

    def _merge(self, left_row: tuple, right_row: tuple) -> tuple:
        return left_row + tuple(right_row[i] for i in self.right_extra)

    def apply(self, delta: "Delta | ColumnDelta", side: int) -> None:
        if type(delta) is ColumnDelta:
            self._apply_columnar(delta, side)
            return
        out = Delta()
        if side == LEFT:
            for row, multiplicity in delta.items():
                key = tuple(row[i] for i in self.left_key)
                matches = self.right_index.get(key)
                if matches:
                    for other, m2 in matches.items():
                        out.add(self._merge(row, other), multiplicity * m2)
                else:
                    out.add(row + self._nulls, multiplicity)
                index_insert(self.left_index, key, row, multiplicity)
        else:
            for row, multiplicity in delta.items():
                key = tuple(row[i] for i in self.right_key)
                left_rows = self.left_index.get(key, {})
                for left_row, m in left_rows.items():
                    out.add(self._merge(left_row, row), multiplicity * m)
                before = self.right_counts.get(key, 0)
                after = before + multiplicity
                if after:
                    self.right_counts[key] = after
                else:
                    self.right_counts.pop(key, None)
                index_insert(self.right_index, key, row, multiplicity)
                if before == 0 and after > 0:
                    for left_row, m in left_rows.items():
                        out.add(left_row + self._nulls, -m)
                elif before > 0 and after == 0:
                    for left_row, m in left_rows.items():
                        out.add(left_row + self._nulls, m)
        self.emit(out)

    def _apply_columnar(self, delta: ColumnDelta, side: int) -> None:
        rows = delta.rows()
        mults = delta.mults
        extra = self.right_extra
        nulls = self._nulls
        out_rows: list[tuple] = []
        out_mults: list[int] = []
        if side == LEFT:
            keys = delta.key_column(self.left_key)
            probe = self.right_index.get
            for key, row, multiplicity in zip(keys, rows, mults):
                matches = probe(key)
                if matches:
                    for other, m2 in matches.items():
                        out_rows.append(row + tuple(other[i] for i in extra))
                        out_mults.append(multiplicity * m2)
                else:
                    out_rows.append(row + nulls)
                    out_mults.append(multiplicity)
            index_update(self.left_index, keys, rows, mults)
        else:
            # the right side interleaves count transitions with memory folds
            # per row occurrence (exactly the row loop's discipline), with
            # the key column prebuilt and the dict probes hoisted
            keys = delta.key_column(self.right_key)
            counts = self.right_counts
            left = self.left_index.get
            right_index = self.right_index
            for key, row, multiplicity in zip(keys, rows, mults):
                left_rows = left(key, {})
                suffix = tuple(row[i] for i in extra)
                for left_row, m in left_rows.items():
                    out_rows.append(left_row + suffix)
                    out_mults.append(multiplicity * m)
                before = counts.get(key, 0)
                after = before + multiplicity
                if after:
                    counts[key] = after
                else:
                    counts.pop(key, None)
                index_insert(right_index, key, row, multiplicity)
                if before == 0 and after > 0:
                    for left_row, m in left_rows.items():
                        out_rows.append(left_row + nulls)
                        out_mults.append(-m)
                elif before > 0 and after == 0:
                    for left_row, m in left_rows.items():
                        out_rows.append(left_row + nulls)
                        out_mults.append(m)
        self.emit(
            ColumnDelta.from_rows(out_rows, out_mults, len(self.schema.names))
        )

    def state_delta(self) -> Delta:
        out = Delta()
        for key, bucket in self.left_index.items():
            matches = self.right_index.get(key)
            if matches:
                for row, multiplicity in bucket.items():
                    for other, m2 in matches.items():
                        out.add(self._merge(row, other), multiplicity * m2)
            else:
                for row, multiplicity in bucket.items():
                    out.add(row + self._nulls, multiplicity)
        return out

    def memory_size(self) -> int:
        return (
            sum(len(b) for b in self.left_index.values())
            + sum(len(b) for b in self.right_index.values())
            + len(self.right_counts)
        )


    def memory_cells(self) -> int:
        return sum(
            len(row)
            for index in (self.left_index, self.right_index)
            for bucket in index.values()
            for row in bucket
        ) + sum(len(key) for key in self.right_counts)


class UnionNode(Node):
    """∪ — bag union; the right side is permuted into the left layout."""

    def __init__(self, schema, right_permutation: tuple[int, ...]):
        super().__init__(schema)
        self.right_permutation = right_permutation
        # UNION arms frequently list columns in the same order; rebuilding
        # every tuple through an identity permutation is pure overhead
        self._identity = right_permutation == tuple(range(len(right_permutation)))

    def transform(self, delta: "Delta | ColumnDelta", side: int):
        if side == LEFT or self._identity:
            if type(delta) is ColumnDelta:
                return delta  # pass-through: columns are immutable downstream
            out = Delta()
            out.update(delta)  # empty-destination bulk copy, no per-row adds
            return out
        if type(delta) is ColumnDelta:
            # zero-copy column projection: permute the column list itself
            return ColumnDelta(
                [delta.columns[i] for i in self.right_permutation],
                delta.mults,
                delta.width,
            )
        out = Delta()
        for row, multiplicity in delta.items():
            out.add(tuple(row[i] for i in self.right_permutation), multiplicity)
        return out

    def apply(self, delta: "Delta | ColumnDelta", side: int) -> None:
        self.emit(self.transform(delta, side))
