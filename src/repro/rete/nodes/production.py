"""Production node: the materialised view at the network's root."""

from __future__ import annotations

from typing import Callable

from ..deltas import (
    ColumnDelta,
    Delta,
    as_row_delta,
    interned_bag_insert,
    merged,
)
from .base import Node

ChangeCallback = Callable[[Delta], None]


class ProductionNode(Node):
    """Holds the view's bag of result rows and notifies subscribers.

    In per-event mode every applied delta fires the change callbacks
    immediately.  During a batch (``begin_batch`` … ``end_batch``) the
    partial output deltas are buffered instead and the callbacks fire
    exactly once, at ``end_batch``, with the consolidated net delta — or
    not at all when the batch nets to nothing.
    """

    def __init__(self, schema, interner=None):
        super().__init__(schema)
        self.results: dict[tuple, int] = {}
        #: result-bag keys are interned through the engine row pool when
        #: given (see :class:`~repro.rete.deltas.RowInterner`)
        self.interner = interner
        self._callbacks: list[ChangeCallback] = []
        self._batch_depth = 0
        self._pending: list[Delta] = []

    def on_change(self, callback: ChangeCallback) -> None:
        self._callbacks.append(callback)

    def begin_batch(self) -> None:
        """Start buffering change notifications (re-entrant)."""
        self._batch_depth += 1

    def end_batch(self) -> None:
        """Fire callbacks once with the batch's net output delta."""
        self._batch_depth -= 1
        if self._batch_depth > 0:
            return
        pending, self._pending = self._pending, []
        net = merged(pending)
        if net:
            for callback in self._callbacks:
                callback(net)

    def apply(self, delta: "Delta | ColumnDelta", side: int) -> None:
        # transition-sensitive boundary: consolidate columnar batches so a
        # transient delete/insert pair can never trip the negative check
        delta = as_row_delta(delta)
        real = Delta()
        interner = self.interner
        for row, multiplicity in delta.items():
            before = self.results.get(row, 0)
            after = interned_bag_insert(self.results, row, multiplicity, interner)
            if after < 0:
                raise AssertionError(
                    f"view multiplicity went negative for row {row!r}"
                )
            if after != before:
                real.add(row, after - before)
        if real:
            if self._batch_depth > 0:
                self._pending.append(real)
            else:
                for callback in self._callbacks:
                    callback(real)

    def dispose(self) -> None:
        if self.interner is not None:
            self.interner.release_all(self.results)

    def multiset(self) -> dict[tuple, int]:
        return dict(self.results)

    def memory_size(self) -> int:
        return len(self.results)

    def memory_cells(self) -> int:
        return sum(len(row) for row in self.results)
