"""Production node: the materialised view at the network's root."""

from __future__ import annotations

from typing import Callable

from ..deltas import Delta, bag_insert
from .base import Node

ChangeCallback = Callable[[Delta], None]


class ProductionNode(Node):
    """Holds the view's bag of result rows and notifies subscribers."""

    def __init__(self, schema):
        super().__init__(schema)
        self.results: dict[tuple, int] = {}
        self._callbacks: list[ChangeCallback] = []

    def on_change(self, callback: ChangeCallback) -> None:
        self._callbacks.append(callback)

    def apply(self, delta: Delta, side: int) -> None:
        real = Delta()
        for row, multiplicity in delta.items():
            before = self.results.get(row, 0)
            after = bag_insert(self.results, row, multiplicity)
            if after < 0:
                raise AssertionError(
                    f"view multiplicity went negative for row {row!r}"
                )
            if after != before:
                real.add(row, after - before)
        if real:
            for callback in self._callbacks:
                callback(real)

    def multiset(self) -> dict[tuple, int]:
        return dict(self.results)

    def memory_size(self) -> int:
        return len(self.results)

    def memory_cells(self) -> int:
        return sum(len(row) for row in self.results)
