"""Incremental transitive closure (⋈*) — maintenance of atomic paths.

The paper's central design decision (§4): paths are *atomic* list values —
inserted and deleted as units, never patched.  This node materialises every
**trail** (edge-distinct walk, Cypher's variable-length-pattern semantics)
of the traversal graph, indexed three ways:

* by start vertex — to join with left rows,
* by end vertex — to extend on edge insertion,
* by member edge — to retract atomically on edge deletion.

Edge insertion ``(u —e→ v)`` derives exactly the new trails
``p1 · e · p2`` where ``p1`` ends at ``u``, ``p2`` starts at ``v`` (either
may be the empty trail at that vertex), ``e ∉ p1 ∪ p2`` and
``edges(p1) ∩ edges(p2) = ∅``.  Every trail containing the new edge
decomposes *uniquely* this way around ``e``, so the rule is complete and
duplicate-free; incremental transitive computability beyond first-order
logic follows the approach of Bergmann et al. (paper ref [3]).

Edge deletion retracts ``trails_by_edge[e]`` — the paper's "the previous
path has to be deleted and the new one inserted" as an index lookup.

A cheaper pair-counting alternative (for queries that never observe the
path) lives in :class:`ReachabilityNode`; the trade-off is benchmarked as
ablation D2.
"""

from __future__ import annotations

from ...graph.values import PathValue
from ..deltas import ColumnDelta, Delta, as_row_delta, interned_index_insert
from .base import LEFT, Node

EDGES = 1


class TransitiveClosureNode(Node):
    """⋈* with full trail materialisation (default mode)."""

    def __init__(
        self,
        schema,
        source_index: int,
        direction: str,
        min_hops: int,
        max_hops: int | None,
        emit_path: bool,
        interner=None,
    ):
        super().__init__(schema)
        self.source_index = source_index
        self.direction = direction
        self.min_hops = min_hops
        self.max_hops = max_hops
        self.emit_path = emit_path
        #: left rows are interned through the engine row pool when given
        self.interner = interner
        # left memory: source vertex -> {left row: multiplicity}
        self.left_index: dict[int, dict[tuple, int]] = {}
        # trail store, triple-indexed
        self.trails_by_start: dict[int, set[PathValue]] = {}
        self.trails_by_end: dict[int, set[PathValue]] = {}
        self.trails_by_edge: dict[int, set[PathValue]] = {}

    # -- trail bookkeeping ---------------------------------------------------

    def _store(self, trail: PathValue) -> None:
        self.trails_by_start.setdefault(trail.start, set()).add(trail)
        self.trails_by_end.setdefault(trail.end, set()).add(trail)
        for edge in trail.edges:
            self.trails_by_edge.setdefault(edge, set()).add(trail)

    def _discard(self, trail: PathValue) -> None:
        self.trails_by_start[trail.start].discard(trail)
        self.trails_by_end[trail.end].discard(trail)
        for edge in trail.edges:
            bucket = self.trails_by_edge.get(edge)
            if bucket is not None:
                bucket.discard(trail)
                if not bucket:
                    del self.trails_by_edge[edge]

    def _new_trails(self, u: int, e: int, v: int) -> list[PathValue]:
        """All trails created by inserting arc ``u —e→ v``."""
        empty_u = PathValue((u,), ())
        empty_v = PathValue((v,), ())
        prefixes = list(self.trails_by_end.get(u, ())) + [empty_u]
        suffixes = list(self.trails_by_start.get(v, ())) + [empty_v]
        out: list[PathValue] = []
        cap = self.max_hops
        for p1 in prefixes:
            edges1 = set(p1.edges)
            if e in edges1:
                continue
            for p2 in suffixes:
                length = len(p1) + 1 + len(p2)
                if cap is not None and length > cap:
                    continue
                if e in p2.edges:
                    continue
                if edges1 and edges1.intersection(p2.edges):
                    continue
                out.append(
                    PathValue(
                        p1.vertices + p2.vertices,
                        p1.edges + (e,) + p2.edges,
                    )
                )
        return out

    # -- output emission -------------------------------------------------------

    def _out_row(self, left_row: tuple, trail: PathValue) -> tuple:
        if self.emit_path:
            return left_row + (trail.end, trail)
        return left_row + (trail.end,)

    def _emit_trail_delta(self, out: Delta, trail: PathValue, sign: int) -> None:
        if len(trail) < self.min_hops:
            return
        for left_row, multiplicity in self.left_index.get(trail.start, {}).items():
            out.add(self._out_row(left_row, trail), sign * multiplicity)

    # -- delta application --------------------------------------------------------

    def apply(self, delta: "Delta | ColumnDelta", side: int) -> None:
        # transition-sensitive boundary: trail derivation replays edge
        # occurrences one at a time, so columnar batches consolidate at entry
        delta = as_row_delta(delta)
        out = Delta()
        if side == LEFT:
            for row, multiplicity in delta.items():
                source = row[self.source_index]
                if source is None or not isinstance(source, int):
                    continue
                if self.min_hops == 0:
                    zero = PathValue((source,), ())
                    out.add(self._out_row(row, zero), multiplicity)
                for trail in self.trails_by_start.get(source, ()):
                    if len(trail) >= self.min_hops:
                        out.add(self._out_row(row, trail), multiplicity)
                interned_index_insert(
                    self.left_index, source, row, multiplicity, self.interner
                )
        else:
            for row, multiplicity in delta.items():
                s, e, t = row[0], row[1], row[2]
                if multiplicity > 0:
                    for _ in range(multiplicity):
                        self._insert_edge(s, e, t, out)
                else:
                    for _ in range(-multiplicity):
                        self._remove_edge(e, out)
        self.emit(out)

    def _arcs_for(self, s: int, t: int) -> list[tuple[int, int]]:
        if self.direction == "out":
            return [(s, t)]
        if self.direction == "in":
            return [(t, s)]
        if s == t:
            return [(s, t)]
        return [(s, t), (t, s)]

    def _insert_edge(self, s: int, e: int, t: int, out: Delta) -> None:
        for u, v in self._arcs_for(s, t):
            created = self._new_trails(u, e, v)
            for trail in created:
                self._store(trail)
                self._emit_trail_delta(out, trail, 1)

    def _remove_edge(self, e: int, out: Delta) -> None:
        doomed = list(self.trails_by_edge.get(e, ()))
        for trail in doomed:
            self._discard(trail)
            self._emit_trail_delta(out, trail, -1)
        self.trails_by_edge.pop(e, None)

    def dispose(self) -> None:
        if self.interner is not None:
            self.interner.release_all(
                row for bucket in self.left_index.values() for row in bucket
            )

    def state_delta(self) -> Delta:
        out = Delta()
        for source, rows in self.left_index.items():
            trails = [
                trail
                for trail in self.trails_by_start.get(source, ())
                if len(trail) >= self.min_hops
            ]
            for row, multiplicity in rows.items():
                if self.min_hops == 0:
                    zero = PathValue((source,), ())
                    out.add(self._out_row(row, zero), multiplicity)
                for trail in trails:
                    out.add(self._out_row(row, trail), multiplicity)
        return out

    def memory_size(self) -> int:
        return sum(len(s) for s in self.trails_by_start.values()) + sum(
            len(b) for b in self.left_index.values()
        )

    def memory_cells(self) -> int:
        trail_cells = sum(
            len(t.vertices) + len(t.edges)
            for trails in self.trails_by_start.values()
            for t in trails
        )
        left_cells = sum(
            len(row) for bucket in self.left_index.values() for row in bucket
        )
        return trail_cells + left_cells


class ReachabilityNode(Node):
    """⋈* in pair mode — ablation D2 (cf. Bergmann et al. [3]).

    Maintains only ``(source, target)`` reachability with multiplicity 1,
    recomputing the reachable set of each *active* source (sources present
    in the left memory) by BFS when the edge set changes.  Valid only when
    the query never observes the path value and deduplicates results (the
    engine's ``transitive_mode="reachability"`` opt-in); supports
    ``min_hops <= 1`` and no ``max_hops`` cap.
    """

    def __init__(
        self,
        schema,
        source_index: int,
        direction: str,
        min_hops: int,
        interner=None,
    ):
        if min_hops > 1:
            raise ValueError("reachability mode supports min_hops <= 1 only")
        super().__init__(schema)
        self.source_index = source_index
        self.direction = direction
        self.min_hops = min_hops
        self.interner = interner
        self.left_index: dict[int, dict[tuple, int]] = {}
        self.arcs: dict[int, dict[int, set[int]]] = {}  # u -> v -> {edge ids}
        self.reachable: dict[int, set[int]] = {}  # source -> targets

    def _add_arc(self, u: int, v: int, e: int) -> None:
        self.arcs.setdefault(u, {}).setdefault(v, set()).add(e)

    def _remove_arc(self, u: int, v: int, e: int) -> None:
        targets = self.arcs.get(u)
        if not targets:
            return
        edges = targets.get(v)
        if not edges:
            return
        edges.discard(e)
        if not edges:
            del targets[v]
            if not targets:
                del self.arcs[u]

    def _bfs(self, source: int) -> set[int]:
        seen: set[int] = set()
        frontier = [source]
        visited = {source}
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in self.arcs.get(u, {}):
                    if v not in seen:
                        seen.add(v)
                    if v not in visited:
                        visited.add(v)
                        nxt.append(v)
            frontier = nxt
        if self.min_hops == 0:
            seen.add(source)
        return seen

    def _emit_target_diff(
        self, out: Delta, source: int, before: set[int], after: set[int]
    ) -> None:
        rows = self.left_index.get(source, {})
        for target in after - before:
            for left_row, m in rows.items():
                out.add(left_row + (target,), m)
        for target in before - after:
            for left_row, m in rows.items():
                out.add(left_row + (target,), -m)

    def apply(self, delta: "Delta | ColumnDelta", side: int) -> None:
        # transition-sensitive boundary (same rule as the trail mode above)
        delta = as_row_delta(delta)
        out = Delta()
        if side == LEFT:
            for row, multiplicity in delta.items():
                source = row[self.source_index]
                if source is None or not isinstance(source, int):
                    continue
                first_row_for_source = source not in self.reachable
                if first_row_for_source:
                    self.reachable[source] = self._bfs(source)
                for target in self.reachable[source]:
                    out.add(row + (target,), multiplicity)
                interned_index_insert(
                    self.left_index, source, row, multiplicity, self.interner
                )
                if source not in self.left_index:
                    del self.reachable[source]
        else:
            for row, multiplicity in delta.items():
                s, e, t = row[0], row[1], row[2]
                arcs = (
                    [(s, t)]
                    if self.direction == "out"
                    else [(t, s)]
                    if self.direction == "in"
                    else ([(s, t)] if s == t else [(s, t), (t, s)])
                )
                for u, v in arcs:
                    if multiplicity > 0:
                        self._add_arc(u, v, e)
                    else:
                        self._remove_arc(u, v, e)
            for source in list(self.reachable):
                before = self.reachable[source]
                after = self._bfs(source)
                if before != after:
                    self._emit_target_diff(out, source, before, after)
                    self.reachable[source] = after
        self.emit(out)

    def dispose(self) -> None:
        if self.interner is not None:
            self.interner.release_all(
                row for bucket in self.left_index.values() for row in bucket
            )

    def state_delta(self) -> Delta:
        out = Delta()
        for source, rows in self.left_index.items():
            targets = self.reachable.get(source, ())
            for row, multiplicity in rows.items():
                for target in targets:
                    out.add(row + (target,), multiplicity)
        return out

    def memory_size(self) -> int:
        return sum(len(v) for v in self.reachable.values()) + sum(
            len(b) for b in self.left_index.values()
        )

    def memory_cells(self) -> int:
        return 2 * sum(len(v) for v in self.reachable.values()) + sum(
            len(row) for bucket in self.left_index.values() for row in bucket
        )
