"""Stateless and lightly-stateful unary nodes: σ, π, δ (dedup), unwind."""

from __future__ import annotations

from typing import Any

from ...algebra.expressions import CompiledExpr, EvalContext
from ...graph.values import ListValue, freeze_value
from ..deltas import Delta, bag_insert
from .base import Node

#: atom types whose Python hashing/equality agree with Cypher ``=`` closely
#: enough for value-index bucketing (a bucket is only ever a *candidate*
#: set — the full predicate re-confirms every hit, so Python's coarser
#: ``1 == True == 1.0`` conflation merely over-approximates, never corrupts)
_INDEXABLE_ATOMS = (bool, int, float, str)

#: shared empty context for evaluating parameter-free expressions
_NO_PARAMS = EvalContext({})


class SelectionNode(Node):
    """σ — forwards rows whose predicate is exactly ``true``.

    Stateless: deltas filter the same way in both directions, so a
    retraction of a previously-passed row passes again and cancels
    downstream (counting maintenance of σ)."""

    def __init__(self, schema, predicate: CompiledExpr, ctx: EvalContext):
        super().__init__(schema)
        self.predicate = predicate
        self.ctx = ctx

    def transform(self, delta: Delta, side: int) -> Delta:
        out = Delta()
        for row, multiplicity in delta.items():
            if self.predicate(row, self.ctx) is True:
                out.add(row, multiplicity)
        return out

    def apply(self, delta: Delta, side: int) -> None:
        self.emit(self.transform(delta, side))


class SelectionPartitionNode(Node):
    """One live binding's output channel of a binding-indexed σ.

    The partition is the *per-binding face* of a shared
    :class:`BindingIndexedSelectionNode`: downstream (per-view) nodes
    subscribe to it, so detaching one binding's view never disturbs the
    subscribers of any other binding.  It is stateless — its current
    output is reconstructed by folding the owner's predicate (under this
    partition's resolved bindings) over the shared core's state, exactly
    the ``transform`` protocol the sharing layer already uses for plain
    stateless nodes.
    """

    def __init__(self, schema, owner: "BindingIndexedSelectionNode", ctx: EvalContext):
        super().__init__(schema)
        self.owner = owner
        self.ctx = ctx

    def passes(self, row: tuple) -> bool:
        return self.owner.predicate(row, self.ctx) is True

    def transform(self, delta: Delta, side: int) -> Delta:
        out = Delta()
        predicate = self.owner.predicate
        ctx = self.ctx
        for row, multiplicity in delta.items():
            if predicate(row, ctx) is True:
                out.add(row, multiplicity)
        return out

    def apply(self, delta: Delta, side: int) -> None:  # pragma: no cover
        raise AssertionError("partitions are fed by their owning node")


class BindingIndexedSelectionNode(Node):
    """Parameterised σ shared across *differing* bindings (value-indexed).

    One node serves every live binding of a parameterised selection: it is
    fed once by the shared binding-free core below the σ, and keeps one
    :class:`SelectionPartitionNode` per binding as its output partitions.
    When the predicate contains an ``expr = $param`` conjunct, partitions
    are indexed by their binding's value for that parameter, so routing an
    input row costs one discriminant evaluation plus a dict probe —
    O(matching bindings), not O(live bindings) — the alpha-memory hashing
    trick that makes "the same view once per user" affordable.  Buckets
    are candidate sets only: the full predicate re-confirms each hit under
    the partition's own bindings, so index coarseness (Python equality vs
    Cypher ``=``) can never leak a row into the wrong binding.

    Partitions whose indexed binding is null or a collection — and every
    partition when no equality conjunct exists — fall back to the scan
    list, which evaluates the predicate per partition exactly like today's
    per-binding σ nodes (still sharing the core's memory and per-event
    translation work).
    """

    def __init__(
        self,
        schema,
        predicate: CompiledExpr,
        param_order: tuple[str, ...],
        discriminant: "tuple[int, CompiledExpr] | None" = None,
    ):
        super().__init__(schema)
        self.predicate = predicate
        #: the creating view's parameter names, in generalised (first
        #: occurrence) order — later views translate their own names to
        #: these positions when a partition's evaluation context is built
        self.param_order = param_order
        if discriminant is None:
            self._disc_name: str | None = None
            self._disc_expr: CompiledExpr | None = None
        else:
            position, expr = discriminant
            self._disc_name = param_order[position]
            self._disc_expr = expr
        self._partitions: dict[tuple, SelectionPartitionNode] = {}
        #: atomic indexed-binding value → candidate partitions
        self._index: dict[Any, list[SelectionPartitionNode]] = {}
        #: partitions the index cannot discriminate (no equality conjunct,
        #: null or collection binding) — always evaluated
        self._scan: list[SelectionPartitionNode] = []

    # -- partition lifecycle -------------------------------------------------

    def _index_value(self, facade: SelectionPartitionNode):
        """(indexable, value) classification of one partition's binding."""
        if self._disc_name is None:
            return False, None
        value = freeze_value(facade.ctx.parameters.get(self._disc_name))
        if value is None or not isinstance(value, _INDEXABLE_ATOMS):
            return False, None
        return True, value

    def add_partition(self, binding: tuple, facade: SelectionPartitionNode) -> None:
        self._partitions[binding] = facade
        indexable, value = self._index_value(facade)
        if indexable:
            self._index.setdefault(value, []).append(facade)
        else:
            self._scan.append(facade)

    def remove_partition(self, binding: tuple) -> None:
        facade = self._partitions.pop(binding)
        indexable, value = self._index_value(facade)
        if indexable:
            bucket = self._index[value]
            bucket.remove(facade)
            if not bucket:
                del self._index[value]
        else:
            self._scan.remove(facade)

    @property
    def has_partitions(self) -> bool:
        return bool(self._partitions)

    @property
    def partition_count(self) -> int:
        return len(self._partitions)

    # -- propagation ---------------------------------------------------------

    def _candidates(self, row: tuple):
        try:
            value = self._disc_expr(row, _NO_PARAMS)
        except Exception:
            # the predicate would raise the same way per partition; let the
            # scan below reproduce the baseline behaviour faithfully
            return self._partitions.values()
        if value is None:
            # ``expr = $param`` is unknown for null, never true: no binding
            # can accept this row through the indexed conjunct
            return ()
        if isinstance(value, _INDEXABLE_ATOMS):
            # atomic row value: collection/null bindings can never equal it
            # (Cypher cross-type equality is false), so scan-list partitions
            # need no look
            return self._index.get(value, ())
        # collection-valued row: only collection bindings can match
        return self._scan

    def apply(self, delta: Delta, side: int) -> None:
        if not self._partitions:
            return
        if self._disc_expr is None:
            for facade in self._partitions.values():
                facade.emit(facade.transform(delta, side))
            return
        routed: dict[int, tuple[SelectionPartitionNode, Delta]] = {}
        for row, multiplicity in delta.items():
            for facade in self._candidates(row):
                if facade.passes(row):
                    slot = routed.get(id(facade))
                    if slot is None:
                        slot = (facade, Delta())
                        routed[id(facade)] = slot
                    slot[1].add(row, multiplicity)
        for facade, out in routed.values():
            facade.emit(out)


class ProjectionNode(Node):
    """π — maps each row through compiled item expressions (bag π:
    multiplicities are preserved, collisions accumulate)."""

    def __init__(self, schema, items: list[CompiledExpr], ctx: EvalContext):
        super().__init__(schema)
        self.items = items
        self.ctx = ctx

    def transform(self, delta: Delta, side: int) -> Delta:
        out = Delta()
        for row, multiplicity in delta.items():
            out.add(tuple(fn(row, self.ctx) for fn in self.items), multiplicity)
        return out

    def apply(self, delta: Delta, side: int) -> None:
        self.emit(self.transform(delta, side))


class DedupNode(Node):
    """δ — collapses multiplicities to one; emits only 0↔positive edges."""

    def __init__(self, schema):
        super().__init__(schema)
        self.counts: dict[tuple, int] = {}

    def apply(self, delta: Delta, side: int) -> None:
        out = Delta()
        for row, multiplicity in delta.items():
            before = self.counts.get(row, 0)
            after = bag_insert(self.counts, row, multiplicity)
            if before == 0 and after > 0:
                out.add(row, 1)
            elif before > 0 and after == 0:
                out.add(row, -1)
            elif after < 0:
                raise AssertionError(f"negative multiplicity for {row}")
        self.emit(out)

    def state_delta(self) -> Delta:
        out = Delta()
        for row in self.counts:
            out.add(row, 1)
        return out

    def memory_size(self) -> int:
        return len(self.counts)

    def memory_cells(self) -> int:
        return sum(len(row) for row in self.counts)


class UnwindNode(Node):
    """ω — one output row per element of the list value (null/empty: none;
    scalars pass through as a single row, per openCypher)."""

    def __init__(self, schema, expression: CompiledExpr, ctx: EvalContext):
        super().__init__(schema)
        self.expression = expression
        self.ctx = ctx

    def transform(self, delta: Delta, side: int) -> Delta:
        out = Delta()
        for row, multiplicity in delta.items():
            value = self.expression(row, self.ctx)
            if value is None:
                continue
            elements = list(value) if isinstance(value, ListValue) else [value]
            for element in elements:
                out.add(row + (element,), multiplicity)
        return out

    def apply(self, delta: Delta, side: int) -> None:
        self.emit(self.transform(delta, side))
