"""Stateless and lightly-stateful unary nodes: σ, π, δ (dedup), unwind."""

from __future__ import annotations

from ...algebra.expressions import CompiledExpr, EvalContext
from ...graph.values import ListValue
from ..deltas import Delta, bag_insert
from .base import Node


class SelectionNode(Node):
    """σ — forwards rows whose predicate is exactly ``true``.

    Stateless: deltas filter the same way in both directions, so a
    retraction of a previously-passed row passes again and cancels
    downstream (counting maintenance of σ)."""

    def __init__(self, schema, predicate: CompiledExpr, ctx: EvalContext):
        super().__init__(schema)
        self.predicate = predicate
        self.ctx = ctx

    def transform(self, delta: Delta, side: int) -> Delta:
        out = Delta()
        for row, multiplicity in delta.items():
            if self.predicate(row, self.ctx) is True:
                out.add(row, multiplicity)
        return out

    def apply(self, delta: Delta, side: int) -> None:
        self.emit(self.transform(delta, side))


class ProjectionNode(Node):
    """π — maps each row through compiled item expressions (bag π:
    multiplicities are preserved, collisions accumulate)."""

    def __init__(self, schema, items: list[CompiledExpr], ctx: EvalContext):
        super().__init__(schema)
        self.items = items
        self.ctx = ctx

    def transform(self, delta: Delta, side: int) -> Delta:
        out = Delta()
        for row, multiplicity in delta.items():
            out.add(tuple(fn(row, self.ctx) for fn in self.items), multiplicity)
        return out

    def apply(self, delta: Delta, side: int) -> None:
        self.emit(self.transform(delta, side))


class DedupNode(Node):
    """δ — collapses multiplicities to one; emits only 0↔positive edges."""

    def __init__(self, schema):
        super().__init__(schema)
        self.counts: dict[tuple, int] = {}

    def apply(self, delta: Delta, side: int) -> None:
        out = Delta()
        for row, multiplicity in delta.items():
            before = self.counts.get(row, 0)
            after = bag_insert(self.counts, row, multiplicity)
            if before == 0 and after > 0:
                out.add(row, 1)
            elif before > 0 and after == 0:
                out.add(row, -1)
            elif after < 0:
                raise AssertionError(f"negative multiplicity for {row}")
        self.emit(out)

    def state_delta(self) -> Delta:
        out = Delta()
        for row in self.counts:
            out.add(row, 1)
        return out

    def memory_size(self) -> int:
        return len(self.counts)

    def memory_cells(self) -> int:
        return sum(len(row) for row in self.counts)


class UnwindNode(Node):
    """ω — one output row per element of the list value (null/empty: none;
    scalars pass through as a single row, per openCypher)."""

    def __init__(self, schema, expression: CompiledExpr, ctx: EvalContext):
        super().__init__(schema)
        self.expression = expression
        self.ctx = ctx

    def transform(self, delta: Delta, side: int) -> Delta:
        out = Delta()
        for row, multiplicity in delta.items():
            value = self.expression(row, self.ctx)
            if value is None:
                continue
            elements = list(value) if isinstance(value, ListValue) else [value]
            for element in elements:
                out.add(row + (element,), multiplicity)
        return out

    def apply(self, delta: Delta, side: int) -> None:
        self.emit(self.transform(delta, side))
