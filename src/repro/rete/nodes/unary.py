"""Stateless and lightly-stateful unary nodes: σ, π, δ (dedup), unwind.

The stateless nodes (σ, π, ω and the binding-indexed σ's partitions) are
counting-linear, so their ``transform`` accepts both delta representations
and answers in kind: a columnar batch filters/maps column-wise without
per-row dict churn, a row delta takes the original loop.  δ (dedup) is
transition-sensitive and consolidates columnar batches at entry
(:func:`~repro.rete.deltas.as_row_delta`).
"""

from __future__ import annotations

from typing import Any

from ...algebra.expressions import CompiledExpr, EvalContext
from ...graph.values import ListValue, freeze_value
from ..deltas import ColumnDelta, Delta, as_row_delta, interned_bag_insert
from .base import Node

#: atom types whose Python hashing/equality agree with Cypher ``=`` closely
#: enough for value-index bucketing (a bucket is only ever a *candidate*
#: set — the full predicate re-confirms every hit, so Python's coarser
#: ``1 == True == 1.0`` conflation merely over-approximates, never corrupts)
_INDEXABLE_ATOMS = (bool, int, float, str)

#: shared empty context for evaluating parameter-free expressions
_NO_PARAMS = EvalContext({})


class SelectionNode(Node):
    """σ — forwards rows whose predicate is exactly ``true``.

    Stateless: deltas filter the same way in both directions, so a
    retraction of a previously-passed row passes again and cancels
    downstream (counting maintenance of σ).

    ``const_filters`` — ``(column, frozen atom)`` pairs extracted from
    constant equality conjuncts (``n.lang = 'en'``) — run before the
    compiled predicate.  They are *necessary* conditions only: Python
    ``==`` accepts at least everything Cypher ``=`` does on atoms, so a
    prefiltered row can never be one the predicate would have passed, and
    every survivor still runs the full predicate.  On the columnar path
    the prefilter scans the constant's column directly, skipping row
    materialisation for the (typically vast) non-matching majority.
    """

    def __init__(
        self,
        schema,
        predicate: CompiledExpr,
        ctx: EvalContext,
        const_filters: tuple[tuple[int, Any], ...] = (),
    ):
        super().__init__(schema)
        self.predicate = predicate
        self.ctx = ctx
        self.const_filters = const_filters

    def transform(self, delta: "Delta | ColumnDelta", side: int):
        if type(delta) is ColumnDelta:
            return self._transform_columnar(delta)
        out = Delta()
        predicate = self.predicate
        ctx = self.ctx
        filters = self.const_filters
        for row, multiplicity in delta.items():
            if filters and any(row[i] != v for i, v in filters):
                continue
            if predicate(row, ctx) is True:
                out.add(row, multiplicity)
        return out

    def _transform_columnar(self, delta: ColumnDelta) -> ColumnDelta:
        mults = delta.mults
        predicate = self.predicate
        ctx = self.ctx
        out_rows: list[tuple] = []
        out_mults: list[int] = []
        if self.const_filters:
            live: list[int] | None = None
            for col_idx, value in self.const_filters:
                column = delta.columns[col_idx]
                if live is None:
                    live = [i for i, v in enumerate(column) if v == value]
                else:
                    live = [i for i in live if column[i] == value]
                if not live:
                    break
            columns = delta.columns
            for i in live or ():
                row = tuple(column[i] for column in columns)
                if predicate(row, ctx) is True:
                    out_rows.append(row)
                    out_mults.append(mults[i])
        else:
            for row, multiplicity in zip(delta.rows(), mults):
                if predicate(row, ctx) is True:
                    out_rows.append(row)
                    out_mults.append(multiplicity)
        return ColumnDelta.from_rows(out_rows, out_mults, delta.width)

    def apply(self, delta: "Delta | ColumnDelta", side: int) -> None:
        self.emit(self.transform(delta, side))


class SelectionPartitionNode(Node):
    """One live binding's output channel of a binding-indexed σ.

    The partition is the *per-binding face* of a shared
    :class:`BindingIndexedSelectionNode`: downstream (per-view) nodes
    subscribe to it, so detaching one binding's view never disturbs the
    subscribers of any other binding.  It is stateless — its current
    output is reconstructed by folding the owner's predicate (under this
    partition's resolved bindings) over the shared core's state, exactly
    the ``transform`` protocol the sharing layer already uses for plain
    stateless nodes.
    """

    def __init__(self, schema, owner: "BindingIndexedSelectionNode", ctx: EvalContext):
        super().__init__(schema)
        self.owner = owner
        self.ctx = ctx

    def passes(self, row: tuple) -> bool:
        return self.owner.predicate(row, self.ctx) is True

    def transform(self, delta: "Delta | ColumnDelta", side: int):
        predicate = self.owner.predicate
        ctx = self.ctx
        if type(delta) is ColumnDelta:
            out_rows: list[tuple] = []
            out_mults: list[int] = []
            for row, multiplicity in zip(delta.rows(), delta.mults):
                if predicate(row, ctx) is True:
                    out_rows.append(row)
                    out_mults.append(multiplicity)
            return ColumnDelta.from_rows(out_rows, out_mults, delta.width)
        out = Delta()
        for row, multiplicity in delta.items():
            if predicate(row, ctx) is True:
                out.add(row, multiplicity)
        return out

    def apply(self, delta: Delta, side: int) -> None:  # pragma: no cover
        raise AssertionError("partitions are fed by their owning node")


class BindingIndexedSelectionNode(Node):
    """Parameterised σ shared across *differing* bindings (value-indexed).

    One node serves every live binding of a parameterised selection: it is
    fed once by the shared binding-free core below the σ, and keeps one
    :class:`SelectionPartitionNode` per binding as its output partitions.
    When the predicate contains ``expr = $param`` conjuncts, partitions
    are indexed by their binding's *composite* value tuple over those
    parameters (``a.x = $p AND a.y = $q`` becomes one two-component key),
    so routing an input row costs one discriminant evaluation per
    component plus a single dict probe — O(matching bindings), not O(live
    bindings) — the alpha-memory hashing trick that makes "the same view
    once per user" affordable.  Buckets are candidate sets only: the full
    predicate re-confirms each hit under the partition's own bindings, so
    index coarseness (Python equality vs Cypher ``=``) can never leak a
    row into the wrong binding.

    Partitions any of whose indexed bindings is null or a collection — and
    every partition when no equality conjunct exists — fall back to the
    scan list, which evaluates the predicate per partition exactly like
    today's per-binding σ nodes (still sharing the core's memory and
    per-event translation work).

    When every discriminant expression is a bare column reference, the
    columnar path extracts the whole composite key column with one C-level
    transpose (:meth:`~repro.rete.deltas.ColumnDelta.key_column`) instead
    of evaluating compiled expressions per row.
    """

    def __init__(
        self,
        schema,
        predicate: CompiledExpr,
        param_order: tuple[str, ...],
        discriminants: "tuple[tuple[int, CompiledExpr, int | None], ...] | None" = None,
    ):
        super().__init__(schema)
        self.predicate = predicate
        #: the creating view's parameter names, in generalised (first
        #: occurrence) order — later views translate their own names to
        #: these positions when a partition's evaluation context is built
        self.param_order = param_order
        if not discriminants:
            self._disc_names: tuple[str, ...] | None = None
            self._disc_exprs: tuple[CompiledExpr, ...] | None = None
            self._disc_cols: tuple[int, ...] | None = None
        else:
            self._disc_names = tuple(
                param_order[position] for position, _, _ in discriminants
            )
            self._disc_exprs = tuple(expr for _, expr, _ in discriminants)
            cols = tuple(col for _, _, col in discriminants)
            # all-or-nothing: the zero-eval composite key column is only
            # sound when every component is a direct column projection
            self._disc_cols = cols if all(c is not None for c in cols) else None
        self._partitions: dict[tuple, SelectionPartitionNode] = {}
        #: composite indexed-binding value tuple → candidate partitions
        self._index: dict[tuple, list[SelectionPartitionNode]] = {}
        #: partitions the index cannot discriminate (no equality conjunct,
        #: null or collection binding component) — always evaluated
        self._scan: list[SelectionPartitionNode] = []

    # -- partition lifecycle -------------------------------------------------

    def _index_value(self, facade: SelectionPartitionNode):
        """(indexable, key tuple) classification of one partition's binding."""
        if self._disc_names is None:
            return False, None
        key = []
        for name in self._disc_names:
            value = freeze_value(facade.ctx.parameters.get(name))
            if value is None or not isinstance(value, _INDEXABLE_ATOMS):
                return False, None
            key.append(value)
        return True, tuple(key)

    def add_partition(self, binding: tuple, facade: SelectionPartitionNode) -> None:
        self._partitions[binding] = facade
        indexable, key = self._index_value(facade)
        if indexable:
            self._index.setdefault(key, []).append(facade)
        else:
            self._scan.append(facade)

    def remove_partition(self, binding: tuple) -> None:
        facade = self._partitions.pop(binding)
        indexable, key = self._index_value(facade)
        if indexable:
            bucket = self._index[key]
            bucket.remove(facade)
            if not bucket:
                del self._index[key]
        else:
            self._scan.remove(facade)

    @property
    def has_partitions(self) -> bool:
        return bool(self._partitions)

    @property
    def partition_count(self) -> int:
        return len(self._partitions)

    # -- propagation ---------------------------------------------------------

    def _candidates(self, row: tuple):
        values = []
        try:
            for expr in self._disc_exprs:
                values.append(expr(row, _NO_PARAMS))
        except Exception:
            # the predicate would raise the same way per partition; let the
            # scan below reproduce the baseline behaviour faithfully
            return self._partitions.values()
        key = []
        for value in values:
            if value is None:
                # ``expr = $param`` is unknown for null, never true: no
                # binding can accept this row through the indexed conjunct
                return ()
            if not isinstance(value, _INDEXABLE_ATOMS):
                # collection-valued component: only collection bindings
                # (scan list) can match — Cypher cross-type equality is
                # false, so no all-atom indexed binding need look
                return self._scan
            key.append(value)
        return self._index.get(tuple(key), ())

    def _key_candidates(self, key: tuple):
        """Candidates for a prebuilt composite key (direct-column path)."""
        for value in key:
            if value is None:
                return ()
            if not isinstance(value, _INDEXABLE_ATOMS):
                return self._scan
        return self._index.get(key, ())

    def apply(self, delta: "Delta | ColumnDelta", side: int) -> None:
        if not self._partitions:
            return
        if self._disc_exprs is None:
            for facade in self._partitions.values():
                facade.emit(facade.transform(delta, side))
            return
        if type(delta) is ColumnDelta:
            self._apply_columnar(delta)
            return
        routed: dict[int, tuple[SelectionPartitionNode, Delta]] = {}
        for row, multiplicity in delta.items():
            for facade in self._candidates(row):
                if facade.passes(row):
                    slot = routed.get(id(facade))
                    if slot is None:
                        slot = (facade, Delta())
                        routed[id(facade)] = slot
                    slot[1].add(row, multiplicity)
        for facade, out in routed.values():
            facade.emit(out)

    def _apply_columnar(self, delta: ColumnDelta) -> None:
        mults = delta.mults
        routed: dict[int, tuple[SelectionPartitionNode, list, list]] = {}
        get_slot = routed.get
        if self._disc_cols is not None:
            # direct-column path: route on the prebuilt composite key
            # column and materialise a row tuple only at the (typically
            # few) positions whose key has candidate partitions
            keys = delta.key_column(self._disc_cols)
            columns = delta.columns
            for position, key in enumerate(keys):
                candidates = self._key_candidates(key)
                if not candidates:
                    continue
                row = tuple(column[position] for column in columns)
                multiplicity = mults[position]
                for facade in candidates:
                    if facade.passes(row):
                        slot = get_slot(id(facade))
                        if slot is None:
                            slot = (facade, [], [])
                            routed[id(facade)] = slot
                        slot[1].append(row)
                        slot[2].append(multiplicity)
        else:
            for position, row in enumerate(delta.rows()):
                candidates = self._candidates(row)
                if not candidates:
                    continue
                multiplicity = mults[position]
                for facade in candidates:
                    if facade.passes(row):
                        slot = get_slot(id(facade))
                        if slot is None:
                            slot = (facade, [], [])
                            routed[id(facade)] = slot
                        slot[1].append(row)
                        slot[2].append(multiplicity)
        width = len(self.schema.names)
        for facade, out_rows, out_mults in routed.values():
            facade.emit(ColumnDelta.from_rows(out_rows, out_mults, width))


class ProjectionNode(Node):
    """π — maps each row through compiled item expressions (bag π:
    multiplicities are preserved, collisions accumulate)."""

    def __init__(self, schema, items: list[CompiledExpr], ctx: EvalContext):
        super().__init__(schema)
        self.items = items
        self.ctx = ctx

    def transform(self, delta: "Delta | ColumnDelta", side: int):
        items = self.items
        ctx = self.ctx
        if type(delta) is ColumnDelta:
            out_rows = [
                tuple(fn(row, ctx) for fn in items) for row in delta.rows()
            ]
            return ColumnDelta.from_rows(
                out_rows, delta.mults, len(self.schema.names)
            )
        out = Delta()
        for row, multiplicity in delta.items():
            out.add(tuple(fn(row, ctx) for fn in items), multiplicity)
        return out

    def apply(self, delta: "Delta | ColumnDelta", side: int) -> None:
        self.emit(self.transform(delta, side))


class DedupNode(Node):
    """δ — collapses multiplicities to one; emits only 0↔positive edges.

    Transition-sensitive: defined on net per-row changes, so columnar
    batches consolidate at entry (boundary-materialisation rule).  Count
    keys are interned through the engine's row pool when one is given, so
    a row held by several transition-sensitive memories is one tuple
    object engine-wide."""

    def __init__(self, schema, interner=None):
        super().__init__(schema)
        self.counts: dict[tuple, int] = {}
        self.interner = interner

    def apply(self, delta: "Delta | ColumnDelta", side: int) -> None:
        delta = as_row_delta(delta)
        out = Delta()
        interner = self.interner
        for row, multiplicity in delta.items():
            before = self.counts.get(row, 0)
            after = interned_bag_insert(self.counts, row, multiplicity, interner)
            if before == 0 and after > 0:
                out.add(row, 1)
            elif before > 0 and after == 0:
                out.add(row, -1)
            elif after < 0:
                raise AssertionError(f"negative multiplicity for {row}")
        self.emit(out)

    def dispose(self) -> None:
        if self.interner is not None:
            self.interner.release_all(self.counts)

    def state_delta(self) -> Delta:
        out = Delta()
        for row in self.counts:
            out.add(row, 1)
        return out

    def memory_size(self) -> int:
        return len(self.counts)

    def memory_cells(self) -> int:
        return sum(len(row) for row in self.counts)


class UnwindNode(Node):
    """ω — one output row per element of the list value (null/empty: none;
    scalars pass through as a single row, per openCypher)."""

    def __init__(self, schema, expression: CompiledExpr, ctx: EvalContext):
        super().__init__(schema)
        self.expression = expression
        self.ctx = ctx

    def transform(self, delta: "Delta | ColumnDelta", side: int):
        expression = self.expression
        ctx = self.ctx
        if type(delta) is ColumnDelta:
            out_rows: list[tuple] = []
            out_mults: list[int] = []
            for row, multiplicity in zip(delta.rows(), delta.mults):
                value = expression(row, ctx)
                if value is None:
                    continue
                elements = (
                    list(value) if isinstance(value, ListValue) else [value]
                )
                for element in elements:
                    out_rows.append(row + (element,))
                    out_mults.append(multiplicity)
            return ColumnDelta.from_rows(
                out_rows, out_mults, len(self.schema.names)
            )
        out = Delta()
        for row, multiplicity in delta.items():
            value = expression(row, ctx)
            if value is None:
                continue
            elements = list(value) if isinstance(value, ListValue) else [value]
            for element in elements:
                out.add(row + (element,), multiplicity)
        return out

    def apply(self, delta: "Delta | ColumnDelta", side: int) -> None:
        self.emit(self.transform(delta, side))
