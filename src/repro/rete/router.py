"""Interest-indexed event routing: dispatch O(affected), not O(registered).

The broadcast dispatcher hands every graph event to every live input node,
each of which re-runs an isinstance chain plus label/type relevance checks
that almost always answer "not mine".  That makes event cost proportional
to the number of *registered* signatures — exactly what the paper's IVM
property (change cost ∝ affected view fraction) forbids at the dispatch
layer, and what Viatra/ingraph (refs [31, 33]) avoid with notification
filters.

:class:`EventRouter` restores the property: at registration each
:class:`~.nodes.input.VertexInputNode` / :class:`~.nodes.input.EdgeInputNode`
publishes an interest signature (:class:`VertexInterest` /
:class:`EdgeInterest` — event kinds × required labels / edge types ×
watched property keys), and the router maintains inverted indexes over
those signatures:

* vertex nodes keyed by a single *discriminator* label (any required
  label; a necessary condition for membership) plus a wildcard bucket for
  label-free nodes,
* label-watch and property-key buckets for vertex column changes,
* edge nodes keyed by edge type, endpoint label, endpoint property key and
  edge property key, each with its wildcard bucket,
* **value-level** buckets for vertex nodes carrying a pushed constant
  (``value_filters`` — see :class:`~.nodes.input.VertexInputNode`): such a
  node is keyed by its first ``(property key, constant)`` pair *instead
  of* a membership label, so dispatch probes the event's actual property
  values and skips every node whose constant differs — candidate sets
  narrow by value, not just by key.  Value probes are necessary
  conditions only (the node and its σ still run their exact checks), and
  events whose value for a filter key is unhashable or non-atomic simply
  match no value bucket — such a vertex can never satisfy an atomic
  constant filter.

``dispatch`` then touches only nodes whose relevance predicate can
possibly pass; the nodes' own exact checks stay in place, so routing is a
pure candidate-set reduction — a node the router skips is precisely a node
that would have produced an empty delta.  Wildcard buckets subsume their
keyed counterparts by construction (a node is registered keyed *or*
wildcarded, never both), so candidate collection never yields duplicates.

The broadcast path remains selectable (``route_events=False`` on the
engine) as the ablation baseline; ``benchmarks/bench_dispatch.py``
measures the gap on a many-views churn workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from ..graph import events as ev
from ..graph.graph import PropertyGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .nodes.input import EdgeInputNode, VertexInputNode

#: atom types safe to probe value buckets with (hashable, and Python ``==``
#: over-approximates Cypher ``=`` on them — see the unary module's note)
_ATOMS = (bool, int, float, str)


@dataclass(frozen=True, slots=True)
class VertexInterest:
    """What a © input node can possibly react to."""

    #: required labels (∅ = every vertex)
    labels: frozenset[str]
    #: pushed-down property columns
    property_keys: frozenset[str]
    #: carries a properties(...) column — every key is relevant
    all_properties: bool
    #: carries a labels(...) column — every label flip is relevant
    label_values: bool
    #: pushed constant equality filters as (property key, atom) pairs —
    #: the node only ever emits tuples whose column equals the constant
    property_values: tuple[tuple[str, Any], ...] = field(default=())


@dataclass(frozen=True, slots=True)
class EdgeInterest:
    """What a ⇑ input node can possibly react to."""

    #: admissible edge types (∅ = every type)
    types: frozenset[str]
    #: endpoint label constraints (src ∪ tgt)
    endpoint_labels: frozenset[str]
    #: carries an endpoint labels(...) column
    endpoint_label_values: bool
    #: pushed-down endpoint property columns
    vertex_property_keys: frozenset[str]
    all_vertex_properties: bool
    #: pushed-down edge property columns
    edge_property_keys: frozenset[str]
    all_edge_properties: bool


@dataclass(frozen=True, slots=True)
class InterestSummary:
    """A process-boundary digest of every interest a router holds.

    The sharded tier's coordinator keeps one summary per worker and uses it
    to decide, per consolidated batch record, whether the record can concern
    *any* input node hosted there (:func:`repro.rete.shard.split_batch`).
    The summary deliberately over-approximates the router's per-node
    relevance predicates — labels are unioned across nodes, value-level
    buckets collapse to their membership labels — so a positive answer may
    still translate to an empty delta worker-side (the router and the nodes
    re-run their exact checks), but a negative answer is always safe to act
    on: the worker skips Rete dispatch entirely for that record.
    """

    #: a label-free (or label-free value-filtered) © node exists
    vertex_wildcard: bool = False
    #: union of every © node's required labels
    vertex_labels: frozenset[str] = frozenset()
    #: a type-free ⇑ node exists
    edge_wildcard: bool = False
    #: union of every ⇑ node's admissible edge types
    edge_types: frozenset[str] = frozenset()
    #: a ⇑ node carries an endpoint labels(...) column
    endpoint_label_values: bool = False
    #: union of ⇑ endpoint label constraints
    endpoint_labels: frozenset[str] = frozenset()
    #: a ⇑ node carries an endpoint properties(...) column
    endpoint_all_properties: bool = False
    #: union of ⇑ endpoint property columns
    endpoint_property_keys: frozenset[str] = frozenset()


_EMPTY: dict = {}


class _Bucketed:
    """Keyed buckets plus one wildcard bucket, with ordered members.

    Buckets map ``id(node) → (seq, node)``; *seq* is the global
    registration order, so multi-bucket candidate sets can be replayed in
    exactly the order the broadcast dispatcher would have used.
    """

    __slots__ = ("keyed", "wildcard")

    def __init__(self) -> None:
        self.keyed: dict[str, dict[int, tuple[int, object]]] = {}
        self.wildcard: dict[int, tuple[int, object]] = {}

    def add_keyed(self, key: str, node: object, seq: int) -> tuple:
        self.keyed.setdefault(key, {})[id(node)] = (seq, node)
        return (self, key)

    def add_wildcard(self, node: object, seq: int) -> tuple:
        self.wildcard[id(node)] = (seq, node)
        return (self, None)

    def get(self, key: str) -> dict[int, tuple[int, object]]:
        return self.keyed.get(key, _EMPTY)

    def discard(self, key: str | None, node_id: int) -> None:
        """Drop one membership; emptied keyed buckets are deleted so the
        index never accumulates dead labels/types/keys."""
        if key is None:
            self.wildcard.pop(node_id, None)
            return
        bucket = self.keyed.get(key)
        if bucket is not None:
            bucket.pop(node_id, None)
            if not bucket:
                del self.keyed[key]


def _ordered(*buckets: dict[int, tuple[int, object]]) -> list[object]:
    """Nodes from *buckets*, deduplicated, in registration order."""
    live = [b for b in buckets if b]
    if not live:
        return _NO_NODES
    if len(live) == 1:
        return [node for _, node in live[0].values()]
    merged: dict[int, tuple[int, object]] = {}
    for bucket in live:
        merged.update(bucket)
    return [node for _, node in sorted(merged.values())]


_NO_NODES: list = []


class EventRouter:
    """Inverted interest indexes over live input nodes.

    Owned by a :class:`~repro.rete.sharing.SharedInputLayer` (one per
    engine) or by a :class:`~repro.rete.network.ReteNetwork` that keeps a
    private input layer.  ``register_*`` is called when an input node goes
    live, ``unregister`` when sharing's ``prune()`` drops it.
    """

    def __init__(self, graph: PropertyGraph):
        self.graph = graph
        self._seq = 0
        # cheap always-on traffic counters (the Node-counter precedent):
        # sampled into the metrics registry at snapshot time.  Candidate
        # visits vs. registered nodes is the dispatch win; union-cache
        # hits/misses expose the memoisation's effectiveness.
        self.events_routed = 0
        self.batches_routed = 0
        self.candidates_visited = 0
        self.union_hits = 0
        self.union_misses = 0
        # vertex-node indexes
        self._v_membership = _Bucketed()  # discriminator label / label-free
        self._v_label_watch = _Bucketed()  # required label / labels() column
        self._v_prop_watch = _Bucketed()  # property key / properties() column
        self._v_value = _Bucketed()  # (property key, constant) — value level
        # filter keys with live value-bucket members (key → member count);
        # dispatch probes each live key against the event's actual values
        self._v_value_key_counts: dict[str, int] = {}
        # edge-node indexes
        self._e_type = _Bucketed()  # edge type / type-free
        self._e_label_watch = _Bucketed()  # endpoint label / labels() column
        self._e_vprop_watch = _Bucketed()  # endpoint property key / wildcard
        self._e_eprop_watch = _Bucketed()  # edge property key / wildcard
        # id(node) → (interest, [(bucketed index, key-or-wildcard)])
        self._registered: dict[int, tuple[object, list[tuple]]] = {}
        # hot multi-bucket candidate unions, keyed by event signature;
        # registrations change bucket contents, so any register/unregister
        # clears the whole cache (events vastly outnumber registrations)
        self._union_cache: dict[tuple, list[object]] = {}

    def __len__(self) -> int:
        return len(self._registered)

    #: cap on memoised unions — signatures are data-dependent (property
    #: keys, label sets), so an adversarial stream could otherwise grow
    #: the cache for the engine's lifetime; overflow just resets it
    _UNION_CACHE_LIMIT = 1024

    def _union(self, cache_key: tuple, *buckets) -> list[object]:
        """Memoised :func:`_ordered` for per-event candidate collection.

        The same event signature (a label set, an edge type, a property
        key) recurs for the lifetime of a workload; merging and re-sorting
        its buckets per event was pure rework.  Empty unions (signatures
        no node is interested in) are not cached — they are free to
        recompute and would otherwise leak one entry per distinct
        irrelevant key.
        """
        cached = self._union_cache.get(cache_key)
        if cached is None:
            self.union_misses += 1
            cached = _ordered(*buckets)
            if cached:
                if len(self._union_cache) >= self._UNION_CACHE_LIMIT:
                    self._union_cache.clear()
                self._union_cache[cache_key] = cached
        else:
            self.union_hits += 1
        return cached

    # -- registration -------------------------------------------------------

    def register_vertex_node(self, node: "VertexInputNode") -> None:
        self._union_cache.clear()
        interest = node.interest()
        seq = self._seq
        self._seq += 1
        buckets: list[tuple] = []
        if interest.property_values:
            # value-filtered node: its first (key, constant) pair replaces
            # the membership discriminator — a vertex whose value for that
            # key differs can never enter this node's relation
            buckets.append(
                self._v_value.add_keyed(interest.property_values[0], node, seq)
            )
            fk = interest.property_values[0][0]
            self._v_value_key_counts[fk] = (
                self._v_value_key_counts.get(fk, 0) + 1
            )
        elif interest.labels:
            # any one required label is a necessary membership condition
            discriminator = min(interest.labels)
            buckets.append(self._v_membership.add_keyed(discriminator, node, seq))
        else:
            buckets.append(self._v_membership.add_wildcard(node, seq))
        if interest.label_values:
            buckets.append(self._v_label_watch.add_wildcard(node, seq))
        else:
            for label in interest.labels:
                buckets.append(self._v_label_watch.add_keyed(label, node, seq))
        if interest.all_properties:
            buckets.append(self._v_prop_watch.add_wildcard(node, seq))
        else:
            for key in interest.property_keys:
                buckets.append(self._v_prop_watch.add_keyed(key, node, seq))
        self._registered[id(node)] = (interest, buckets)

    def register_edge_node(self, node: "EdgeInputNode") -> None:
        self._union_cache.clear()
        interest = node.interest()
        seq = self._seq
        self._seq += 1
        buckets: list[tuple] = []
        if interest.types:
            for edge_type in interest.types:
                buckets.append(self._e_type.add_keyed(edge_type, node, seq))
        else:
            buckets.append(self._e_type.add_wildcard(node, seq))
        if interest.endpoint_label_values:
            buckets.append(self._e_label_watch.add_wildcard(node, seq))
        else:
            for label in interest.endpoint_labels:
                buckets.append(self._e_label_watch.add_keyed(label, node, seq))
        if interest.all_vertex_properties:
            buckets.append(self._e_vprop_watch.add_wildcard(node, seq))
        else:
            for key in interest.vertex_property_keys:
                buckets.append(self._e_vprop_watch.add_keyed(key, node, seq))
        if interest.all_edge_properties:
            buckets.append(self._e_eprop_watch.add_wildcard(node, seq))
        else:
            for key in interest.edge_property_keys:
                buckets.append(self._e_eprop_watch.add_keyed(key, node, seq))
        self._registered[id(node)] = (interest, buckets)

    def unregister(self, node: object) -> None:
        entry = self._registered.pop(id(node), None)
        if entry is None:
            return
        self._union_cache.clear()
        for bucketed, key in entry[1]:
            bucketed.discard(key, id(node))
        values = getattr(entry[0], "property_values", ())
        if values:
            fk = values[0][0]
            count = self._v_value_key_counts.get(fk, 0) - 1
            if count > 0:
                self._v_value_key_counts[fk] = count
            else:
                self._v_value_key_counts.pop(fk, None)

    def interest_summary(self) -> InterestSummary:
        """Fold every registered interest into one conservative digest."""
        vertex_wildcard = False
        vertex_labels: set[str] = set()
        edge_wildcard = False
        edge_types: set[str] = set()
        endpoint_label_values = False
        endpoint_labels: set[str] = set()
        endpoint_all_properties = False
        endpoint_property_keys: set[str] = set()
        for interest, _ in self._registered.values():
            if isinstance(interest, VertexInterest):
                if interest.labels:
                    vertex_labels |= interest.labels
                else:
                    vertex_wildcard = True
            else:
                if interest.types:
                    edge_types |= interest.types
                else:
                    edge_wildcard = True
                endpoint_label_values |= interest.endpoint_label_values
                endpoint_labels |= interest.endpoint_labels
                endpoint_all_properties |= interest.all_vertex_properties
                endpoint_property_keys |= interest.vertex_property_keys
        return InterestSummary(
            vertex_wildcard=vertex_wildcard,
            vertex_labels=frozenset(vertex_labels),
            edge_wildcard=edge_wildcard,
            edge_types=frozenset(edge_types),
            endpoint_label_values=endpoint_label_values,
            endpoint_labels=frozenset(endpoint_labels),
            endpoint_all_properties=endpoint_all_properties,
            endpoint_property_keys=frozenset(endpoint_property_keys),
        )

    # -- candidate selection ------------------------------------------------

    def _vertex_membership_candidates(
        self, labels: Iterable[str]
    ) -> list[object]:
        """Vertex nodes whose required labels can be ⊆ *labels*.

        ``frozenset(labels)`` is the cache key; when *labels* already is a
        frozenset (lifecycle events carry one) this is a no-copy identity.
        """
        key = labels if isinstance(labels, frozenset) else frozenset(labels)
        return self._union(
            ("vm", key),
            self._v_membership.wildcard,
            *[self._v_membership.get(label) for label in key],
        )

    def _probe_value(self, key: str, value) -> dict:
        """Value bucket for ``(key, value)``; non-atoms match no bucket."""
        if isinstance(value, _ATOMS):
            return self._v_value.get((key, value))
        return _EMPTY

    def _value_buckets(self, properties) -> list[dict]:
        """Value buckets matching one vertex's property map."""
        buckets = []
        for fk in self._v_value_key_counts:
            bucket = self._probe_value(fk, properties.get(fk))
            if bucket:
                buckets.append(bucket)
        return buckets

    def _value_buckets_for_set(self, event: ev.VertexPropertySet) -> list[dict]:
        """Value buckets a property change can concern.

        For the changed key both the old and new value are probed (the
        retract tuple carries the old, the assert tuple the new); every
        other live filter key is probed at the vertex's current value.
        """
        buckets = []
        current = None
        for fk in self._v_value_key_counts:
            if fk == event.key:
                for value in (event.old_value, event.new_value):
                    bucket = self._probe_value(fk, value)
                    if bucket:
                        buckets.append(bucket)
            else:
                if current is None:
                    current = self.graph.vertex_properties(event.vertex_id)
                bucket = self._probe_value(fk, current.get(fk))
                if bucket:
                    buckets.append(bucket)
        return buckets

    def vertex_candidates(self, event: ev.GraphEvent) -> list[object]:
        """© nodes that may produce a non-empty delta for *event*."""
        if isinstance(event, (ev.VertexAdded, ev.VertexRemoved)):
            if not self._v_value_key_counts:
                return self._vertex_membership_candidates(event.labels)
            # value probes depend on the event's property payload, so this
            # union is not memoised (the membership part alone would be)
            labels = event.labels
            key = labels if isinstance(labels, frozenset) else frozenset(labels)
            return _ordered(
                self._v_membership.wildcard,
                *[self._v_membership.get(label) for label in key],
                *self._value_buckets(event.properties),
            )
        if isinstance(event, (ev.VertexLabelAdded, ev.VertexLabelRemoved)):
            return self._union(
                ("vl", event.label),
                self._v_label_watch.wildcard,
                self._v_label_watch.get(event.label),
            )
        if isinstance(event, ev.VertexPropertySet):
            # membership first (one no-copy labels read replaces N lookups),
            # then the per-node key filter on the usually tiny candidate set
            key = event.key
            if not self._v_value_key_counts:
                base = self._vertex_membership_candidates(
                    self.graph.labels_view(event.vertex_id)
                )
            else:
                base = _ordered(
                    self._v_membership.wildcard,
                    *[
                        self._v_membership.get(label)
                        for label in self.graph.labels_view(event.vertex_id)
                    ],
                    *self._value_buckets_for_set(event),
                )
            return [
                node
                for node in base
                if node._wants_properties or key in node._property_keys
            ]
        return _NO_NODES

    def edge_candidates(self, event: ev.GraphEvent) -> list[object]:
        """⇑ nodes that may produce a non-empty delta for *event*."""
        if isinstance(event, (ev.EdgeAdded, ev.EdgeRemoved)):
            return self._union(
                ("et", event.edge_type),
                self._e_type.wildcard,
                self._e_type.get(event.edge_type),
            )
        if isinstance(event, ev.EdgePropertySet):
            candidates = self._union(
                ("ee", event.key),
                self._e_eprop_watch.wildcard,
                self._e_eprop_watch.get(event.key),
            )
            if not candidates:
                return candidates
            edge_type = self.graph.type_of(event.edge_id)
            return [
                node
                for node in candidates
                if not node.types or edge_type in node.types
            ]
        if isinstance(event, (ev.VertexLabelAdded, ev.VertexLabelRemoved)):
            return self._union(
                ("el", event.label),
                self._e_label_watch.wildcard,
                self._e_label_watch.get(event.label),
            )
        if isinstance(event, ev.VertexPropertySet):
            return self._union(
                ("ev", event.key),
                self._e_vprop_watch.wildcard,
                self._e_vprop_watch.get(event.key),
            )
        return _NO_NODES

    # -- dispatch -----------------------------------------------------------

    def dispatch(self, event: ev.GraphEvent) -> None:
        """Feed *event* to every input node it can possibly concern.

        Vertex nodes run before edge nodes, and nodes within each group in
        registration order — the exact discipline of the broadcast path.
        """
        self.events_routed += 1
        vertex_nodes = self.vertex_candidates(event)
        edge_nodes = self.edge_candidates(event)
        self.candidates_visited += len(vertex_nodes) + len(edge_nodes)
        for node in vertex_nodes:
            node.on_event(event)
        for node in edge_nodes:
            node.on_event(event)

    def dispatch_batch(self, batch) -> None:
        """Feed one consolidated batch to the input nodes it concerns.

        Candidate sets are the unions of the per-record interests; each
        candidate then translates the whole batch once, exactly as under
        broadcast (irrelevant records inside cancel to nothing).
        """
        self.batches_routed += 1
        vertex_nodes = self._batch_vertex_candidates(batch)
        edge_nodes = self._batch_edge_candidates(batch)
        self.candidates_visited += len(vertex_nodes) + len(edge_nodes)
        for node in vertex_nodes:
            node.emit_batch(batch)
        for node in edge_nodes:
            node.emit_batch(batch)

    def _batch_vertex_candidates(self, batch) -> list[object]:
        buckets: list[dict] = []
        filtered: dict[int, tuple[int, object]] = {}
        membership = self._v_membership
        for event in batch.vertex_events:
            if isinstance(event, ev.VertexChanged):
                if event.before_labels == event.after_labels:
                    # membership is stable: only nodes watching a changed
                    # column (or a labels()/properties() wildcard) can move
                    changed = ev.changed_property_keys(
                        event.before_properties, event.after_properties
                    )
                    for entry_bucket in (
                        membership.wildcard,
                        *[
                            membership.get(label)
                            for label in event.after_labels
                        ],
                        *self._value_buckets(event.before_properties),
                        *self._value_buckets(event.after_properties),
                    ):
                        for nid, entry in entry_bucket.items():
                            node = entry[1]
                            if node._wants_properties or not changed.isdisjoint(
                                node._property_keys
                            ):
                                filtered[nid] = entry
                    continue
                labels = event.before_labels | event.after_labels
                buckets.extend(self._value_buckets(event.before_properties))
                buckets.extend(self._value_buckets(event.after_properties))
            else:  # VertexAdded / VertexRemoved
                labels = event.labels
                buckets.extend(self._value_buckets(event.properties))
            buckets.append(membership.wildcard)
            buckets.extend(membership.get(label) for label in labels)
        merged: dict[int, tuple[int, object]] = dict(filtered)
        for bucket in buckets:
            merged.update(bucket)
        return [node for _, node in sorted(merged.values())]

    def _batch_edge_candidates(self, batch) -> list[object]:
        buckets: list[dict] = [self._e_type.wildcard] if batch.edge_events else []
        for event in batch.edge_events:
            buckets.append(self._e_type.get(event.edge_type))
        for event in batch.vertex_events:
            if not isinstance(event, ev.VertexChanged):
                continue
            changed_labels = event.before_labels ^ event.after_labels
            if changed_labels:
                buckets.append(self._e_label_watch.wildcard)
                buckets.extend(
                    self._e_label_watch.get(label) for label in changed_labels
                )
            if event.before_properties != event.after_properties:
                buckets.append(self._e_vprop_watch.wildcard)
                buckets.extend(
                    self._e_vprop_watch.get(key)
                    for key in ev.changed_property_keys(
                        event.before_properties, event.after_properties
                    )
                )
        return _ordered(*buckets)
