"""Sharded maintenance tier: Rete propagation across worker processes.

Every optimisation so far accelerates one GIL-bound process.  This module
partitions the *maintenance work itself*: a :class:`ShardCoordinator`
places each registered view on one of N forked worker processes, fans the
per-transaction net batch (:mod:`repro.rete.batch`) out over
``multiprocessing`` pipes, and merges the per-worker ``on_change`` delta
streams back into ordered per-view notifications — the view-level
maintenance partitioning of MV4PG (arXiv:2411.18847), applied to the
paper's Rete networks, whose fragments decompose independently exactly as
Beyhl's generalized discrimination networks do (arXiv:1612.01641).

Placement — the shard key
-------------------------
Views land on ``crc32(sorted input signatures) % workers``: the same
©/⇑ signatures (:func:`~repro.rete.sharing.vertex_signature` /
:func:`~repro.rete.sharing.edge_signature`) that key the interest-indexed
:class:`~repro.rete.router.EventRouter` and the shared input layer.  Views
over the same base relations therefore co-locate, which keeps PR 3 subplan
sharing and the PR 5 binding tier effective *within* each worker — one
parameterised query registered under a thousand bindings still shares one
binding-free core, now on a single shard.

Workers — full replicas, interest-sliced dispatch
-------------------------------------------------
Workers host ordinary :class:`~repro.rete.engine.IncrementalEngine`\\ s
over a **full graph replica** (input-node translation consults live
adjacency, and ``populate()`` reads the graph, so partial replicas are
unsound).  The replica comes free: workers are forked, so the child
inherits the parent's graph memory copy-on-write; it only clears the
inherited listeners.  Each batch then travels to every worker once —
applied *silently* to the replica (listeners disabled,
``_restore_vertex``/``_restore_edge`` preserve entity ids) — while Rete
dispatch runs only over the slice of records the worker's
:class:`~repro.rete.router.InterestSummary` admits; a worker whose views
cannot be affected pays the replica update and nothing else.

Hand-off and ordering guarantees
--------------------------------
View migration reuses ``state_delta()`` as the wire format: the receiving
worker registers the view and populates it from *its own* replica — the
same replay path ``populate()`` uses for late registrants — and the
coordinator asserts the result equals the source production's serialised
state before detaching the original.  At the merge point the coordinator
blocks for every worker's reply, applies all mirror updates, then fires
``on_change`` callbacks in view registration order — exactly one call per
view per batch with the net delta, the single-process batch contract.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
import zlib
from time import perf_counter
from typing import Any, Callable, Mapping

from ..algebra import ops
from ..compiler.pipeline import CompiledQuery, compile_query
from ..errors import ShardError
from ..eval.results import ResultTable
from ..graph import events as ev
from ..graph.graph import PropertyGraph
from ..obs.metrics import merge_snapshots
from .batch import BatchAccumulator, CoalescedBatch
from .deltas import Delta
from .engine import IncrementalEngine
from .router import InterestSummary

# ---------------------------------------------------------------------------
# shard key
# ---------------------------------------------------------------------------


def _signature_token(op: ops.Operator) -> str:
    """One canonical, process-independent string per input signature.

    Mirrors :func:`~repro.rete.sharing.vertex_signature` /
    :func:`~repro.rete.sharing.edge_signature` but sorts every set-valued
    component: builtin ``hash`` (and hence frozenset iteration order) is
    salted per process, and the shard key must be stable across runs.
    """
    if isinstance(op, ops.GetVertices):
        return repr(
            (
                "v",
                tuple(sorted(op.labels)),
                tuple(repr(p) for p in op.projections),
            )
        )
    assert isinstance(op, ops.GetEdges)
    return repr(
        (
            "e",
            tuple(sorted(op.types)),
            tuple(sorted(op.src_labels)),
            tuple(sorted(op.tgt_labels)),
            op.directed,
            op.projection_roles(),
        )
    )


def shard_key(plan: ops.Operator) -> int:
    """A stable digest of the plan's base-relation interest signatures."""
    tokens = {
        _signature_token(op)
        for op in plan.walk()
        if isinstance(op, (ops.GetVertices, ops.GetEdges))
    }
    return zlib.crc32("\n".join(sorted(tokens)).encode("utf-8"))


def shard_index(plan: ops.Operator, workers: int) -> int:
    return shard_key(plan) % workers


# ---------------------------------------------------------------------------
# batch splitting
# ---------------------------------------------------------------------------


def _vertex_record_relevant(summary: InterestSummary, event) -> bool:
    """Whether a consolidated vertex record can concern any summarised node.

    Over-approximates the router's candidate predicates (see
    :class:`~repro.rete.router.InterestSummary`): label sets are unioned
    across nodes and value-level buckets are ignored, so ``True`` may still
    yield an empty delta worker-side, but ``False`` is always safe.
    """
    if isinstance(event, ev.VertexChanged):
        labels = event.before_labels | event.after_labels
        if summary.vertex_wildcard or not summary.vertex_labels.isdisjoint(labels):
            return True
        # edge nodes watch endpoint transitions even when no © node matches
        changed_labels = event.before_labels ^ event.after_labels
        if changed_labels and (
            summary.endpoint_label_values
            or not summary.endpoint_labels.isdisjoint(changed_labels)
        ):
            return True
        if event.before_properties != event.after_properties:
            if summary.endpoint_all_properties:
                return True
            changed = ev.changed_property_keys(
                event.before_properties, event.after_properties
            )
            if not summary.endpoint_property_keys.isdisjoint(changed):
                return True
        return False
    # VertexAdded / VertexRemoved: membership is the only relevance channel
    # (an added/removed vertex has no incident edges inside the net batch)
    return summary.vertex_wildcard or not summary.vertex_labels.isdisjoint(
        event.labels
    )


def _edge_record_relevant(summary: InterestSummary, event) -> bool:
    return summary.edge_wildcard or event.edge_type in summary.edge_types


def split_batch(
    batch: CoalescedBatch, summary: InterestSummary | None
) -> tuple[tuple[int, ...], tuple[int, ...]] | None:
    """Indices of the records a worker must dispatch, or ``None`` for all.

    ``None`` means the coordinator has no (usable) interest summary for the
    worker — route-events disabled or private input layers — and the full
    batch must be dispatched.  The worker always applies the *whole* batch
    to its replica regardless; the slice governs Rete dispatch only.
    """
    if summary is None:
        return None
    vertex_indices = tuple(
        i
        for i, event in enumerate(batch.vertex_events)
        if _vertex_record_relevant(summary, event)
    )
    edge_indices = tuple(
        i
        for i, event in enumerate(batch.edge_events)
        if _edge_record_relevant(summary, event)
    )
    return (vertex_indices, edge_indices)


def _sliced(
    batch: CoalescedBatch,
    indices: tuple[tuple[int, ...], tuple[int, ...]] | None,
) -> CoalescedBatch | None:
    """Materialise a dispatch slice; ``None`` when nothing is relevant."""
    if indices is None:
        return batch
    vertex_indices, edge_indices = indices
    if not vertex_indices and not edge_indices:
        return None
    if len(vertex_indices) == len(batch.vertex_events) and len(
        edge_indices
    ) == len(batch.edge_events):
        return batch
    # the before-maps are shared unsliced: retraction rebuilding may consult
    # the window-start state of vertices whose own record was sliced away
    return CoalescedBatch(
        tuple(batch.vertex_events[i] for i in vertex_indices),
        tuple(batch.edge_events[i] for i in edge_indices),
        batch.vertex_before_labels,
        batch.vertex_before_properties,
        batch.raw_events,
    )


# ---------------------------------------------------------------------------
# silent replica maintenance
# ---------------------------------------------------------------------------


def apply_batch_to_replica(graph: PropertyGraph, batch: CoalescedBatch) -> None:
    """Apply a consolidated batch to a replica without emitting events.

    Ordering matters: edge removals run before vertex removals (the store
    forbids dangling edges, and consolidation guarantees every removed
    vertex's surviving-window edges appear as ``EdgeRemoved`` records),
    vertex additions before edge additions (endpoints must exist), and
    transitions in between.  ``_restore_vertex``/``_restore_edge`` preserve
    the parent's entity ids, keeping replica id counters in lockstep.
    """
    vertex_adds, vertex_removes, vertex_changes = [], [], []
    for event in batch.vertex_events:
        if isinstance(event, ev.VertexAdded):
            vertex_adds.append(event)
        elif isinstance(event, ev.VertexRemoved):
            vertex_removes.append(event)
        else:
            vertex_changes.append(event)
    edge_adds, edge_removes, edge_changes = [], [], []
    for event in batch.edge_events:
        if isinstance(event, ev.EdgeAdded):
            edge_adds.append(event)
        elif isinstance(event, ev.EdgeRemoved):
            edge_removes.append(event)
        else:
            edge_changes.append(event)

    listeners, graph._listeners = graph._listeners, []
    try:
        for event in edge_removes:
            graph.remove_edge(event.edge_id)
        for event in vertex_removes:
            graph.remove_vertex(event.vertex_id)
        for event in vertex_adds:
            graph._restore_vertex(event.vertex_id, event.labels, event.properties)
        for event in vertex_changes:
            for label in event.after_labels - event.before_labels:
                graph.add_label(event.vertex_id, label)
            for label in event.before_labels - event.after_labels:
                graph.remove_label(event.vertex_id, label)
            for key in ev.changed_property_keys(
                event.before_properties, event.after_properties
            ):
                graph.set_vertex_property(
                    event.vertex_id, key, event.after_properties.get(key)
                )
        for event in edge_adds:
            graph._restore_edge(
                event.edge_id,
                event.source,
                event.target,
                event.edge_type,
                event.properties,
            )
        for event in edge_changes:
            for key in ev.changed_property_keys(
                event.before_properties, event.after_properties
            ):
                graph.set_edge_property(
                    event.edge_id, key, event.after_properties.get(key)
                )
    finally:
        graph._listeners = listeners


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------


def _engine_summary(engine: IncrementalEngine) -> InterestSummary | None:
    layer = engine.input_layer
    if layer is None or layer.router is None:
        return None
    return layer.router.interest_summary()


def _worker_main(conn, graph: PropertyGraph, config: dict) -> None:
    """The worker loop: one request → one reply, until shutdown or EOF.

    Runs in a forked child.  The inherited graph memory *is* the replica;
    the parent's listeners (other engines, the coordinator itself) came
    along with it and are severed first so replica maintenance stays local.
    """
    graph._listeners.clear()
    graph._tx_listeners.clear()
    graph._transaction = None
    engine = IncrementalEngine(graph, **config)
    views: dict[int, Any] = {}
    pending: dict[int, Delta] = {}
    counters = {"batches": 0, "dispatched_batches": 0, "dispatched_records": 0}

    def collector(view_id: int) -> Callable[[Delta], None]:
        def note(delta) -> None:
            held = pending.get(view_id)
            if held is None:
                pending[view_id] = Delta(delta.items())
            else:
                held.update(delta)

        return note

    def worker_stats() -> dict:
        from dataclasses import asdict

        from .sharing import SharedSubplanLayer

        layer = engine.input_layer
        stats = {
            "views": len(views),
            "memory_size": engine.memory_size(),
            "memory_cells": engine.memory_cells(),
            "node_count": layer.node_count if layer is not None else 0,
            "sharing": asdict(layer.stats) if layer is not None else {},
            # full metrics snapshot (None with collect_metrics off); the
            # coordinator merges these bucket-wise into the cluster view
            "metrics": engine.metrics_snapshot(),
        }
        stats.update(counters)
        if isinstance(layer, SharedSubplanLayer):
            stats["subplan_count"] = layer.subplan_count
            stats["binding_node_count"] = layer.binding_node_count
            stats["binding_partition_count"] = layer.binding_partition_count
            stats["detached_count"] = layer.detached_count
        return stats

    def handle(message: tuple):
        tag = message[0]
        if tag == "batch":
            batch = pickle.loads(message[1])
            apply_batch_to_replica(graph, batch)
            counters["batches"] += 1
            dispatch = _sliced(batch, message[2])
            if dispatch is not None and views:
                counters["dispatched_batches"] += 1
                counters["dispatched_records"] += len(
                    dispatch.vertex_events
                ) + len(dispatch.edge_events)
                engine._propagate_batch(dispatch)
            notes = [(vid, delta) for vid, delta in pending.items() if delta]
            pending.clear()
            return notes
        if tag == "register":
            _, view_id, text, parameters = message
            view = engine.register(text, parameters or None)
            views[view_id] = view
            view.on_change(collector(view_id))
            return (dict(view.multiset()), _engine_summary(engine))
        if tag == "detach":
            views.pop(message[1]).detach()
            return _engine_summary(engine)
        if tag == "state":
            return Delta(views[message[1]].multiset().items())
        if tag == "measure":
            view = views[message[1]]
            return (view.memory_size(), view.memory_cells())
        if tag == "profile":
            return views[message[1]].profile()
        if tag == "stats":
            return worker_stats()
        if tag == "view_costs":
            costs = engine.view_costs()
            # the worker attributes by its local view order; translate to
            # coordinator view ids so costs merge across workers
            vid_of = {id(view): vid for vid, view in views.items()}
            costs["views"] = [
                {**entry, "view": vid_of[id(engine.views[entry["view"]])]}
                for entry in costs["views"]
            ]
            return costs
        if tag == "shutdown":
            return None
        raise ShardError(f"unknown shard message {tag!r}")

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # coordinator is gone
        try:
            conn.send(("ok", handle(message)))
        except Exception:  # noqa: BLE001 - reported to the coordinator
            try:
                conn.send(("error", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break
        if message[0] == "shutdown":
            break
    conn.close()


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------


class _WorkerHandle:
    """The coordinator's end of one worker: process, pipe, interest digest."""

    __slots__ = ("index", "process", "conn", "summary")

    def __init__(self, index: int, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        #: the worker's current InterestSummary (None = dispatch everything),
        #: refreshed by every register/detach reply
        self.summary: InterestSummary | None = None

    def send(self, message: tuple) -> None:
        try:
            self.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise ShardError(f"shard worker {self.index} is gone: {exc}") from exc

    def recv(self):
        try:
            status, payload = self.conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardError(f"shard worker {self.index} died: {exc}") from exc
        if status == "error":
            raise ShardError(
                f"shard worker {self.index} failed:\n{payload}"
            )
        return payload

    def request(self, message: tuple):
        self.send(message)
        return self.recv()


class ShardView:
    """A continuously maintained query result hosted on a shard worker.

    The coordinator keeps a parent-side mirror multiset — initialised from
    the hosting worker's population and advanced by the merged ``on_change``
    deltas — so :meth:`rows`/:meth:`multiset` are served locally without a
    round trip.  :meth:`profile`/:meth:`memory_size` ask the worker, where
    the network actually lives.
    """

    def __init__(
        self,
        coordinator: "ShardCoordinator",
        compiled: CompiledQuery,
        parameters: Mapping[str, Any] | None,
        view_id: int,
        worker_index: int,
        initial: dict[tuple, int],
    ):
        self._coordinator = coordinator
        self.compiled = compiled
        self.parameters = dict(parameters) if parameters else {}
        self.view_id = view_id
        self.worker_index = worker_index
        self._results: dict[tuple, int] = dict(initial)
        self._callbacks: list[Callable[[Delta], None]] = []

    @property
    def columns(self) -> tuple[str, ...]:
        return self.compiled.columns

    def multiset(self) -> dict[tuple, int]:
        """Current contents as a bag (row → multiplicity)."""
        return dict(self._results)

    def rows(self) -> list[tuple]:
        """Current contents, expanded and canonically ordered."""
        return self.result_table().rows()

    def result_table(self) -> ResultTable:
        rows = [
            row
            for row, multiplicity in self._results.items()
            for _ in range(multiplicity)
        ]
        return ResultTable(
            self.compiled.plan.schema, rows, graph=self._coordinator.graph
        )

    def on_change(self, callback: Callable[[Delta], None]) -> None:
        """Invoke *callback* with the net output delta of each batch."""
        self._callbacks.append(callback)

    def detach(self) -> None:
        """Stop maintaining this view (and release its worker state)."""
        self._coordinator._detach(self)

    def memory_size(self) -> int:
        return self._worker.request(("measure", self.view_id))[0]

    def memory_cells(self) -> int:
        return self._worker.request(("measure", self.view_id))[1]

    def profile(self) -> str:
        """Per-node counters of this view's network, fetched from its shard.

        The header names the hosting worker: counters below it are that
        worker process's traffic, not the coordinator's (whose own network
        is intentionally empty).
        """
        profile = self._worker.request(("profile", self.view_id))
        return f"-- shard worker {self.worker_index} --\n{profile}"

    @property
    def _worker(self) -> _WorkerHandle:
        return self._coordinator._workers[self.worker_index]

    def _apply(self, delta: Delta) -> None:
        for row, multiplicity in delta.items():
            count = self._results.get(row, 0) + multiplicity
            if count:
                self._results[row] = count
            else:
                self._results.pop(row, None)

    def _notify(self, delta: Delta) -> None:
        for callback in list(self._callbacks):
            callback(delta)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"ShardView({self.compiled.text!r}, worker={self.worker_index}, "
            f"rows={sum(self._results.values())})"
        )


class ShardCoordinator(IncrementalEngine):
    """Partitions view maintenance across forked worker processes.

    Drop-in for :class:`~repro.rete.engine.IncrementalEngine` where it
    matters — ``register``/``batch()``/transaction listening/``views`` —
    but propagation fans consolidated batches out to the workers instead of
    dispatching locally, and ``register`` returns a :class:`ShardView`.

    The flag set mirrors the single-process engine and is forwarded to
    every worker, so each ablation (``columnar_deltas``,
    ``share_across_bindings``, …) composes with sharding.  Requires the
    ``fork`` start method (the replica is the inherited address space) and
    a plain in-memory :class:`~repro.graph.graph.PropertyGraph` — forking a
    durable graph would multiplex its WAL across processes.
    """

    def __init__(
        self,
        graph: PropertyGraph,
        workers: int = 2,
        transitive_mode: str = "trails",
        share_inputs: bool = True,
        batch_transactions: bool = False,
        route_events: bool = True,
        share_subplans: bool = True,
        detached_cache_size: int = 4,
        share_across_bindings: bool = True,
        columnar_deltas: bool = True,
        columnar_memories: bool = True,
        split_batches: bool = True,
        collect_metrics: bool = False,
        trace_batches: bool = False,
    ):
        if workers < 1:
            raise ShardError(f"workers must be >= 1, got {workers}")
        # share_inputs=False on the parent: the coordinator hosts no input
        # layer or networks of its own — all Rete state lives in the workers
        super().__init__(
            graph,
            transitive_mode=transitive_mode,
            share_inputs=False,
            batch_transactions=batch_transactions,
            route_events=route_events,
            share_subplans=share_subplans,
            detached_cache_size=detached_cache_size,
            share_across_bindings=share_across_bindings,
            columnar_deltas=columnar_deltas,
            columnar_memories=columnar_memories,
            collect_metrics=collect_metrics,
            trace_batches=trace_batches,
        )
        #: slice dispatch by worker interest summaries; ``False`` ships the
        #: full batch to every worker's Rete layer (ablation)
        self.split_batches = split_batches
        # collect_metrics is forwarded so each worker snapshots its own
        # node/router/sharing traffic (merged by metrics_snapshot);
        # trace_batches stays coordinator-side — node-level spans live in
        # the worker address space and the coordinator's trace records the
        # fan-out/merge phases instead
        self._worker_config = dict(
            transitive_mode=transitive_mode,
            share_inputs=share_inputs,
            batch_transactions=False,  # replica updates are silent
            route_events=route_events,
            share_subplans=share_subplans,
            detached_cache_size=detached_cache_size,
            share_across_bindings=share_across_bindings,
            columnar_deltas=columnar_deltas,
            columnar_memories=columnar_memories,
            collect_metrics=collect_metrics,
        )
        self._next_view_id = 0
        self._batches_fanned_out = 0
        self._records_fanned_out = 0
        self._records_sliced_away = 0
        try:
            context = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise ShardError(
                "the sharded tier requires the fork start method"
            ) from exc
        self._workers: list[_WorkerHandle] = []
        for index in range(workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child_conn, graph, self._worker_config),
                daemon=True,
                name=f"repro-shard-{index}",
            )
            process.start()
            child_conn.close()
            self._workers.append(_WorkerHandle(index, process, parent_conn))
        # Subscribe immediately (the in-process engine waits for the first
        # register): worker replicas are frozen at fork time, so every
        # subsequent mutation must ship — even before any view exists.
        graph.subscribe(self._on_event)
        self._subscribed = True

    @property
    def worker_count(self) -> int:
        return len(self._workers)

    # -- view lifecycle -------------------------------------------------------

    def register(
        self,
        query: str | CompiledQuery,
        parameters: Mapping[str, Any] | None = None,
    ) -> ShardView:
        """Place *query* on its shard and return the coordinator-side view."""
        if not self._workers:
            raise ShardError("coordinator has been shut down")
        compiled = compile_query(query) if isinstance(query, str) else query
        compiled.require_incremental()
        # Same contract as the single-process engine: a view joining
        # mid-batch populates from the live graph (via its worker's replica,
        # which the flush brings up to date first).
        if self._accumulator is not None and self._accumulator:
            self._flush_pending()
        handle = self._workers[shard_index(compiled.plan, len(self._workers))]
        view_id = self._next_view_id
        self._next_view_id += 1
        initial, summary = handle.request(
            ("register", view_id, compiled.text, dict(parameters or {}))
        )
        handle.summary = summary
        view = ShardView(self, compiled, parameters, view_id, handle.index, initial)
        self._views.append(view)
        if not self._subscribed:
            self.graph.subscribe(self._on_event)
            self._subscribed = True
        for listener in self._view_listeners:
            listener("register", view)
        return view

    def _detach(self, view: ShardView) -> None:
        self._views.remove(view)
        handle = self._workers[view.worker_index]
        handle.summary = handle.request(("detach", view.view_id))
        for listener in self._view_listeners:
            listener("detach", view)

    def migrate_view(self, view: ShardView, worker_index: int) -> ShardView:
        """Move a live view to another worker, between batches.

        The ``state_delta()`` hand-off protocol: serialise the source
        production's state, register on the target (which populates from
        its own replica — the late-registrant replay path), assert the two
        agree, then detach the source.  The parity check makes replica
        drift loud instead of silent.
        """
        if not 0 <= worker_index < len(self._workers):
            raise ShardError(f"no shard worker {worker_index}")
        if self.pending_changes():
            raise ShardError("cannot migrate a view inside an open batch window")
        if view not in self._views:
            raise ShardError("view is not registered with this coordinator")
        source = self._workers[view.worker_index]
        target = self._workers[worker_index]
        if source is target:
            return view
        state = source.request(("state", view.view_id))
        initial, summary = target.request(
            ("register", view.view_id, view.compiled.text, dict(view.parameters))
        )
        target.summary = summary
        if dict(state.items()) != initial:
            raise ShardError(
                f"state_delta hand-off parity violation migrating "
                f"{view.compiled.text!r} from worker {source.index} to "
                f"{target.index}"
            )
        source.summary = source.request(("detach", view.view_id))
        view.worker_index = worker_index
        return view

    def rebalance(self) -> int:
        """Migrate views until worker view counts differ by at most one."""
        moved = 0
        while True:
            counts = [0] * len(self._workers)
            for view in self._views:
                counts[view.worker_index] += 1
            heaviest = max(range(len(counts)), key=counts.__getitem__)
            lightest = min(range(len(counts)), key=counts.__getitem__)
            if counts[heaviest] - counts[lightest] <= 1:
                return moved
            candidate = next(
                v for v in self._views if v.worker_index == heaviest
            )
            self.migrate_view(candidate, lightest)
            moved += 1

    # -- propagation ----------------------------------------------------------

    def _on_event(self, event: ev.GraphEvent) -> None:
        if self._accumulator is not None:
            self._accumulator.record(event)
            return
        # Per-event mode still crosses the process boundary as a (one-record)
        # consolidated batch: the wire format is uniform and insert/delete
        # pairs inside compensation streams cancel exactly as they do locally.
        metrics = self.metrics
        start = perf_counter() if metrics is not None else 0.0
        accumulator = BatchAccumulator(self.graph)
        accumulator.record(event)
        self._propagate_batch(accumulator.consolidate())
        if metrics is not None:
            metrics.events.inc()
            metrics.event_seconds.observe(perf_counter() - start)

    def _propagate_batch(self, changes: CoalescedBatch, tracer=None) -> None:
        if not changes or not self._workers:
            return
        metrics = self.metrics
        # one pickle, N sends: replicas need the whole batch even where the
        # interest slice is empty, so the payload is shared verbatim
        records = len(changes.vertex_events) + len(changes.edge_events)
        if tracer is not None:
            tracer.enter("fanout", f"workers={len(self._workers)}", records)
        start = perf_counter() if metrics is not None else 0.0
        blob = pickle.dumps(changes, protocol=pickle.HIGHEST_PROTOCOL)
        changed: list[tuple[ShardView, Delta]] = []
        self._dispatch_depth += 1
        try:
            for handle in self._workers:
                indices = (
                    split_batch(changes, handle.summary)
                    if self.split_batches
                    else None
                )
                if indices is not None:
                    self._records_sliced_away += records - (
                        len(indices[0]) + len(indices[1])
                    )
                handle.send(("batch", blob, indices))
            if metrics is not None:
                metrics.shard_fanout_seconds.observe(perf_counter() - start)
            if tracer is not None:
                tracer.exit()
                tracer.enter("merge", f"workers={len(self._workers)}")
            start = perf_counter() if metrics is not None else 0.0
            merged_notes: dict[int, Delta] = {}
            for handle in self._workers:
                # a view lives on exactly one worker: no delta collisions
                for view_id, delta in handle.recv():
                    merged_notes[view_id] = delta
            self._batches_fanned_out += 1
            self._records_fanned_out += records
            for view in self._views:
                delta = merged_notes.get(view.view_id)
                if delta is not None and delta:
                    view._apply(delta)
                    changed.append((view, delta))
            if metrics is not None:
                metrics.shard_merge_seconds.observe(perf_counter() - start)
            if tracer is not None:
                tracer.exit()
        finally:
            self._dispatch_depth -= 1
        # the merge point: every mirror has caught up before the first
        # callback fires, and callbacks run in view registration order —
        # the same discipline as the single-process batch path.  One raising
        # callback must not silence the rest (see engine._propagate_batch).
        error: BaseException | None = None
        for view, delta in changed:
            try:
                view._notify(delta)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None:
                    error = exc
        if error is not None:
            raise error

    # -- aggregated observability ---------------------------------------------

    def shard_stats(self) -> dict:
        """Cluster-truthful counters: per-worker stats plus aggregates.

        ``SharedSubplanLayer.prune()`` and the detached-LRU counters are
        process-local; under ``workers=N`` the per-worker sections here are
        the only faithful account of memory and sharing behaviour.
        """
        per_worker = []
        for handle in self._workers:
            stats = dict(handle.request(("stats",)))
            stats["worker"] = handle.index
            per_worker.append(stats)
        totals: dict[str, Any] = {}
        sharing_totals: dict[str, int] = {}
        for stats in per_worker:
            for key, value in stats.items():
                if key != "worker" and isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
            for key, value in stats.get("sharing", {}).items():
                sharing_totals[key] = sharing_totals.get(key, 0) + value
        totals["sharing"] = sharing_totals
        return {
            "workers": per_worker,
            "totals": totals,
            "views": len(self._views),
            "coordinator": {
                "batches_fanned_out": self._batches_fanned_out,
                "records_fanned_out": self._records_fanned_out,
                "records_sliced_away": self._records_sliced_away,
            },
        }

    def _collect_gauges(self) -> None:
        """Coordinator-side gauges only: fan-out traffic and worker count.

        Node/memory/router/sharing gauges come from the workers' own
        snapshots (every Rete node lives there) and are summed into the
        cluster view by :meth:`metrics_snapshot` — the coordinator setting
        them too would double-count.
        """
        gauge = self.metrics.registry.gauge
        gauge("repro_shard_workers", "Live shard worker processes").set(
            len(self._workers)
        )
        gauge(
            "repro_shard_batches_fanned_out",
            "Consolidated batches shipped to every worker",
        ).set(self._batches_fanned_out)
        gauge(
            "repro_shard_records_fanned_out",
            "Net records shipped (replica maintenance)",
        ).set(self._records_fanned_out)
        gauge(
            "repro_shard_records_sliced_away",
            "Record dispatches skipped by interest slicing",
        ).set(self._records_sliced_away)

    def metrics_snapshot(self) -> dict | None:
        """Cluster-wide snapshot: coordinator metrics plus all workers'.

        Counters, gauges and histogram buckets sum across processes (see
        :func:`~repro.obs.metrics.merge_snapshots`); ``None`` with
        ``collect_metrics`` off.
        """
        if self.metrics is None:
            return None
        snapshots = [self.metrics.registry.snapshot()]
        for handle in self._workers:
            worker = handle.request(("stats",)).get("metrics")
            if worker:
                snapshots.append(worker)
        return merge_snapshots(snapshots)

    def view_costs(self) -> dict:
        """Per-view maintenance cost, merged across the workers.

        Each worker attributes its own row-work exactly as the in-process
        engine does; entries come back keyed by coordinator view id with
        the hosting worker recorded, and the unattributed/total figures
        sum across workers.
        """
        per_view: dict[int, dict] = {}
        unit = "row-work (applied_rows + emitted_rows)"
        unattributed = 0.0
        total = 0.0
        for handle in self._workers:
            costs = handle.request(("view_costs",))
            unit = costs["unit"]
            unattributed += costs["unattributed"]
            total += costs["total"]
            for entry in costs["views"]:
                entry["worker"] = handle.index
                per_view[entry["view"]] = entry
        return {
            "unit": unit,
            "views": [
                per_view[view.view_id]
                for view in self._views
                if view.view_id in per_view
            ],
            "unattributed": unattributed,
            "total": total,
        }

    def memory_size(self) -> int:
        """Total memory entries across all workers (shared nodes once each)."""
        return sum(
            handle.request(("stats",))["memory_size"] for handle in self._workers
        )

    def memory_cells(self) -> int:
        """Total stored tuple fields across all workers."""
        return sum(
            handle.request(("stats",))["memory_cells"] for handle in self._workers
        )

    # -- lifecycle ------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the workers and unhook from the graph.  Idempotent."""
        workers, self._workers = self._workers, []
        if self._subscribed:
            try:
                self.graph.unsubscribe(self._on_event)
            except ValueError:  # pragma: no cover - defensive
                pass
            self._subscribed = False
        if self.batch_transactions:
            try:
                self.graph.unsubscribe_transactions(self._on_transaction)
            except ValueError:  # pragma: no cover - defensive
                pass
        for handle in workers:
            try:
                handle.conn.send(("shutdown",))
                handle.conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            handle.conn.close()
            handle.process.join(timeout=5)
