"""Cross-view input-node sharing (classic Rete subnetwork sharing).

Within one network, identical base relations already share an input node.
This module extends the idea across *views*: an engine-owned
:class:`SharedInputLayer` caches input nodes by their base-relation
signature — two views over ``(p:Post {lang})`` feed from one
:class:`~.nodes.input.VertexInputNode`, so each graph event is translated
into tuples **once per distinct signature** instead of once per view.
ingraph and Viatra (the paper's lineage, refs [31, 33]) both rely on this
to keep many-view workloads affordable; ablation E11 quantifies it.

Late registration is handled by *targeted activation*: when a view joins a
live input node, the current-state delta is applied only to the new view's
subscription edges, never re-emitted to existing subscribers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra import ops
from ..graph import events as ev
from ..graph.graph import PropertyGraph
from .nodes.input import EdgeInputNode, UnitNode, VertexInputNode
from .router import EventRouter


@dataclass(slots=True)
class SharingStats:
    """Cache effectiveness counters for the ablation report."""

    vertex_requests: int = 0
    vertex_nodes: int = 0
    edge_requests: int = 0
    edge_nodes: int = 0
    unit_requests: int = 0

    @property
    def requests(self) -> int:
        return self.vertex_requests + self.edge_requests + self.unit_requests

    @property
    def nodes(self) -> int:
        return self.vertex_nodes + self.edge_nodes + (1 if self.unit_requests else 0)


def vertex_signature(op: ops.GetVertices) -> tuple:
    """Cache key for a © operator: tuple layout depends only on this."""
    return (op.labels, op.projections)


def edge_signature(op: ops.GetEdges) -> tuple:
    """Cache key for a ⇑ operator; projections keyed by role, not name."""
    roles = tuple(
        (
            "src" if p.subject == op.src else "edge" if p.subject == op.edge else "tgt",
            p.kind,
            p.key,
        )
        for p in op.projections
    )
    return (op.types, op.src_labels, op.tgt_labels, op.directed, roles)


@dataclass
class SharedInputLayer:
    """Engine-owned cache of live input nodes, keyed by signature.

    With ``route_events=True`` (the default) the layer also owns an
    :class:`~repro.rete.router.EventRouter`: every cached node registers
    its interest signature, ``dispatch``/``dispatch_batch`` touch only the
    nodes an event can possibly concern, and ``prune()`` withdraws the
    interests of dropped nodes.  ``route_events=False`` keeps the original
    broadcast loops (the ablation baseline).
    """

    graph: PropertyGraph
    stats: SharingStats = field(default_factory=SharingStats)
    route_events: bool = True

    def __post_init__(self) -> None:
        self._vertex_nodes: dict[tuple, VertexInputNode] = {}
        self._edge_nodes: dict[tuple, EdgeInputNode] = {}
        self._unit_node: UnitNode | None = None
        self.router: EventRouter | None = (
            EventRouter(self.graph) if self.route_events else None
        )

    # -- node acquisition ----------------------------------------------------

    def vertex_node(self, op: ops.GetVertices) -> VertexInputNode:
        self.stats.vertex_requests += 1
        key = vertex_signature(op)
        node = self._vertex_nodes.get(key)
        if node is None:
            node = VertexInputNode(op, self.graph)
            self._vertex_nodes[key] = node
            self.stats.vertex_nodes += 1
            if self.router is not None:
                self.router.register_vertex_node(node)
        return node

    def edge_node(self, op: ops.GetEdges) -> EdgeInputNode:
        self.stats.edge_requests += 1
        key = edge_signature(op)
        node = self._edge_nodes.get(key)
        if node is None:
            node = EdgeInputNode(op, self.graph)
            self._edge_nodes[key] = node
            self.stats.edge_nodes += 1
            if self.router is not None:
                self.router.register_edge_node(node)
        return node

    def unit_node(self, schema) -> UnitNode:
        self.stats.unit_requests += 1
        if self._unit_node is None:
            self._unit_node = UnitNode(schema)
        return self._unit_node

    # -- event routing -----------------------------------------------------------

    def dispatch(self, event: ev.GraphEvent) -> None:
        """Translate one graph event, once per distinct input signature.

        Routed mode touches only the nodes whose interest signature the
        event can satisfy; broadcast mode offers it to every node.
        """
        if self.router is not None:
            self.router.dispatch(event)
            return
        if isinstance(event, (ev.VertexAdded, ev.VertexRemoved)):
            for node in self._vertex_nodes.values():
                node.on_event(event)
        elif isinstance(
            event,
            (ev.VertexLabelAdded, ev.VertexLabelRemoved, ev.VertexPropertySet),
        ):
            for node in self._vertex_nodes.values():
                node.on_event(event)
            for edge_node in self._edge_nodes.values():
                edge_node.on_event(event)
        elif isinstance(event, (ev.EdgeAdded, ev.EdgeRemoved, ev.EdgePropertySet)):
            for edge_node in self._edge_nodes.values():
                edge_node.on_event(event)

    def dispatch_batch(self, batch) -> None:
        """Translate one consolidated batch, once per distinct signature.

        Each live input node turns the whole batch into a single net delta
        and emits it downstream once — the batched analogue of
        :meth:`dispatch`.
        """
        if self.router is not None:
            self.router.dispatch_batch(batch)
            return
        if batch.vertex_events:
            for node in self._vertex_nodes.values():
                node.emit(node.batch_delta(batch))
        if batch.edge_events or any(
            isinstance(event, ev.VertexChanged) for event in batch.vertex_events
        ):
            for edge_node in self._edge_nodes.values():
                edge_node.emit(edge_node.batch_delta(batch))

    # -- maintenance ---------------------------------------------------------------

    def prune(self) -> int:
        """Drop input nodes with no remaining subscribers; returns count.

        Dropped nodes also withdraw their routing interests, so future
        events stop being offered to them at all.
        """
        removed = 0
        for cache in (self._vertex_nodes, self._edge_nodes):
            for key in [k for k, n in cache.items() if n.subscriber_count == 0]:
                if self.router is not None:
                    self.router.unregister(cache[key])
                del cache[key]
                removed += 1
        if self._unit_node is not None and self._unit_node.subscriber_count == 0:
            self._unit_node = None
        return removed

    @property
    def node_count(self) -> int:
        return (
            len(self._vertex_nodes)
            + len(self._edge_nodes)
            + (1 if self._unit_node is not None else 0)
        )
