"""Cross-view subnetwork sharing (classic Rete node sharing, two tiers).

Within one network, identical base relations already share an input node.
This module extends the idea across *views*, in two tiers:

* :class:`SharedInputLayer` caches **input nodes** by their base-relation
  signature — two views over ``(p:Post {lang})`` feed from one
  :class:`~.nodes.input.VertexInputNode`, so each graph event is
  translated into tuples **once per distinct signature** instead of once
  per view (ablation E11).
* :class:`SharedSubplanLayer` extends the cache to **whole subplans**:
  any interior node (σ, π, δ, ω, γ, ⋈, ▷, ⟕, ∪, ⋈*) is cached by the
  canonical :mod:`~repro.compiler.fingerprint` of the FRA subtree it
  computes, so two views that both need ``σ(⋈(©, ⇑))`` share one join
  memory and pay the per-event join work once.  Entries are refcounted
  per view and released on detach; ``prune()`` cascades the release down
  shared chains until only live subplans remain.

  The layer's **binding-indexed tier** (``share_across_bindings``)
  additionally shares parameterised selections across *differing*
  bindings: one :class:`~.nodes.unary.BindingIndexedSelectionNode` per
  generalised σ shape, fed by the binding-free core below it, with one
  partition per live binding.  Partitions are ordinary refcounted
  entries under :data:`BINDING_TIER`-tagged keys, so the LRU, stats and
  targeted activation are the same machinery; only their drop path
  differs (the binding leaves the node; the node leaves the core with
  its last binding).

ingraph and Viatra (the paper's lineage, refs [31, 33]) both rely on
subnetwork sharing to keep many-view workloads affordable.

Late registration is handled by *targeted activation*: when a view joins a
live node, the current-state delta is applied only to the new view's
subscription edges, never re-emitted to existing subscribers.  Input nodes
recompute that delta from the graph (``activation_delta``); interior nodes
reconstruct it from their memories (``state_delta``), with stateless nodes
derived on demand by replaying their upstreams' state through the node's
pure ``transform``.
"""

from __future__ import annotations

import logging
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..algebra import ops
from ..algebra.expressions import EvalContext
from ..compiler.fingerprint import (
    SubplanFingerprint,
    fingerprint,
    generalized_fingerprint,
)
from ..graph import events as ev
from ..graph.graph import PropertyGraph
from ..graph.values import ListValue, MapValue, PathValue, freeze_value
from .deltas import Delta
from .nodes.base import Node
from .nodes.input import EdgeInputNode, UnitNode, VertexInputNode
from .nodes.unary import BindingIndexedSelectionNode, SelectionPartitionNode
from .router import EventRouter

logger = logging.getLogger(__name__)


@dataclass(slots=True)
class SharingStats:
    """Cache effectiveness counters for the ablation report."""

    vertex_requests: int = 0
    vertex_nodes: int = 0
    edge_requests: int = 0
    edge_nodes: int = 0
    unit_requests: int = 0
    subplan_requests: int = 0
    subplan_hits: int = 0
    subplan_nodes: int = 0
    binding_nodes: int = 0
    binding_partitions: int = 0
    detached_retained: int = 0
    detached_revived: int = 0
    detached_evicted: int = 0
    release_underflows: int = 0
    # refcount traffic (observability): every successful acquire/release
    # pair and every node genuinely dropped by prune()
    acquires: int = 0
    releases: int = 0
    pruned: int = 0

    @property
    def requests(self) -> int:
        return self.vertex_requests + self.edge_requests + self.unit_requests

    @property
    def nodes(self) -> int:
        return self.vertex_nodes + self.edge_nodes + (1 if self.unit_requests else 0)


def vertex_signature(
    op: ops.GetVertices, value_filters: tuple = ()
) -> tuple:
    """Cache key for a © operator: tuple layout depends only on this.

    A pushed constant filter (value-level routing) narrows the node's
    *relation*, so filtered and unfiltered requests must never collide —
    the filters are part of the signature, and two views selecting the
    same constant still share one filtered node."""
    return (op.labels, op.projections, value_filters)


def edge_signature(op: ops.GetEdges) -> tuple:
    """Cache key for a ⇑ operator; projections keyed by role, not name."""
    return (
        op.types,
        op.src_labels,
        op.tgt_labels,
        op.directed,
        op.projection_roles(),
    )


@dataclass
class SharedInputLayer:
    """Engine-owned cache of live input nodes, keyed by signature.

    With ``route_events=True`` (the default) the layer also owns an
    :class:`~repro.rete.router.EventRouter`: every cached node registers
    its interest signature, ``dispatch``/``dispatch_batch`` touch only the
    nodes an event can possibly concern, and ``prune()`` withdraws the
    interests of dropped nodes.  ``route_events=False`` keeps the original
    broadcast loops (the ablation baseline).
    """

    graph: PropertyGraph
    stats: SharingStats = field(default_factory=SharingStats)
    route_events: bool = True
    #: emit batch translations as ColumnDelta (engine columnar flag);
    #: cached input nodes are created with the matching wire format
    columnar_deltas: bool = True

    def __post_init__(self) -> None:
        self._vertex_nodes: dict[tuple, VertexInputNode] = {}
        self._edge_nodes: dict[tuple, EdgeInputNode] = {}
        self._unit_node: UnitNode | None = None
        self.router: EventRouter | None = (
            EventRouter(self.graph) if self.route_events else None
        )

    # -- node acquisition ----------------------------------------------------

    def vertex_node(
        self, op: ops.GetVertices, value_filters: tuple = ()
    ) -> VertexInputNode:
        self.stats.vertex_requests += 1
        key = vertex_signature(op, value_filters)
        node = self._vertex_nodes.get(key)
        if node is None:
            node = VertexInputNode(
                op,
                self.graph,
                value_filters=value_filters,
                columnar=self.columnar_deltas,
            )
            self._vertex_nodes[key] = node
            self.stats.vertex_nodes += 1
            if self.router is not None:
                self.router.register_vertex_node(node)
        return node

    def edge_node(self, op: ops.GetEdges) -> EdgeInputNode:
        self.stats.edge_requests += 1
        key = edge_signature(op)
        node = self._edge_nodes.get(key)
        if node is None:
            node = EdgeInputNode(op, self.graph, columnar=self.columnar_deltas)
            self._edge_nodes[key] = node
            self.stats.edge_nodes += 1
            if self.router is not None:
                self.router.register_edge_node(node)
        return node

    def unit_node(self, schema) -> UnitNode:
        self.stats.unit_requests += 1
        if self._unit_node is None:
            self._unit_node = UnitNode(schema)
        return self._unit_node

    # -- event routing -----------------------------------------------------------

    def dispatch(self, event: ev.GraphEvent) -> None:
        """Translate one graph event, once per distinct input signature.

        Routed mode touches only the nodes whose interest signature the
        event can satisfy; broadcast mode offers it to every node.
        """
        if self.router is not None:
            self.router.dispatch(event)
            return
        if isinstance(event, (ev.VertexAdded, ev.VertexRemoved)):
            for node in self._vertex_nodes.values():
                node.on_event(event)
        elif isinstance(
            event,
            (ev.VertexLabelAdded, ev.VertexLabelRemoved, ev.VertexPropertySet),
        ):
            for node in self._vertex_nodes.values():
                node.on_event(event)
            for edge_node in self._edge_nodes.values():
                edge_node.on_event(event)
        elif isinstance(event, (ev.EdgeAdded, ev.EdgeRemoved, ev.EdgePropertySet)):
            for edge_node in self._edge_nodes.values():
                edge_node.on_event(event)

    def dispatch_batch(self, batch) -> None:
        """Translate one consolidated batch, once per distinct signature.

        Each live input node turns the whole batch into a single net delta
        and emits it downstream once — the batched analogue of
        :meth:`dispatch`.
        """
        if self.router is not None:
            self.router.dispatch_batch(batch)
            return
        if batch.vertex_events:
            for node in self._vertex_nodes.values():
                node.emit_batch(batch)
        if batch.edge_events or any(
            isinstance(event, ev.VertexChanged) for event in batch.vertex_events
        ):
            for edge_node in self._edge_nodes.values():
                edge_node.emit_batch(batch)

    # -- maintenance ---------------------------------------------------------------

    def prune(self) -> int:
        """Drop input nodes with no remaining subscribers; returns count.

        Dropped nodes also withdraw their routing interests, so future
        events stop being offered to them at all.
        """
        removed = 0
        for cache in (self._vertex_nodes, self._edge_nodes):
            for key in [k for k, n in cache.items() if n.subscriber_count == 0]:
                if self.router is not None:
                    self.router.unregister(cache[key])
                del cache[key]
                removed += 1
        if self._unit_node is not None and self._unit_node.subscriber_count == 0:
            self._unit_node = None
        self.stats.pruned += removed
        return removed

    @property
    def node_count(self) -> int:
        return (
            len(self._vertex_nodes)
            + len(self._edge_nodes)
            + (1 if self._unit_node is not None else 0)
        )

    def _shared_nodes(self):
        yield from self._vertex_nodes.values()
        yield from self._edge_nodes.values()
        if self._unit_node is not None:
            yield self._unit_node

    def shared_nodes(self):
        """Every layer-owned node (public iteration for observability)."""
        yield from self._shared_nodes()

    def memory_size(self) -> int:
        """Total entries across layer-owned node memories (engine metric)."""
        return sum(node.memory_size() for node in self._shared_nodes())

    def memory_cells(self) -> int:
        """Total stored tuple fields across layer-owned node memories."""
        return sum(node.memory_cells() for node in self._shared_nodes())


# ---------------------------------------------------------------------------
# subplan tier
# ---------------------------------------------------------------------------


_MISSING_BINDING = ("$missing",)


def binding_key(value: Any) -> tuple:
    """An equality key for one parameter binding.

    Python conflates ``1 == True == 1.0``, so raw values would let a
    view reuse a subplan evaluated under a differently-*typed* binding:
    every key therefore pairs a type tag with the value.  Keys hold one
    compact form of the binding (atoms stay themselves; collections
    become plain tagged tuples; paths keep both their vertex and edge
    sequences — their ``repr`` alone elides edges) rather than the frozen
    value *plus* a ``repr`` of it, so a large bound collection is no
    longer pinned twice in every cache/catalog key that mentions it.
    """
    return _binding_key_form(freeze_value(value))


def _binding_key_form(frozen: Any) -> tuple:
    if isinstance(frozen, PathValue):
        return ("path", frozen.vertices, frozen.edges)
    if isinstance(frozen, ListValue):
        return ("list", tuple(_binding_key_form(v) for v in frozen))
    if isinstance(frozen, MapValue):
        return ("map", tuple((k, _binding_key_form(v)) for k, v in frozen.items()))
    return (type(frozen).__name__, frozen)


def parameter_bindings(
    fp: SubplanFingerprint, parameters: Mapping[str, Any]
) -> tuple | None:
    """Resolved bindings of exactly the parameters *fp* mentions.

    ``None`` signals an unhashable binding (the subtree is then
    uncacheable/unmatchable); unbound parameters get a sentinel so two
    plans that both leave ``$x`` unbound still agree.
    """
    if not fp.parameters:
        return ()
    try:
        bindings = tuple(
            (name, binding_key(parameters[name]))
            if name in parameters
            else (name, _MISSING_BINDING)
            for name in sorted(fp.parameters)
        )
        hash(bindings)
    except TypeError:
        return None
    return bindings


def subplan_cache_key(
    op: ops.Operator, parameters: Mapping[str, Any], variant: tuple = ()
) -> tuple | None:
    """Canonical cache/match key for *op*'s subtree, or ``None``.

    The key pairs the alpha-equivalent structural fingerprint with the
    resolved bindings of exactly the parameters the subtree mentions, plus
    a *variant* folding in build options that change node semantics (the
    engine's transitive mode).  Both the sharing layer and the
    view-answering catalog key by this, which is what lets a one-shot
    query's plan be matched directly against live maintained state.
    """
    fp = fingerprint(op)
    if fp is None:
        return None
    bindings = parameter_bindings(fp, parameters)
    if bindings is None:
        return None
    return (fp, bindings, variant)


@dataclass
class _SubplanEntry:
    """One cached interior node: who feeds it, and how many views hold it."""

    node: Node
    upstreams: tuple[tuple[Node, int], ...]
    refcount: int = 0


class _BindingTier:
    """Singleton head of binding-partition cache keys.

    Partition entries live in the same ``_subplans`` map as resolved-key
    entries (so refcounting, the detached LRU, stats and ``state_delta``
    reconstruction are shared machinery); the identity-singleton head
    keeps them unmistakable — a resolved key always starts with a
    :class:`~repro.compiler.fingerprint.SubplanFingerprint`.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "σ∂"


BINDING_TIER = _BindingTier()


@dataclass
class _ParamNodeEntry:
    """One binding-indexed σ node: its shared core and its partitions.

    The node itself is *not* refcounted — it lives exactly as long as it
    has partitions, and each partition is an ordinary refcounted
    ``_subplans`` entry.  ``prune()`` therefore drops individual bindings
    first; only the last partition's drop detaches the node from its core
    (which may then cascade the core itself into the detached LRU).
    """

    node: BindingIndexedSelectionNode
    upstream: Node
    side: int


@dataclass
class SharedSubplanLayer(SharedInputLayer):
    """Input sharing plus a fingerprint-keyed cache of interior subplans.

    The network builder asks :meth:`subplan_key` for a cache key before
    building any interior node; on a hit it cuts the whole subtree over to
    the cached node, on a miss it hands the freshly built node to
    :meth:`subplan_adopt`.  Ownership is the layer's: a shared node
    outlives the view that built it for as long as any view (or any live
    downstream shared subplan) still needs it.

    ``acquire``/``release`` refcount entries per registered view;
    :meth:`prune` drops entries whose refcount is zero *and* that no live
    subscriber still reads, unsubscribing them from their upstreams — which
    can free upstream shared subplans and, finally, input nodes, so one
    pass cascades the release down the whole shared chain.

    **Detached-subplan LRU.**  Register/detach churn otherwise rebuilds a
    just-pruned subplan from scratch on the next registration.  With
    ``detached_cache_size > 0``, :meth:`prune` instead *retains* up to that
    many dead subplan roots: a retained node stays subscribed to its
    upstreams and keeps receiving deltas, so its memory stays exactly
    current (it is still a correct materialisation of its subtree, and the
    view-answering catalog may serve from it).  A later registration that
    needs the same subtree revives it for free; the least-recently-touched
    root is genuinely dropped when the cache overflows, which can cascade
    its upstream chain into the cache or out of the layer.  The retained
    chain's upkeep (per-event delta work) is the price of instant revival —
    bounded by the cache size; ``detached_cache_size=0`` restores strict
    eager pruning.
    """

    detached_cache_size: int = 4
    share_across_bindings: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        self._subplans: dict[tuple, _SubplanEntry] = {}
        self._key_by_node: dict[int, tuple] = {}
        # binding-indexed σ nodes, keyed by (generalised structure, variant);
        # their per-binding partitions are ordinary _subplans entries under
        # BINDING_TIER-tagged keys
        self._param_nodes: dict[tuple, _ParamNodeEntry] = {}
        # dead-but-retained subplan roots, least-recently-used first;
        # members are also (still) present in _subplans
        self._detached_lru: OrderedDict[tuple, None] = OrderedDict()

    # -- cache keys -----------------------------------------------------------

    def subplan_key(
        self,
        op: ops.Operator,
        parameters: Mapping[str, Any],
        variant: tuple = (),
    ) -> tuple | None:
        """Cache key for *op*'s subtree, or ``None`` when unshareable."""
        return subplan_cache_key(op, parameters, variant)

    # -- node acquisition -----------------------------------------------------

    def subplan_lookup(self, key: tuple) -> Node | None:
        self.stats.subplan_requests += 1
        entry = self._subplans.get(key)
        if entry is None:
            return None
        self.stats.subplan_hits += 1
        # revival is an acquire()-side event: a bare probe (EXPLAIN, the
        # view matcher, a lookup the builder abandons) must not count one
        return entry.node

    def subplan_peek(self, key: tuple) -> Node | None:
        """The cached node for *key* without counting a sharing request.

        Read path for the view-answering catalog: a retained (detached)
        node is servable — it is still maintained — and a peek refreshes
        its LRU recency, but does not revive it.
        """
        entry = self._subplans.get(key)
        if entry is None:
            return None
        if key in self._detached_lru:
            self._detached_lru.move_to_end(key)
        return entry.node

    def subplan_adopt(
        self, key: tuple, node: Node, upstreams: tuple[tuple[Node, int], ...]
    ) -> None:
        """Take ownership of a freshly built node under *key*."""
        self._subplans[key] = _SubplanEntry(node, upstreams)
        self._key_by_node[id(node)] = key
        self.stats.subplan_nodes += 1

    # -- binding-indexed tier (cross-binding sharing of parameterised σ) ------

    def partition_key(
        self,
        op: ops.Operator,
        parameters: Mapping[str, Any],
        variant: tuple = (),
    ) -> tuple | None:
        """The binding-partition cache key for *op*, or ``None``.

        Eligible subtrees are parameterised selections over a
        *binding-free* core: the σ's own fingerprint mentions parameters,
        its child's mentions none (so the whole child chain shares across
        every binding already), and every mentioned parameter is bound to
        a hashable value.  Anything else — missing bindings, unhashable
        bindings, parameters below the σ, ``share_across_bindings=False``
        — falls back to the resolved (exact-binding) tier unchanged.
        """
        if not self.share_across_bindings or not isinstance(op, ops.Select):
            return None
        fp = fingerprint(op)
        if fp is None or not fp.parameters:
            return None
        child_fp = fingerprint(op.children[0])
        if child_fp is None or child_fp.parameters:
            return None
        gfp = generalized_fingerprint(op)
        try:
            bindings = tuple(
                binding_key(parameters[name]) for name in gfp.param_order
            )
            hash(bindings)
        except (KeyError, TypeError):
            return None
        return (BINDING_TIER, gfp.structure, variant, bindings)

    def param_node(self, key: tuple) -> BindingIndexedSelectionNode | None:
        """The live binding-indexed node for a partition *key*, if any."""
        entry = self._param_nodes.get((key[1], key[2]))
        return entry.node if entry is not None else None

    def param_adopt(
        self, key: tuple, node: BindingIndexedSelectionNode, upstream: Node, side: int
    ) -> None:
        """Take ownership of a freshly built binding-indexed σ node."""
        self._param_nodes[(key[1], key[2])] = _ParamNodeEntry(node, upstream, side)
        self.stats.binding_nodes += 1

    def partition_adopt(
        self, key: tuple, op: ops.Operator, parameters: Mapping[str, Any]
    ) -> SelectionPartitionNode:
        """Create the partition for *key* on its (already live) node.

        The partition's evaluation context binds the *creating* view's
        parameter names — positions in the generalised fingerprint align
        across views, so a probing view's differently-named parameters
        translate by position.
        """
        entry = self._param_nodes[(key[1], key[2])]
        gfp = generalized_fingerprint(op)
        ctx = EvalContext(
            {
                creator_name: parameters[probe_name]
                for creator_name, probe_name in zip(
                    entry.node.param_order, gfp.param_order
                )
            }
        )
        facade = SelectionPartitionNode(entry.node.schema, entry.node, ctx)
        entry.node.add_partition(key[3], facade)
        self._subplans[key] = _SubplanEntry(
            facade, ((entry.upstream, entry.side),)
        )
        self._key_by_node[id(facade)] = key
        self.stats.binding_partitions += 1
        return facade

    def partition_peek(
        self,
        op: ops.Operator,
        parameters: Mapping[str, Any],
        variant: tuple = (),
    ) -> SelectionPartitionNode | None:
        """The live partition serving *op* under *parameters*, if any.

        Read path for the view-answering catalog — same contract as
        :meth:`subplan_peek` (refreshes LRU recency, never revives).
        """
        key = self.partition_key(op, parameters, variant)
        if key is None:
            return None
        node = self.subplan_peek(key)
        return node if isinstance(node, SelectionPartitionNode) else None

    def acquire(self, key: tuple) -> None:
        self._subplans[key].refcount += 1
        self.stats.acquires += 1
        # a held subplan is live again, not a detached-cache resident;
        # leaving the LRU under an acquire is precisely a revival
        if key in self._detached_lru:
            del self._detached_lru[key]
            self.stats.detached_revived += 1

    def release(self, key: tuple) -> None:
        entry = self._subplans.get(key)
        if entry is None:
            return
        if entry.refcount <= 0:
            # a release without a live acquire (e.g. a detach racing a
            # prune) must not drive the count negative: prune() reads
            # ``refcount == 0`` as "no view holds this", and an underflow
            # would let a *later* acquire sit at zero — a liveness bug
            # that silently drops a held subplan
            self.stats.release_underflows += 1
            logger.warning(
                "release() without matching acquire for shared subplan %r",
                key,
            )
            return
        entry.refcount -= 1
        self.stats.releases += 1

    # -- targeted activation --------------------------------------------------

    def state_delta(self, node: Node) -> Delta:
        """Current output of a layer-owned node, for targeted activation.

        Stateful nodes answer from their own memories; stateless ones are
        derived by replaying each upstream's state through the node's pure
        ``transform`` (upstream chains bottom out at input nodes, whose
        state is the graph itself).
        """
        own = node.state_delta()
        if own is not None:
            return own
        entry = self._subplans[self._key_by_node[id(node)]]
        out = Delta()
        for upstream, side in entry.upstreams:
            out.update(node.transform(self.state_delta(upstream), side))
        return out

    # -- maintenance ----------------------------------------------------------

    def prune(self) -> int:
        """Drop dead subplans (cascading) and then dead input nodes.

        A subplan dies when no view holds it (refcount zero) and no live
        node still subscribes to its output.  Dead roots first enter the
        detached LRU (still connected and maintained, see the class
        docstring); only overflow — or ``detached_cache_size=0`` — makes
        them genuinely drop, unsubscribing from their upstreams, which can
        push *them* to zero subscribers, so the scan repeats until a
        fixpoint before the input tier is swept.
        """
        removed = 0
        # upstreams orphaned by an eviction this sweep: they died only
        # because their (colder) downstream was dropped, so they must not
        # enter the LRU as most-recent and displace genuinely warm roots
        cascade_orphans: set[int] = set()
        changed = True
        while changed:
            changed = False
            for key, entry in list(self._subplans.items()):
                if self._subplans.get(key) is not entry:
                    continue  # dropped by an eviction earlier in this sweep
                if entry.refcount != 0 or entry.node.subscriber_count != 0:
                    continue
                if key in self._detached_lru:
                    continue  # already retained; ages out via overflow
                if self.detached_cache_size > 0:
                    self._detached_lru[key] = None
                    if id(entry.node) in cascade_orphans:
                        self._detached_lru.move_to_end(key, last=False)
                    self.stats.detached_retained += 1
                    while len(self._detached_lru) > self.detached_cache_size:
                        oldest, _ = self._detached_lru.popitem(last=False)
                        cascade_orphans |= self._drop_subplan(oldest)
                        self.stats.detached_evicted += 1
                        removed += 1
                        changed = True
                else:
                    cascade_orphans |= self._drop_subplan(key)
                    removed += 1
                    changed = True
        self.stats.pruned += removed
        return removed + super().prune()

    def _drop_subplan(self, key: tuple) -> set[int]:
        """Genuinely remove one cached subplan and detach it upstream.

        Returns the ids of the upstream nodes it unsubscribed from — the
        candidates the drop may have orphaned.  Binding-partition keys
        drop just their binding from the owning node; the node itself
        (and its subscription to the shared core) goes only with its last
        partition — individual bindings die before the core does.
        """
        entry = self._subplans.pop(key)
        self._detached_lru.pop(key, None)
        self._key_by_node.pop(id(entry.node), None)
        if key[0] is BINDING_TIER:
            gen_key = (key[1], key[2])
            node_entry = self._param_nodes[gen_key]
            node_entry.node.remove_partition(key[3])
            if not node_entry.node.has_partitions:
                del self._param_nodes[gen_key]
                node_entry.upstream.unsubscribe(node_entry.node, node_entry.side)
                node_entry.node.dispose()
                return {id(node_entry.upstream)}
            return set()
        for upstream, side in entry.upstreams:
            upstream.unsubscribe(entry.node, side)
        # genuinely dropped (never a mere LRU retention): interned rows
        # held by this node's memories go back to the engine pool
        entry.node.dispose()
        return {id(upstream) for upstream, _ in entry.upstreams}

    @property
    def subplan_count(self) -> int:
        return len(self._subplans)

    @property
    def binding_node_count(self) -> int:
        """Live binding-indexed σ nodes (cross-binding tier)."""
        return len(self._param_nodes)

    @property
    def binding_partition_count(self) -> int:
        """Live binding partitions across all binding-indexed σ nodes."""
        return sum(
            entry.node.partition_count for entry in self._param_nodes.values()
        )

    @property
    def detached_count(self) -> int:
        """Dead-but-retained subplan roots currently in the LRU."""
        return len(self._detached_lru)

    @property
    def node_count(self) -> int:
        return super().node_count + len(self._subplans) + len(self._param_nodes)

    def _shared_nodes(self):
        yield from super()._shared_nodes()
        for entry in self._subplans.values():
            yield entry.node
        for param_entry in self._param_nodes.values():
            yield param_entry.node
