"""Updating queries: CREATE / DELETE / SET / REMOVE / MERGE.

The paper's engine consumes a *change stream*; this package produces one.
Updating openCypher queries are executed clause-by-clause over a binding
table (the standard Cypher execution model), mutating the
:class:`~repro.graph.graph.PropertyGraph` through its normal API — so every
write surfaces as elementary change events that registered incremental
views consume, turning the engine into an *active graph database* (cf. the
Graphflow comparison in the paper's related work).

Each query executes inside a compensating transaction: a failure midway
rolls back all of its writes, including their effects on live views.
"""

from .executor import ExecutionResult, UpdateExecutor, execute_update
from .summary import UpdateSummary

__all__ = [
    "UpdateExecutor",
    "ExecutionResult",
    "UpdateSummary",
    "execute_update",
]
