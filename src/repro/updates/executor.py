"""Clause-by-clause execution of updating queries.

The executor drives an :class:`~repro.cypher.ast.UpdatingQuery` over a
binding table:

* reading clauses (MATCH / OPTIONAL MATCH / UNWIND / WITH) transform the
  table exactly as the read pipeline would,
* updating clauses (CREATE / DELETE / SET / REMOVE / MERGE) mutate the
  graph through its normal API — every write surfaces as change events
  that live incremental views consume,
* an optional final RETURN projects the table into a
  :class:`~repro.eval.results.ResultTable`.

The whole query runs inside a compensating transaction: an error midway
undoes all of the query's writes (and their effects on views).

Visibility rules follow openCypher: a clause sees the graph as left by the
*previous* clause; MERGE additionally sees its own per-row creations (so
``UNWIND [1,2] AS x MERGE (n:Tag)`` creates one vertex, not two).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..algebra.expressions import (
    AggregateSpec,
    EvalContext,
    compile_expr,
    contains_aggregate,
    is_aggregate_call,
)
from ..algebra.schema import AttrKind, Attribute, Schema
from ..cypher import ast
from ..cypher.unparser import unparse_expr
from ..errors import CypherSemanticError, EvaluationError
from ..eval.interpreter import GraphResolver
from ..eval.results import ResultTable
from ..graph.graph import PropertyGraph
from ..graph.values import ListValue, MapValue, PathValue, order_key
from .matcher import PatternMatcher, pattern_bindings
from .summary import UpdateSummary


@dataclass(slots=True)
class ExecutionResult:
    """Outcome of an updating query: counters plus the optional RETURN."""

    summary: UpdateSummary
    table: ResultTable | None = None

    def rows(self) -> list[tuple]:
        return self.table.rows() if self.table is not None else []


@dataclass(slots=True)
class _Table:
    """The binding table: a schema plus rows (a bag — duplicates allowed)."""

    schema: Schema
    rows: list[tuple] = field(default_factory=list)


class UpdateExecutor:
    """Executes updating queries against a live graph."""

    def __init__(
        self,
        graph: PropertyGraph,
        parameters: Mapping[str, Any] | None = None,
        batcher: Any = None,
    ):
        self.graph = graph
        #: optional factory of a batch scope (e.g. ``IncrementalEngine.batch``);
        #: when set, the query's writes reach incremental views as one
        #: consolidated delta after its transaction commits, instead of one
        #: propagation per elementary write
        self._batcher = batcher
        self.ctx = EvalContext(dict(parameters or {}))
        self.resolver = GraphResolver(graph)
        self.summary = UpdateSummary()
        # SET/REMOVE items are evaluated once per binding row; cache their
        # compiled closures per (expression, schema) identity
        self._compiled: dict[tuple[int, int], Any] = {}

    def _cached_expr(self, expr: ast.Expr, schema: Schema):
        key = (id(expr), id(schema))
        fn = self._compiled.get(key)
        if fn is None:
            fn = compile_expr(expr, schema, self.resolver)
            self._compiled[key] = fn
        return fn

    # -- public -------------------------------------------------------------

    def execute(self, query: ast.UpdatingQuery) -> ExecutionResult:
        """Run *query* atomically; returns counters and the RETURN table.

        When the graph is already inside a transaction — e.g. a view
        change-callback (trigger) issuing a follow-up write from within an
        enclosing updating query — the execution *joins* that scope instead
        of nesting: a failure anywhere rolls back the outermost query and
        everything its triggers did.
        """
        batch_scope = self._batcher() if self._batcher is not None else nullcontext()
        scope = (
            nullcontext() if self.graph.in_transaction else self.graph.transaction()
        )
        with batch_scope, scope:
            table = _Table(Schema(()), [()])
            for clause in query.clauses:
                table = self._apply_clause(table, clause)
            result_table = None
            if query.return_clause is not None:
                body = query.return_clause.body
                table = self._project(table, body, where=None)
                rows = self._ordered_rows(table, body)
                result_table = ResultTable(
                    table.schema,
                    rows,
                    ordered=bool(body.order_by or body.skip or body.limit),
                    graph=self.graph,
                )
        return ExecutionResult(self.summary, result_table)

    # -- clause dispatch ------------------------------------------------------

    def _apply_clause(self, table: _Table, clause: ast.AstNode) -> _Table:
        if isinstance(clause, ast.MatchClause):
            return self._apply_match(table, clause)
        if isinstance(clause, ast.UnwindClause):
            return self._apply_unwind(table, clause)
        if isinstance(clause, ast.WithClause):
            projected = self._project(table, clause.body, where=clause.where)
            if clause.body.order_by or clause.body.skip or clause.body.limit:
                projected = _Table(
                    projected.schema, self._ordered_rows(projected, clause.body)
                )
            return projected
        if isinstance(clause, ast.CreateClause):
            return self._apply_create(table, clause)
        if isinstance(clause, ast.MergeClause):
            return self._apply_merge(table, clause)
        if isinstance(clause, ast.DeleteClause):
            return self._apply_delete(table, clause)
        if isinstance(clause, ast.SetClause):
            return self._apply_set(table, clause.items)
        if isinstance(clause, ast.RemoveClause):
            return self._apply_remove(table, clause)
        raise CypherSemanticError(
            f"unsupported clause in updating query: {type(clause).__name__}"
        )

    # -- reading clauses --------------------------------------------------------

    def _apply_match(self, table: _Table, clause: ast.MatchClause) -> _Table:
        matcher = PatternMatcher(
            self.graph, clause.pattern, table.schema, self.resolver, clause.where
        )
        rows: list[tuple] = []
        pad = (None,) * len(matcher.new_names)
        for row in table.rows:
            matched = False
            for extended in matcher.expand(row, self.ctx):
                rows.append(extended)
                matched = True
            if clause.optional and not matched:
                rows.append(row + pad)
        return _Table(matcher.output_schema, rows)

    def _apply_unwind(self, table: _Table, clause: ast.UnwindClause) -> _Table:
        if clause.alias in table.schema:
            raise CypherSemanticError(f"variable {clause.alias!r} is already bound")
        fn = compile_expr(clause.expression, table.schema, self.resolver)
        schema = Schema(
            tuple(table.schema.attributes) + (Attribute(clause.alias, AttrKind.VALUE),)
        )
        rows: list[tuple] = []
        for row in table.rows:
            value = fn(row, self.ctx)
            if value is None:
                continue
            items = list(value) if isinstance(value, ListValue) else [value]
            for item in items:
                rows.append(row + (item,))
        return _Table(schema, rows)

    # -- projection (WITH / RETURN) ------------------------------------------------

    def _project(
        self, table: _Table, body: ast.ProjectionBody, where: ast.Expr | None
    ) -> _Table:
        names: list[str] = []
        for item in body.items:
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expression, ast.Variable):
                names.append(item.expression.name)
            else:
                names.append(unparse_expr(item.expression))
        if len(set(names)) != len(names):
            raise CypherSemanticError(f"duplicate projection column in {names}")

        aggregating = any(contains_aggregate(i.expression) for i in body.items)
        if aggregating:
            projected = self._project_aggregate(table, body, names)
        else:
            projected = self._project_plain(table, body, names)
        if body.distinct:
            seen: dict[tuple, None] = {}
            for row in projected.rows:
                seen.setdefault(row, None)
            projected = _Table(projected.schema, list(seen))
        if where is not None:
            predicate = compile_expr(where, projected.schema, self.resolver)
            projected = _Table(
                projected.schema,
                [r for r in projected.rows if predicate(r, self.ctx) is True],
            )
        return projected

    def _projection_kind(self, expr: ast.Expr, schema: Schema) -> AttrKind:
        if isinstance(expr, ast.Variable) and expr.name in schema:
            return schema.kind_of(expr.name)
        return AttrKind.VALUE

    def _project_plain(
        self, table: _Table, body: ast.ProjectionBody, names: list[str]
    ) -> _Table:
        attributes = tuple(
            Attribute(name, self._projection_kind(item.expression, table.schema))
            for name, item in zip(names, body.items)
        )
        fns = [
            compile_expr(item.expression, table.schema, self.resolver)
            for item in body.items
        ]
        rows = [tuple(fn(row, self.ctx) for fn in fns) for row in table.rows]
        return _Table(Schema(attributes), rows)

    def _project_aggregate(
        self, table: _Table, body: ast.ProjectionBody, names: list[str]
    ) -> _Table:
        group_items: list[tuple[int, ast.ReturnItem]] = []
        agg_items: list[tuple[int, ast.ReturnItem]] = []
        for position, item in enumerate(body.items):
            if contains_aggregate(item.expression):
                if not is_aggregate_call(item.expression):
                    raise CypherSemanticError(
                        "composite aggregate expressions are not supported in "
                        "updating queries; aggregate must be the whole item"
                    )
                agg_items.append((position, item))
            else:
                group_items.append((position, item))

        group_fns = [
            compile_expr(item.expression, table.schema, self.resolver)
            for _, item in group_items
        ]
        specs: list[AggregateSpec] = []
        for _, item in agg_items:
            expr = item.expression
            if isinstance(expr, ast.CountStar):
                specs.append(AggregateSpec("count", None, False, "out"))
            else:
                assert isinstance(expr, ast.FunctionCall)
                specs.append(
                    AggregateSpec(expr.name, expr.args[0], expr.distinct, "out")
                )
        argument_fns = [
            compile_expr(spec.argument, table.schema, self.resolver)
            if spec.argument is not None
            else None
            for spec in specs
        ]

        groups: dict[tuple, list] = {}
        for row in table.rows:
            key = tuple(fn(row, self.ctx) for fn in group_fns)
            aggregators = groups.get(key)
            if aggregators is None:
                aggregators = [spec.make_aggregator() for spec in specs]
                groups[key] = aggregators
            for aggregator, argument_fn in zip(aggregators, argument_fns):
                value = argument_fn(row, self.ctx) if argument_fn else _ROW_MARKER
                aggregator.insert(value, 1)
        if not groups and not group_items:
            groups[()] = [spec.make_aggregator() for spec in specs]

        attributes: list[Attribute | None] = [None] * len(body.items)
        for (position, item), __ in zip(group_items, group_fns):
            attributes[position] = Attribute(
                names[position], self._projection_kind(item.expression, table.schema)
            )
        for position, __ in agg_items:
            attributes[position] = Attribute(names[position], AttrKind.VALUE)

        rows: list[tuple] = []
        for key, aggregators in groups.items():
            row: list[Any] = [None] * len(body.items)
            for (position, __), value in zip(group_items, key):
                row[position] = value
            for (position, __), aggregator in zip(agg_items, aggregators):
                row[position] = aggregator.result()
            rows.append(tuple(row))
        return _Table(Schema(tuple(a for a in attributes if a is not None)), rows)

    def _ordered_rows(self, table: _Table, body: ast.ProjectionBody) -> list[tuple]:
        rows = sorted(
            table.rows, key=lambda r: tuple(order_key(value) for value in r)
        )
        for item in reversed(body.order_by):
            fn = compile_expr(item.expression, table.schema, self.resolver)
            rows.sort(
                key=lambda r: order_key(fn(r, self.ctx)),
                reverse=not item.ascending,
            )
        if body.skip is not None:
            rows = rows[self._count_of(body.skip) :]
        if body.limit is not None:
            rows = rows[: self._count_of(body.limit)]
        return rows

    def _count_of(self, expr: ast.Expr) -> int:
        value = compile_expr(expr, Schema(()), self.resolver)((), self.ctx)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise EvaluationError(
                f"SKIP/LIMIT must be a non-negative integer, got {value!r}"
            )
        return value

    # -- CREATE -------------------------------------------------------------------

    def _apply_create(self, table: _Table, clause: ast.CreateClause) -> _Table:
        self._check_create_pattern(clause.pattern, table.schema)
        new_attributes = pattern_bindings(
            clause.pattern, frozenset(table.schema.names)
        )
        schema = Schema(tuple(table.schema.attributes) + tuple(new_attributes))
        new_names = [a.name for a in new_attributes]
        compiled = self._compile_pattern_properties(clause.pattern, table.schema)
        rows: list[tuple] = []
        for row in table.rows:
            bindings = dict(zip(table.schema.names, row))
            for part in clause.pattern.parts:
                self._create_part(part, bindings, row, compiled)
            rows.append(row + tuple(bindings[name] for name in new_names))
        return _Table(schema, rows)

    def _check_create_pattern(self, pattern: ast.Pattern, schema: Schema) -> None:
        for part in pattern.parts:
            for element in part.elements:
                if isinstance(element, ast.RelationshipPattern):
                    if element.var_length:
                        raise CypherSemanticError(
                            "variable-length relationships cannot be created"
                        )
                    if element.direction == "both":
                        raise CypherSemanticError(
                            "relationships must have a direction in CREATE/MERGE"
                        )
                    if len(element.types) != 1:
                        raise CypherSemanticError(
                            "relationships must have exactly one type in CREATE/MERGE"
                        )
                    if element.variable and element.variable in schema:
                        raise CypherSemanticError(
                            f"relationship variable {element.variable!r} is "
                            "already bound"
                        )
            if len(part.elements) == 1:
                node = part.elements[0]
                assert isinstance(node, ast.NodePattern)
                if node.variable and node.variable in schema:
                    raise CypherSemanticError(
                        f"variable {node.variable!r} is already bound; a "
                        "single-node CREATE/MERGE pattern must introduce a "
                        "new variable"
                    )

    def _compile_pattern_properties(
        self, pattern: ast.Pattern, schema: Schema
    ) -> dict[int, list[tuple[str, Any]]]:
        compiled: dict[int, list[tuple[str, Any]]] = {}
        for part in pattern.parts:
            for element in part.elements:
                if element.properties:  # type: ignore[union-attr]
                    compiled[id(element)] = [
                        (key, compile_expr(value, schema, self.resolver))
                        for key, value in element.properties  # type: ignore[union-attr]
                    ]
        return compiled

    def _evaluate_properties(
        self,
        element: ast.AstNode,
        row: tuple,
        compiled: dict[int, list[tuple[str, Any]]],
    ) -> dict[str, Any]:
        entries = compiled.get(id(element), ())
        values = {key: fn(row, self.ctx) for key, fn in entries}
        return {key: value for key, value in values.items() if value is not None}

    def _create_part(
        self,
        part: ast.PatternPart,
        bindings: dict[str, Any],
        row: tuple,
        compiled: dict[int, list[tuple[str, Any]]],
    ) -> None:
        elements = part.elements
        vertices: list[int] = []
        edges: list[int] = []
        at = self._create_node(elements[0], bindings, row, compiled)
        vertices.append(at)
        position = 1
        while position < len(elements):
            relationship = elements[position]
            node = elements[position + 1]
            assert isinstance(relationship, ast.RelationshipPattern)
            end = self._create_node(node, bindings, row, compiled)
            properties = self._evaluate_properties(relationship, row, compiled)
            if relationship.direction == "out":
                source, target = at, end
            else:
                source, target = end, at
            edge = self.graph.add_edge(
                source, target, relationship.types[0], properties=properties
            )
            self.summary.relationships_created += 1
            self.summary.properties_set += len(properties)
            if relationship.variable:
                bindings[relationship.variable] = edge
            edges.append(edge)
            vertices.append(end)
            at = end
            position += 2
        if part.variable:
            bindings[part.variable] = PathValue(tuple(vertices), tuple(edges))

    def _create_node(
        self,
        node: ast.AstNode,
        bindings: dict[str, Any],
        row: tuple,
        compiled: dict[int, list[tuple[str, Any]]],
    ) -> int:
        assert isinstance(node, ast.NodePattern)
        if node.variable and node.variable in bindings:
            existing = bindings[node.variable]
            if not isinstance(existing, int) or not self.graph.has_vertex(existing):
                raise EvaluationError(
                    f"variable {node.variable!r} is not a live vertex"
                )
            if node.labels or node.properties:
                raise CypherSemanticError(
                    f"bound variable {node.variable!r} cannot carry labels or "
                    "properties in CREATE/MERGE"
                )
            return existing
        properties = self._evaluate_properties(node, row, compiled)
        vertex = self.graph.add_vertex(labels=node.labels, properties=properties)
        self.summary.nodes_created += 1
        self.summary.properties_set += len(properties)
        self.summary.labels_added += len(node.labels)
        if node.variable:
            bindings[node.variable] = vertex
        return vertex

    # -- MERGE --------------------------------------------------------------------

    def _apply_merge(self, table: _Table, clause: ast.MergeClause) -> _Table:
        part = clause.part
        for element in part.elements:
            if isinstance(element, ast.RelationshipPattern) and element.var_length:
                raise CypherSemanticError(
                    "variable-length relationships are not allowed in MERGE"
                )
        pattern = ast.Pattern((part,))
        self._check_create_pattern(pattern, table.schema)
        new_attributes = pattern_bindings(pattern, frozenset(table.schema.names))
        schema = Schema(tuple(table.schema.attributes) + tuple(new_attributes))
        new_names = [a.name for a in new_attributes]
        compiled = self._compile_pattern_properties(pattern, table.schema)

        # One matcher serves every row: expand() consults the live graph,
        # so each row's match sees earlier rows' creations (MERGE rule).
        matcher = PatternMatcher(self.graph, pattern, table.schema, self.resolver)
        rows: list[tuple] = []
        for row in table.rows:
            matches = list(matcher.expand(row, self.ctx))
            if matches:
                for extended in matches:
                    bindings = dict(zip(matcher.output_schema.names, extended))
                    self._apply_set_items(clause.on_match, bindings, extended, schema)
                    rows.append(extended)
            else:
                self._reject_null_merge_properties(part, row, compiled)
                bindings = dict(zip(table.schema.names, row))
                self._create_part(part, bindings, row, compiled)
                extended = row + tuple(bindings[name] for name in new_names)
                self._apply_set_items(clause.on_create, bindings, extended, schema)
                rows.append(extended)
        return _Table(schema, rows)

    def _reject_null_merge_properties(
        self,
        part: ast.PatternPart,
        row: tuple,
        compiled: dict[int, list[tuple[str, Any]]],
    ) -> None:
        """A null in a MERGE property map can never match, and silently
        creating would grow the graph on every re-run — error out instead
        (Neo4j semantics)."""
        for element in part.elements:
            for key, fn in compiled.get(id(element), ()):
                if fn(row, self.ctx) is None:
                    raise EvaluationError(
                        f"cannot MERGE using null property value for {key!r}"
                    )

    # -- DELETE -------------------------------------------------------------------

    def _apply_delete(self, table: _Table, clause: ast.DeleteClause) -> _Table:
        doomed_vertices: dict[int, None] = {}
        doomed_edges: dict[int, None] = {}
        for expression in clause.expressions:
            kind = self._delete_kind(expression, table.schema)
            fn = compile_expr(expression, table.schema, self.resolver)
            for row in table.rows:
                value = fn(row, self.ctx)
                if value is None:
                    continue
                if kind is AttrKind.PATH:
                    assert isinstance(value, PathValue)
                    for edge in value.edges:
                        doomed_edges[edge] = None
                    for vertex in value.vertices:
                        doomed_vertices[vertex] = None
                elif kind is AttrKind.EDGE:
                    doomed_edges[value] = None
                else:
                    doomed_vertices[value] = None
        for edge in doomed_edges:
            if self.graph.has_edge(edge):
                self.graph.remove_edge(edge)
                self.summary.relationships_deleted += 1
        for vertex in doomed_vertices:
            if not self.graph.has_vertex(vertex):
                continue
            if clause.detach:
                before = self.graph.edge_count
                self.graph.remove_vertex(vertex, detach=True)
                self.summary.relationships_deleted += before - self.graph.edge_count
            else:
                self.graph.remove_vertex(vertex)  # DanglingEdgeError if edges remain
            self.summary.nodes_deleted += 1
        return table

    def _delete_kind(self, expression: ast.Expr, schema: Schema) -> AttrKind:
        if isinstance(expression, ast.Variable) and expression.name in schema:
            kind = schema.kind_of(expression.name)
            if kind in (AttrKind.VERTEX, AttrKind.EDGE, AttrKind.PATH):
                return kind
        raise CypherSemanticError(
            "DELETE expects a node, relationship or path variable, got "
            f"{unparse_expr(expression)!r}"
        )

    # -- SET / REMOVE -----------------------------------------------------------------

    def _apply_set(self, table: _Table, items: tuple[ast.AstNode, ...]) -> _Table:
        for row in table.rows:
            bindings = dict(zip(table.schema.names, row))
            self._apply_set_items(items, bindings, row, table.schema)
        return table

    def _apply_set_items(
        self,
        items: tuple[ast.AstNode, ...],
        bindings: dict[str, Any],
        row: tuple,
        schema: Schema,
    ) -> None:
        for item in items:
            if isinstance(item, ast.SetProperty):
                self._set_property(item, bindings, row, schema)
            elif isinstance(item, ast.SetLabels):
                vertex = self._vertex_of(item.variable, bindings)
                if vertex is None:
                    continue
                for label in item.labels:
                    if not self.graph.has_label(vertex, label):
                        self.graph.add_label(vertex, label)
                        self.summary.labels_added += 1
            elif isinstance(item, ast.SetProperties):
                self._set_properties(item, bindings, row, schema)
            else:  # pragma: no cover - parser produces only the above
                raise CypherSemanticError(
                    f"unsupported SET item {type(item).__name__}"
                )

    def _vertex_of(self, variable: str, bindings: dict[str, Any]) -> int | None:
        if variable not in bindings:
            raise CypherSemanticError(f"variable {variable!r} is not bound")
        value = bindings[variable]
        if value is None:
            return None
        if not isinstance(value, int) or not self.graph.has_vertex(value):
            raise EvaluationError(f"{variable!r} is not a live vertex: {value!r}")
        return value

    def _target_entity(
        self, variable: str, bindings: dict[str, Any], schema: Schema
    ) -> tuple[str, int] | None:
        """Resolve a SET/REMOVE target to ('vertex'|'edge', id), honouring
        the schema's attribute kind to disambiguate the two id spaces."""
        if variable not in bindings:
            raise CypherSemanticError(f"variable {variable!r} is not bound")
        value = bindings[variable]
        if value is None:
            return None
        if not isinstance(value, int):
            raise EvaluationError(
                f"SET/REMOVE target {variable!r} is not an entity: {value!r}"
            )
        kind = schema.kind_of(variable) if variable in schema else None
        if kind is AttrKind.EDGE:
            return ("edge", value)
        if kind is AttrKind.VERTEX:
            return ("vertex", value)
        # Fall back to existence checks (e.g. targets bound by CREATE whose
        # schema kind is VALUE after a WITH projection).
        if self.graph.has_vertex(value):
            return ("vertex", value)
        if self.graph.has_edge(value):
            return ("edge", value)
        raise EvaluationError(f"{variable!r} is not a live entity: {value!r}")

    def _set_property(
        self,
        item: ast.SetProperty,
        bindings: dict[str, Any],
        row: tuple,
        schema: Schema,
    ) -> None:
        subject = item.target.subject
        if not isinstance(subject, ast.Variable):
            raise CypherSemanticError(
                "SET property target must be variable.key, got "
                f"{unparse_expr(item.target)!r}"
            )
        target = self._target_entity(subject.name, bindings, schema)
        if target is None:
            return
        value = self._cached_expr(item.value, schema)(row, self.ctx)
        kind, entity = target
        if kind == "vertex":
            self.graph.set_vertex_property(entity, item.target.key, value)
        else:
            self.graph.set_edge_property(entity, item.target.key, value)
        self.summary.properties_set += 1

    def _set_properties(
        self,
        item: ast.SetProperties,
        bindings: dict[str, Any],
        row: tuple,
        schema: Schema,
    ) -> None:
        target = self._target_entity(item.variable, bindings, schema)
        if target is None:
            return
        value = self._cached_expr(item.value, schema)(row, self.ctx)
        if value is None:
            value = MapValue({})
        if not isinstance(value, MapValue):
            raise EvaluationError(
                f"SET {item.variable} {'+=' if item.merge else '='} expects a "
                f"map, got {value!r}"
            )
        kind, entity = target
        if kind == "vertex":
            current = self.graph.vertex_properties(entity)
            setter = self.graph.set_vertex_property
        else:
            current = self.graph.edge_properties(entity)
            setter = self.graph.set_edge_property
        if not item.merge:
            for key in current:
                if key not in value:
                    setter(entity, key, None)
                    self.summary.properties_set += 1
        for key, new in value.items():
            setter(entity, key, new)
            self.summary.properties_set += 1

    def _apply_remove(self, table: _Table, clause: ast.RemoveClause) -> _Table:
        for row in table.rows:
            bindings = dict(zip(table.schema.names, row))
            for item in clause.items:
                if isinstance(item, ast.RemoveProperty):
                    subject = item.target.subject
                    if not isinstance(subject, ast.Variable):
                        raise CypherSemanticError(
                            "REMOVE property target must be variable.key"
                        )
                    target = self._target_entity(
                        subject.name, bindings, table.schema
                    )
                    if target is None:
                        continue
                    kind, entity = target
                    if kind == "vertex":
                        self.graph.set_vertex_property(entity, item.target.key, None)
                    else:
                        self.graph.set_edge_property(entity, item.target.key, None)
                    self.summary.properties_set += 1
                else:
                    assert isinstance(item, ast.RemoveLabels)
                    vertex = self._vertex_of(item.variable, bindings)
                    if vertex is None:
                        continue
                    for label in item.labels:
                        if self.graph.has_label(vertex, label):
                            self.graph.remove_label(vertex, label)
                            self.summary.labels_removed += 1
        return table


#: Marker fed to ``count(*)`` aggregators (any non-null value counts).
_ROW_MARKER = object()


def execute_update(
    graph: PropertyGraph,
    query: ast.UpdatingQuery,
    parameters: Mapping[str, Any] | None = None,
) -> ExecutionResult:
    """Execute *query* against *graph* inside a transaction."""
    return UpdateExecutor(graph, parameters).execute(query)
