"""Per-row pattern matching for updating queries.

Updating queries execute over a *binding table* (the standard Cypher
model): each clause consumes the table a row at a time.  MATCH and MERGE
need to match a pattern **relative to one row's existing bindings** against
the *live* graph — unlike the compiled read pipeline, which evaluates whole
plans against a snapshot.  This module implements that per-row matcher:
a backtracking walk over the pattern's node/relationship elements using the
graph's adjacency indices.

Semantics mirror the read pipeline (and are differentially tested against
it): bag semantics, trails for variable-length segments (edge-distinct),
per-MATCH relationship uniqueness across all pattern parts, undirected
self-loops binding once.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from ..algebra.expressions import (
    CompiledExpr,
    EntityResolver,
    EvalContext,
    compile_expr,
)
from ..algebra.schema import AttrKind, Attribute, Schema
from ..cypher import ast
from ..errors import CypherSemanticError
from ..eval.interpreter import enumerate_trails
from ..graph.graph import PropertyGraph
from ..graph.values import ListValue, PathValue, cypher_eq


def binding_kind(element: ast.AstNode) -> AttrKind:
    """The schema kind a pattern element's variable binds to."""
    if isinstance(element, ast.NodePattern):
        return AttrKind.VERTEX
    assert isinstance(element, ast.RelationshipPattern)
    # A variable-length relationship variable is a *list* of edges.
    return AttrKind.VALUE if element.var_length else AttrKind.EDGE


def pattern_bindings(
    pattern: ast.Pattern, bound: frozenset[str]
) -> list[Attribute]:
    """New attributes the pattern introduces, in first-occurrence order."""
    seen = set(bound)
    out: list[Attribute] = []
    for part in pattern.parts:
        for attribute in part_bindings(part, frozenset(seen)):
            seen.add(attribute.name)
            out.append(attribute)
    return out


def part_bindings(part: ast.PatternPart, bound: frozenset[str]) -> list[Attribute]:
    """New attributes one pattern part introduces."""
    seen = set(bound)
    out: list[Attribute] = []
    for element in part.elements:
        variable = element.variable  # type: ignore[union-attr]
        if variable and variable not in seen:
            seen.add(variable)
            out.append(Attribute(variable, binding_kind(element)))
    if part.variable and part.variable not in seen:
        out.append(Attribute(part.variable, AttrKind.PATH))
    return out


class _PropertyTest:
    """A compiled ``{key: expr}`` map constraint on a node or edge."""

    def __init__(
        self,
        entries: tuple[tuple[str, ast.Expr], ...],
        schema: Schema,
        resolver: EntityResolver,
    ):
        self._tests: list[tuple[str, CompiledExpr]] = [
            (key, compile_expr(value, schema, resolver)) for key, value in entries
        ]

    @property
    def keys(self) -> list[str]:
        return [key for key, _ in self._tests]

    def value_of(self, key: str, row: tuple, ctx: EvalContext) -> Any:
        for candidate, fn in self._tests:
            if candidate == key:
                return fn(row, ctx)
        raise KeyError(key)

    def matches(
        self,
        properties_of,
        entity_id: int,
        row: tuple,
        ctx: EvalContext,
    ) -> bool:
        for key, value_fn in self._tests:
            expected = value_fn(row, ctx)
            if cypher_eq(properties_of(entity_id, key), expected) is not True:
                return False
        return True


class PatternMatcher:
    """Matches one :class:`~repro.cypher.ast.Pattern` per binding row.

    Compiled once per (pattern, input schema); :meth:`expand` streams the
    extended rows for one input row.  ``where`` (if given) is evaluated on
    the extended row under ternary logic.
    """

    def __init__(
        self,
        graph: PropertyGraph,
        pattern: ast.Pattern,
        schema: Schema,
        resolver: EntityResolver,
        where: ast.Expr | None = None,
    ):
        self.graph = graph
        self.pattern = pattern
        self.input_schema = schema
        self.resolver = resolver
        new_attributes = pattern_bindings(pattern, frozenset(schema.names))
        self.output_schema = Schema(tuple(schema.attributes) + tuple(new_attributes))
        self.new_names = tuple(a.name for a in new_attributes)
        self._property_tests: dict[int, _PropertyTest] = {}
        for part in pattern.parts:
            for element in part.elements:
                if element.properties:  # type: ignore[union-attr]
                    self._property_tests[id(element)] = _PropertyTest(
                        element.properties,  # type: ignore[union-attr]
                        schema,
                        resolver,
                    )
        self._where = (
            compile_expr(where, self.output_schema, resolver)
            if where is not None
            else None
        )

    # -- public -------------------------------------------------------------

    def expand(self, row: tuple, ctx: EvalContext) -> Iterator[tuple]:
        """All extensions of *row* that match the whole pattern."""
        bindings = dict(zip(self.input_schema.names, row))
        for final in self._match_parts(0, bindings, frozenset(), row, ctx):
            extended = row + tuple(final[name] for name in self.new_names)
            if self._where is not None:
                if self._where(extended, ctx) is not True:
                    continue
            yield extended

    # -- part-by-part backtracking ----------------------------------------------

    def _match_parts(
        self,
        index: int,
        bindings: dict[str, Any],
        used_edges: frozenset[int],
        row: tuple,
        ctx: EvalContext,
    ) -> Iterator[dict[str, Any]]:
        if index == len(self.pattern.parts):
            yield bindings
            return
        part = self.pattern.parts[index]
        for extended, used in self._match_part(part, bindings, used_edges, row, ctx):
            yield from self._match_parts(index + 1, extended, used, row, ctx)

    def _match_part(
        self,
        part: ast.PatternPart,
        bindings: dict[str, Any],
        used_edges: frozenset[int],
        row: tuple,
        ctx: EvalContext,
    ) -> Iterator[tuple[dict[str, Any], frozenset[int]]]:
        elements = part.elements
        first = elements[0]
        assert isinstance(first, ast.NodePattern)
        for start in self._node_candidates(first, bindings, row, ctx):
            state = dict(bindings)
            if first.variable:
                state[first.variable] = start
            yield from self._walk(
                part, 1, start, (start,), (), state, used_edges, row, ctx
            )

    def _walk(
        self,
        part: ast.PatternPart,
        position: int,
        at: int,
        path_vertices: tuple[int, ...],
        path_edges: tuple[int, ...],
        bindings: dict[str, Any],
        used_edges: frozenset[int],
        row: tuple,
        ctx: EvalContext,
    ) -> Iterator[tuple[dict[str, Any], frozenset[int]]]:
        if position >= len(part.elements):
            if part.variable:
                bindings = dict(bindings)
                bindings[part.variable] = PathValue(path_vertices, path_edges)
            yield bindings, used_edges
            return
        relationship = part.elements[position]
        node = part.elements[position + 1]
        assert isinstance(relationship, ast.RelationshipPattern)
        assert isinstance(node, ast.NodePattern)
        if relationship.var_length:
            steps = self._var_length_steps(relationship, at, used_edges, row, ctx)
        else:
            steps = self._single_steps(relationship, at, bindings, used_edges, row, ctx)
        for edge_value, segment_edges, end in steps:
            if not self._node_accepts(node, end, bindings, row, ctx):
                continue
            state = dict(bindings)
            if relationship.variable:
                state[relationship.variable] = edge_value
            if node.variable and node.variable not in state:
                state[node.variable] = end
            yield from self._walk(
                part,
                position + 2,
                end,
                path_vertices + self._segment_vertices(segment_edges, at, end),
                path_edges + segment_edges,
                state,
                used_edges | set(segment_edges),
                row,
                ctx,
            )

    def _segment_vertices(
        self, segment_edges: tuple[int, ...], start: int, end: int
    ) -> tuple[int, ...]:
        """Intermediate + final vertices of a segment walked from *start*."""
        vertices: list[int] = []
        at = start
        for edge in segment_edges:
            source, target = self.graph.endpoints(edge)
            at = target if at == source else source
            vertices.append(at)
        if not segment_edges:  # zero-length (*0..) segment
            return ()
        assert vertices[-1] == end
        return tuple(vertices)

    # -- candidate enumeration ---------------------------------------------------

    def _node_candidates(
        self,
        node: ast.NodePattern,
        bindings: dict[str, Any],
        row: tuple,
        ctx: EvalContext,
    ) -> Iterator[int]:
        if node.variable and node.variable in bindings:
            candidate = bindings[node.variable]
            if candidate is not None and self._node_accepts(
                node, candidate, bindings, row, ctx, check_bound=False
            ):
                yield candidate
            return
        if node.labels:
            indexed = self._index_candidates(node, row, ctx)
            if indexed is not None:
                for vertex in indexed:
                    if self._node_accepts(
                        node, vertex, bindings, row, ctx, check_bound=False
                    ):
                        yield vertex
                return
            seed, *rest = node.labels
            for vertex in self.graph.vertices(seed):
                if all(self.graph.has_label(vertex, label) for label in rest):
                    if self._properties_ok(node, vertex, row, ctx, vertex_kind=True):
                        yield vertex
            return
        for vertex in list(self.graph.vertices()):
            if self._properties_ok(node, vertex, row, ctx, vertex_kind=True):
                yield vertex

    def _index_candidates(
        self, node: ast.NodePattern, row: tuple, ctx: EvalContext
    ) -> frozenset[int] | None:
        """Indexed candidate set for ``(n:Label {key: v})``, or None.

        Uses the first ``(label, key)`` pair covered by a store index;
        remaining labels/properties are verified by the caller.
        """
        test = self._property_tests.get(id(node))
        if test is None:
            return None
        for label in node.labels:
            for key in test.keys:
                if self.graph.has_index(label, key):
                    value = test.value_of(key, row, ctx)
                    if value is None:
                        return frozenset()  # {key: null} never matches
                    return self.graph.lookup_index(label, key, value)
        return None

    def _node_accepts(
        self,
        node: ast.NodePattern,
        vertex: int,
        bindings: dict[str, Any],
        row: tuple,
        ctx: EvalContext,
        check_bound: bool = True,
    ) -> bool:
        if check_bound and node.variable and node.variable in bindings:
            if bindings[node.variable] != vertex:
                return False
        if not self.graph.has_vertex(vertex):
            return False
        if any(not self.graph.has_label(vertex, label) for label in node.labels):
            return False
        return self._properties_ok(node, vertex, row, ctx, vertex_kind=True)

    def _properties_ok(
        self,
        element: ast.AstNode,
        entity: int,
        row: tuple,
        ctx: EvalContext,
        vertex_kind: bool,
    ) -> bool:
        test = self._property_tests.get(id(element))
        if test is None:
            return True
        lookup = (
            self.graph.vertex_property if vertex_kind else self.graph.edge_property
        )
        return test.matches(lookup, entity, row, ctx)

    def _single_steps(
        self,
        relationship: ast.RelationshipPattern,
        at: int,
        bindings: dict[str, Any],
        used_edges: frozenset[int],
        row: tuple,
        ctx: EvalContext,
    ) -> Iterator[tuple[int, tuple[int, ...], int]]:
        """(edge value, segment edges, end vertex) for one-hop steps."""
        bound_edge = (
            bindings.get(relationship.variable) if relationship.variable else None
        )
        for edge, end in self._arcs(relationship, at):
            if edge in used_edges:
                continue
            if bound_edge is not None and edge != bound_edge:
                continue
            if not self._properties_ok(relationship, edge, row, ctx, vertex_kind=False):
                continue
            yield edge, (edge,), end

    def _arcs(
        self, relationship: ast.RelationshipPattern, at: int
    ) -> Iterator[tuple[int, int]]:
        types: tuple[str | None, ...] = relationship.types or (None,)
        direction = relationship.direction
        for edge_type in types:
            if direction in ("out", "both"):
                for edge in self.graph.out_edges(at, edge_type):
                    yield edge, self.graph.target_of(edge)
            if direction in ("in", "both"):
                for edge in self.graph.in_edges(at, edge_type):
                    source = self.graph.source_of(edge)
                    if direction == "both" and source == at:
                        continue  # self-loop already seen among out-edges
                    yield edge, source

    def _var_length_steps(
        self,
        relationship: ast.RelationshipPattern,
        at: int,
        used_edges: frozenset[int],
        row: tuple,
        ctx: EvalContext,
    ) -> Iterator[tuple[ListValue, tuple[int, ...], int]]:
        """(relationship list, segment edges, end) for var-length segments."""
        property_test = self._property_tests.get(id(relationship))
        for end, trail in enumerate_trails(
            self.graph,
            at,
            relationship.types,
            relationship.direction,
            relationship.min_hops,
            relationship.max_hops,
        ):
            if used_edges.intersection(trail.edges):
                continue
            if property_test is not None and not all(
                property_test.matches(self.graph.edge_property, e, row, ctx)
                for e in trail.edges
            ):
                continue
            yield ListValue(trail.edges), trail.edges, end


def match_clause_schema(
    clause: ast.MatchClause, input_schema: Schema
) -> Schema:
    """Output schema of a MATCH clause over *input_schema*."""
    new = pattern_bindings(clause.pattern, frozenset(input_schema.names))
    return Schema(tuple(input_schema.attributes) + tuple(new))


def check_no_bound_reuse_conflicts(
    pattern: ast.Pattern, bound: Mapping[str, AttrKind]
) -> None:
    """Reject reuse of a bound variable with an incompatible pattern role."""
    for part in pattern.parts:
        for element in part.elements:
            variable = element.variable  # type: ignore[union-attr]
            if not variable or variable not in bound:
                continue
            expected = binding_kind(element)
            actual = bound[variable]
            if actual is not expected:
                raise CypherSemanticError(
                    f"variable {variable!r} is bound to a {actual.value} but "
                    f"reused as a {expected.value} in the pattern"
                )
        if part.variable and part.variable in bound:
            raise CypherSemanticError(
                f"path variable {part.variable!r} is already bound"
            )
