"""Counters reported by updating queries (Neo4j-style result summary)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class UpdateSummary:
    """What an updating query changed.

    Counter semantics match Neo4j's result summary: ``properties_set``
    counts property *assignments* (including removals via ``SET x.p =
    NULL`` and ``REMOVE``), ``labels_added``/``labels_removed`` count
    label-vertex pairs.
    """

    nodes_created: int = 0
    nodes_deleted: int = 0
    relationships_created: int = 0
    relationships_deleted: int = 0
    properties_set: int = 0
    labels_added: int = 0
    labels_removed: int = 0

    @property
    def contains_updates(self) -> bool:
        return any(
            (
                self.nodes_created,
                self.nodes_deleted,
                self.relationships_created,
                self.relationships_deleted,
                self.properties_set,
                self.labels_added,
                self.labels_removed,
            )
        )

    def merge(self, other: "UpdateSummary") -> None:
        """Accumulate *other* into this summary (multi-statement scripts)."""
        self.nodes_created += other.nodes_created
        self.nodes_deleted += other.nodes_deleted
        self.relationships_created += other.relationships_created
        self.relationships_deleted += other.relationships_deleted
        self.properties_set += other.properties_set
        self.labels_added += other.labels_added
        self.labels_removed += other.labels_removed

    def __str__(self) -> str:
        parts = [
            f"{value} {name.replace('_', ' ')}"
            for name, value in (
                ("nodes_created", self.nodes_created),
                ("nodes_deleted", self.nodes_deleted),
                ("relationships_created", self.relationships_created),
                ("relationships_deleted", self.relationships_deleted),
                ("properties_set", self.properties_set),
                ("labels_added", self.labels_added),
                ("labels_removed", self.labels_removed),
            )
            if value
        ]
        return ", ".join(parts) if parts else "no changes"
