"""Answering one-shot queries from materialised views (view matching).

The subsystem has three parts, wired through
:meth:`repro.api.QueryEngine.evaluate`:

* :mod:`.catalog` — :class:`ViewCatalog` indexes every live view's FRA
  root and (via the sharing layer) every shared interior subplan by the
  canonical fingerprint key;
* :mod:`.matcher` — finds the highest-covering catalog entry for a
  one-shot plan, exact hits first, then containment hits where the query
  is residual work over a cached subtree, with parameter-binding checks;
* :mod:`.rewriter` — splices :class:`~repro.algebra.ops.ViewScan` leaves
  reading the live materialisations under the residual operators.
"""

from .catalog import AnswerStats, MaterializedSource, ViewCatalog
from .matcher import rewrite_plan
from .rewriter import RewriteResult, make_view_scan

__all__ = [
    "AnswerStats",
    "MaterializedSource",
    "RewriteResult",
    "ViewCatalog",
    "make_view_scan",
    "rewrite_plan",
]
